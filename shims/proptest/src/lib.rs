//! Offline stand-in for `proptest`.
//!
//! Provides the subset of proptest's API this workspace uses as a
//! deterministic generate-and-check harness: the [`proptest!`] macro,
//! the [`Strategy`] trait with `prop_map`/`prop_recursive`, integer
//! range / tuple / regex-literal strategies, and the
//! `prop::{collection, option, sample}` combinators. There is no
//! shrinking — a failing case reports its `Debug`-formatted inputs and
//! re-raises the panic. Case streams are seeded from the test's module
//! path, so failures reproduce exactly across runs.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------------

/// Deterministic random source used for all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Creates the generator for a named test, optionally re-seeded via
    /// the `PROPTEST_SEED` environment variable.
    pub fn for_test(name: &str) -> Self {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        // FNV-1a over the test name keeps streams distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound) % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property, honoring `PROPTEST_CASES`.
pub fn runtime_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-property configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `leaf` at depth 0, otherwise `expand`
    /// applied to a strategy for the next level down. The `_size` and
    /// `_branch` hints are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> Recursive<Self>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            leaf: self,
            depth,
            expand: Rc::new(ExpandFn(expand)),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe wrapper so `Recursive` needs only the closure type.
trait DynExpand<T> {
    fn expand_dyn(&self, inner: BoxedStrategy<T>, rng: &mut TestRng) -> T;
}

struct ExpandFn<F>(F);

impl<T, S, F> DynExpand<T> for ExpandFn<F>
where
    T: Debug,
    S: Strategy<Value = T>,
    F: Fn(BoxedStrategy<T>) -> S,
{
    fn expand_dyn(&self, inner: BoxedStrategy<T>, rng: &mut TestRng) -> T {
        (self.0)(inner).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<L: Strategy> {
    leaf: L,
    depth: u32,
    expand: Rc<dyn DynExpand<L::Value>>,
}

impl<L: Strategy + Clone> Clone for Recursive<L> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            expand: Rc::clone(&self.expand),
        }
    }
}

impl<L> Strategy for Recursive<L>
where
    L: Strategy + Clone + 'static,
    L::Value: 'static,
{
    type Value = L::Value;

    fn generate(&self, rng: &mut TestRng) -> L::Value {
        // Bias toward leaves as depth is consumed so sizes vary; depth 0
        // always yields a leaf, guaranteeing termination.
        if self.depth == 0 || rng.below(4) == 0 {
            return self.leaf.generate(rng);
        }
        let next = Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth - 1,
            expand: Rc::clone(&self.expand),
        };
        self.expand.expand_dyn(next.boxed(), rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for [`any`]-generable types.
pub trait Arbitrary: Debug + Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// `&str` strategies interpret the string as a regex from the small
/// dialect this workspace uses: `[class]{lo,hi}`, `.{lo,hi}`, and
/// plain-literal patterns. Character classes support ranges (`a-z`)
/// and literal members (including space and XML metacharacters).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match compile_pattern(self) {
            CompiledPattern::Literal(s) => s,
            CompiledPattern::Class {
                alphabet,
                min_len,
                max_len,
            } => {
                let len = if max_len > min_len {
                    min_len + rng.below((max_len - min_len + 1) as u64) as usize
                } else {
                    min_len
                };
                let mut out = String::with_capacity(len);
                for _ in 0..len {
                    let idx = rng.below(alphabet.len() as u64) as usize;
                    out.push(alphabet[idx]);
                }
                out
            }
        }
    }
}

enum CompiledPattern {
    Literal(String),
    Class {
        alphabet: Vec<char>,
        min_len: usize,
        max_len: usize,
    },
}

/// Alphabet used by the `.` metacharacter: printable ASCII plus a few
/// multibyte and control characters to exercise parser edge cases.
fn dot_alphabet() -> Vec<char> {
    let mut alphabet: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    alphabet.extend(['\t', '\n', 'é', 'λ', '→', '\u{1F600}']);
    alphabet
}

fn compile_pattern(pattern: &str) -> CompiledPattern {
    let chars: Vec<char> = pattern.chars().collect();
    let (alphabet, rest) = match chars.first() {
        Some('[') => {
            let close = chars
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let mut alphabet = Vec::new();
            let mut i = 1;
            while i < close {
                if i + 2 < close && chars[i + 1] == '-' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                    alphabet.extend((lo..=hi).filter(|c| c.is_ascii() || lo == hi));
                    i += 3;
                } else {
                    alphabet.push(chars[i]);
                    i += 1;
                }
            }
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
            (alphabet, &chars[close + 1..])
        }
        Some('.') => (dot_alphabet(), &chars[1..]),
        _ => return CompiledPattern::Literal(pattern.to_string()),
    };
    let (min_len, max_len) = parse_repetition(rest, pattern);
    CompiledPattern::Class {
        alphabet,
        min_len,
        max_len,
    }
}

fn parse_repetition(rest: &[char], pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    assert!(
        rest.first() == Some(&'{') && rest.last() == Some(&'}'),
        "unsupported repetition in pattern {pattern:?}"
    );
    let body: String = rest[1..rest.len() - 1].iter().collect();
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().expect("bad repetition lower bound");
            let hi = hi.trim().parse().expect("bad repetition upper bound");
            assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
            (lo, hi)
        }
        None => {
            let n = body.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

// ---------------------------------------------------------------------------
// prop:: combinator namespace
// ---------------------------------------------------------------------------

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `size`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.start < self.size.end, "empty vec size range");
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` strategy: each element from `element`, length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding `None` about a quarter of the time.
        #[derive(Clone)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// An `Option` strategy over `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy drawing uniformly from a fixed set of options.
        #[derive(Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Debug + Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.below(self.0.len() as u64) as usize;
                self.0[idx].clone()
            }
        }

        /// A strategy choosing one of `options` uniformly.
        pub fn select<T: Debug + Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty options");
            Select(options)
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// item becomes a `#[test]`-able function running the body across
/// generated cases. No shrinking; failing inputs are printed verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::runtime_cases(__cfg.cases);
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> () { $body }),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed with inputs: {}",
                        __case + 1,
                        __cases,
                        stringify!($name),
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn regex_class_respects_alphabet(s in "[a-c0-1]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "bad length {}", s.len());
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }

        #[test]
        fn tuples_options_and_selects(
            pair in (0u8..4, "[x-z]{1,2}"),
            opt in prop::option::of(0i32..5),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(pair.1.len(), 0);
            if let Some(v) = opt {
                prop_assert!((0..5).contains(&v));
            }
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn recursion_terminates(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 5);
        }

        #[test]
        fn assume_skips(v in any::<bool>()) {
            prop_assume!(v);
            prop_assert!(v);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dot_pattern_covers_lengths() {
        let mut rng = crate::TestRng::from_seed(5);
        let strat = ".{0,60}";
        let mut saw_empty = false;
        let mut saw_long = false;
        for _ in 0..4096 {
            let s = Strategy::generate(&strat, &mut rng);
            let n = s.chars().count();
            assert!(n <= 60);
            saw_empty |= n == 0;
            saw_long |= n > 40;
        }
        assert!(saw_empty && saw_long);
    }
}
