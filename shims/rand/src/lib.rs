//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of `rand`'s 0.8 API the workspace actually uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and the [`rngs::SmallRng`] /
//! [`rngs::StdRng`] generators. Streams are deterministic per seed but
//! do **not** match upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method
/// would be overkill here; rejection sampling converges immediately for
/// the small bounds this workspace uses).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly. A single
/// blanket `SampleRange` impl over this trait (mirroring upstream
/// rand's structure) keeps integer-literal inference working —
/// per-type range impls would leave `gen_range(1..=5)` ambiguous.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// A uniformly distributed value (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: passes BigCrush, one u64 of state, and fine as the
/// engine behind both named generators of this shim.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// Small fast generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(SplitMix64);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(SplitMix64::seed_from_u64(seed))
        }
    }

    /// "Standard" generator — same engine, distinct default stream.
    #[derive(Debug, Clone)]
    pub struct StdRng(SplitMix64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SplitMix64::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5..120);
            assert!((5..120).contains(&v));
            let w = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
