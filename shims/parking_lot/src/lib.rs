//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! subset used by this workspace: `Mutex::{new, lock, try_lock,
//! into_inner}` and `Condvar::{new, wait, notify_one, notify_all}`. Poisoned std locks
//! are recovered transparently (a panicking holder does not wedge the
//! engines — identical observable behavior to parking_lot).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Acquires the lock only if it is free right now, recovering from
    /// poisoning. `None` when another holder has it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can
/// move it out and back in around the blocking call (parking_lot's
/// `wait` takes `&mut` rather than consuming).
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self
            .inner
            .wait(g)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handshake() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let woke = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                woke.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Mutex::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 0);
    }
}
