//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros — as a compact
//! median-of-samples timing loop printing one line per benchmark.
//! There are no HTML reports, no statistics beyond median/min/max, and
//! no baseline comparisons. Honor `--bench` being passed by cargo and
//! a `CRITERION_SAMPLES` override; everything else about the real CLI
//! is accepted and ignored.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter rendering.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id from a parameter rendering alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median/min/max of per-iteration wall time, filled by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, recording median/min/max across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, also used to pick an inner batch size so that
        // one sample takes a measurable slice of wall time.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(start.elapsed() / batch);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        self.result = Some((median, times[0], times[times.len() - 1]));
    }
}

fn configured_samples(default_samples: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_samples)
        .max(1)
}

fn report(
    name: &str,
    result: Option<(Duration, Duration, Duration)>,
    throughput: Option<Throughput>,
) {
    let Some((median, min, max)) = result else {
        println!("{name:<56} (no measurement)");
        return;
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib = bytes as f64 / (1u64 << 30) as f64 / median.as_secs_f64();
            format!("  {gib:>8.3} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / 1e6 / median.as_secs_f64();
            format!("  {meps:>8.3} Melem/s")
        }
        None => String::new(),
    };
    println!("{name:<56} median {median:>12.3?}  [{min:.3?} .. {max:.3?}]{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter; accept the
        // first non-flag argument as a substring filter like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            samples: configured_samples(11),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = configured_samples(samples);
        self
    }

    /// Configures measurement time; accepted for API compatibility.
    pub fn measurement_time(self, _duration: Duration) -> Self {
        self
    }

    /// Configures warm-up time; accepted for API compatibility.
    pub fn warm_up_time(self, _duration: Duration) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: group_name.to_string(),
            samples: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        if self.matches(name) {
            let mut bencher = Bencher {
                samples: self.samples,
                result: None,
            };
            routine(&mut bencher);
            report(name, bencher.result, None);
        }
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(configured_samples(samples));
        self
    }

    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Configures measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    fn run<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) {
        let full = format!("{}/{id}", self.name);
        if !self.parent.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.samples.unwrap_or(self.parent.samples),
            result: None,
        };
        routine(&mut bencher);
        report(&full, bencher.result, self.throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: R,
    ) -> &mut Self {
        self.run(&id.into_benchmark_id().id, |b| routine(b));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Closes the group (reports are emitted eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Declares a benchmark group entry point, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut bencher = Bencher {
            samples: 3,
            result: None,
        };
        bencher.iter(|| black_box(40 + 2));
        let (median, min, max) = bencher.result.expect("no measurement");
        assert!(min <= median && median <= max);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut criterion = Criterion {
            samples: 2,
            filter: None,
        };
        let mut total = 0u64;
        {
            let mut group = criterion.benchmark_group("shim");
            group.throughput(Throughput::Bytes(1024));
            group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| {
                    total = total.wrapping_add(n);
                    black_box(total)
                })
            });
            group.finish();
        }
        criterion.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            samples: 2,
            filter: Some("zzz-no-match".into()),
        };
        let mut ran = false;
        criterion.bench_function("skipped", |_b| ran = true);
        assert!(!ran);
    }
}
