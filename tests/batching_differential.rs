//! Batched server operations are a pure performance change.
//!
//! The batch entry point splits a server operation into *locate*
//! (resolve every drained match's candidate range in one document-order
//! sweep) and *evaluate* (unchanged, in the engine's own priority
//! order). Locating is a pure function of the match root, so:
//!
//! * the deterministic engines (both LockSteps, Whirlpool-S) must
//!   produce identical answers, scores, and work counters with
//!   `op_batching` on or off;
//! * Whirlpool-M (whose interleavings are scheduler-dependent either
//!   way) must keep its answer set and its trace conservation law.

use whirlpool_core::{
    answers_equivalent, evaluate, trace::tracing_compiled, Algorithm, EvalOptions, EvalResult,
    RelaxMode,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::TreePattern;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};
use whirlpool_xml::Document;

struct Fixture {
    doc: Document,
    index: TagIndex,
}

impl Fixture {
    fn new(items: usize) -> Fixture {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        Fixture { doc, index }
    }

    fn eval(&self, query: &TreePattern, alg: &Algorithm, options: &EvalOptions) -> EvalResult {
        let model = TfIdfModel::build(&self.doc, &self.index, query, Normalization::Sparse);
        evaluate(&self.doc, &self.index, query, &model, alg, options)
    }
}

fn options(k: usize, relax: RelaxMode, op_batching: bool) -> EvalOptions {
    EvalOptions {
        relax,
        op_batching,
        ..EvalOptions::top_k(k)
    }
}

/// Bit-exact answer identity: roots and score bit patterns.
fn answer_key(r: &EvalResult) -> Vec<(usize, u64)> {
    r.answers
        .iter()
        .map(|a| (a.root.index(), a.score.value().to_bits()))
        .collect()
}

#[test]
fn deterministic_engines_are_bit_identical_batched_vs_unbatched() {
    let fx = Fixture::new(120);
    let deterministic = [
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
    ];
    for (name, query) in queries::benchmark_queries() {
        for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
            for alg in &deterministic {
                let batched = fx.eval(&query, alg, &options(10, relax, true));
                let unbatched = fx.eval(&query, alg, &options(10, relax, false));
                let tag = format!("{name} {relax:?} {}", alg.name());
                assert_eq!(
                    answer_key(&batched),
                    answer_key(&unbatched),
                    "{tag}: answers diverged"
                );
                // The batch path must replay the same work, not merely
                // reach the same answers: compare the counters the
                // kernel feeds, one by one (`server_op_batches` is the
                // single counter allowed to differ).
                let (b, u) = (&batched.metrics, &unbatched.metrics);
                assert_eq!(b.server_ops, u.server_ops, "{tag}: server_ops");
                assert_eq!(
                    b.partials_created, u.partials_created,
                    "{tag}: partials_created"
                );
                assert_eq!(
                    b.predicate_comparisons, u.predicate_comparisons,
                    "{tag}: predicate_comparisons"
                );
                assert_eq!(b.pruned, u.pruned, "{tag}: pruned");
                assert_eq!(
                    b.routing_decisions, u.routing_decisions,
                    "{tag}: routing_decisions"
                );
                assert_eq!(
                    u.server_op_batches, 0,
                    "{tag}: unbatched run performed locate sweeps"
                );
                if b.server_ops > 0 {
                    assert!(
                        b.server_op_batches > 0,
                        "{tag}: batched run performed no locate sweeps"
                    );
                }
            }
        }
    }
}

#[test]
fn bulk_routed_whirlpool_s_is_bit_identical_batched_vs_unbatched() {
    let fx = Fixture::new(120);
    let query = queries::parse(queries::Q2);
    for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
        let mut on = options(10, relax, true);
        on.router_batch = 4;
        let mut off = options(10, relax, false);
        off.router_batch = 4;
        let batched = fx.eval(&query, &Algorithm::WhirlpoolS, &on);
        let unbatched = fx.eval(&query, &Algorithm::WhirlpoolS, &off);
        assert_eq!(
            answer_key(&batched),
            answer_key(&unbatched),
            "{relax:?}: bulk-routed answers diverged"
        );
        assert_eq!(
            batched.metrics.server_ops, unbatched.metrics.server_ops,
            "{relax:?}: bulk-routed server_ops"
        );
        assert_eq!(
            batched.metrics.partials_created, unbatched.metrics.partials_created,
            "{relax:?}: bulk-routed partials_created"
        );
    }
}

#[test]
fn whirlpool_m_keeps_answers_across_batching_and_threads() {
    let fx = Fixture::new(120);
    let query = queries::parse(queries::Q2);
    for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
        let reference = fx.eval(
            &query,
            &Algorithm::LockStepNoPrune,
            &options(10, relax, false),
        );
        for threads in [1, 4, 8] {
            for op_batching in [true, false] {
                let mut o = options(10, relax, op_batching);
                o.threads = threads;
                let got = fx.eval(&query, &Algorithm::WhirlpoolM { processors: None }, &o);
                assert!(
                    answers_equivalent(&got.answers, &reference.answers, 1e-9),
                    "{relax:?} threads={threads} batching={op_batching}: answers diverged\n \
                     got {:?}\n ref {:?}",
                    got.answers,
                    reference.answers
                );
            }
        }
    }
}

#[test]
fn whirlpool_m_batched_traces_conserve_matches() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(120);
    let query = queries::parse(queries::Q2);
    for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
        for threads in [1, 4, 8] {
            let mut o = options(10, relax, true);
            o.threads = threads;
            o.trace = true;
            let got = fx.eval(&query, &Algorithm::WhirlpoolM { processors: None }, &o);
            let trace = got.trace.as_ref().expect("trace requested");
            let summary = trace.summary();
            assert!(
                summary.balanced(),
                "{relax:?} threads={threads}: conservation violated — {} spawned vs \
                 {} consumed + {} pruned + {} completed + {} abandoned",
                summary.spawned,
                summary.consumed,
                summary.pruned,
                summary.completed,
                summary.abandoned
            );
            assert_eq!(
                summary.consumed, got.metrics.server_ops,
                "{relax:?} threads={threads}: ServerOp events vs server_ops metric"
            );
        }
    }
}
