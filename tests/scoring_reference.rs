//! The engines compute scores incrementally (per-binding idf at the
//! satisfied level); Definition 4.4 defines them declaratively
//! (Σ idf·tf). On *single-witness* documents — where every candidate
//! answer has at most one witness per component predicate, so tf ∈
//! {0, 1} and exact/relaxed coincide with satisfied/unsatisfied — the
//! two must agree exactly.

use whirlpool_core::{evaluate, Algorithm, EvalOptions};
use whirlpool_index::TagIndex;
use whirlpool_pattern::parse_pattern;
use whirlpool_score::{tfidf, Normalization, TfIdfModel};
use whirlpool_xml::parse_document;

/// Each book satisfies each child predicate zero or one times, always
/// at the exact (child) level.
const SINGLE_WITNESS: &str = "<shelf>\
    <book><title>a</title><isbn>1</isbn><price>5</price></book>\
    <book><title>b</title><isbn>2</isbn></book>\
    <book><title>c</title><price>6</price></book>\
    <book><isbn>3</isbn></book>\
    <book><title>d</title></book>\
    <book/>\
    </shelf>";

#[test]
fn engine_scores_equal_definition_4_4_on_single_witness_docs() {
    let doc = parse_document(SINGLE_WITNESS).unwrap();
    let index = TagIndex::build(&doc);
    let query = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);
    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(100),
    );
    assert_eq!(result.answers.len(), 6);
    for answer in &result.answers {
        let reference = tfidf::score_answer(&doc, &index, &query, answer.root);
        // The engine additionally scores *relaxed* satisfaction, which
        // Definition 4.4 (evaluated on the original predicates) gives 0;
        // on this document no relaxed-only witnesses exist, so the
        // scores must coincide.
        assert!(
            (answer.score.value() - reference).abs() < 1e-9,
            "engine {} vs reference {} for {:?}",
            answer.score.value(),
            reference,
            answer.root
        );
    }
}

#[test]
fn engine_ranking_follows_definition_4_4() {
    let doc = parse_document(SINGLE_WITNESS).unwrap();
    let index = TagIndex::build(&doc);
    let query = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);
    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(100),
    );
    let mut reference: Vec<(whirlpool_xml::NodeId, f64)> = result
        .answers
        .iter()
        .map(|a| (a.root, tfidf::score_answer(&doc, &index, &query, a.root)))
        .collect();
    reference.sort_by(|a, b| b.1.total_cmp(&a.1));
    let engine_scores: Vec<f64> = result.answers.iter().map(|a| a.score.value()).collect();
    let reference_scores: Vec<f64> = reference.iter().map(|(_, s)| *s).collect();
    for (e, r) in engine_scores.iter().zip(&reference_scores) {
        assert!(
            (e - r).abs() < 1e-9,
            "{engine_scores:?} vs {reference_scores:?}"
        );
    }
}

#[test]
fn relaxed_witnesses_score_between_zero_and_exact() {
    // A book whose title is nested scores above a title-less book and
    // below a book with an exact (child) title.
    let doc = parse_document(
        "<shelf>\
         <book><title>x</title></book>\
         <book><deep><title>x</title></deep></book>\
         <book><other/></book>\
         </shelf>",
    )
    .unwrap();
    let index = TagIndex::build(&doc);
    let query = parse_pattern("//book[./title]").unwrap();
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);
    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(3),
    );
    let scores: Vec<f64> = result.answers.iter().map(|a| a.score.value()).collect();
    assert_eq!(scores.len(), 3);
    assert!(scores[0] > scores[1], "exact beats relaxed: {scores:?}");
    assert!(scores[1] > scores[2], "relaxed beats missing: {scores:?}");
    assert_eq!(scores[2], 0.0);
}

#[test]
fn normalizations_preserve_ranking() {
    let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(50));
    let index = TagIndex::build(&doc);
    let query = whirlpool_xmark::queries::parse(whirlpool_xmark::queries::Q2);
    let mut rankings = Vec::new();
    for norm in [Normalization::None, Normalization::Dense] {
        let model = TfIdfModel::build(&doc, &index, &query, norm);
        let result = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::LockStepNoPrune,
            &EvalOptions::top_k(20),
        );
        rankings.push(result.answers.iter().map(|a| a.root).collect::<Vec<_>>());
    }
    // Dense normalization divides every weight by the same constant, so
    // the ranking must be identical to the unnormalized one.
    assert_eq!(rankings[0], rankings[1]);
}
