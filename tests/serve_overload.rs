//! Overload soak for the query daemon, end to end over real sockets.
//!
//! The properties under test are the daemon's robustness contract:
//!
//! * **No hang**: every client request resolves within its socket
//!   timeout, even at many times the admission capacity.
//! * **Honest shedding**: overload surfaces as HTTP 429 (admission or
//!   queue shed), never as silent queueing into timeout collapse.
//! * **Certified degradation**: every 200 is either exact or a
//!   truncated answer carrying its score-bound certificate.
//! * **Conservation**: at quiescence, `admitted = exact + degraded +
//!   timed_out` — every admitted request settled exactly once.
//! * **No thread leak**: the worker pool is fixed; 100 queries whose
//!   clients hang up mid-evaluation reclaim their workers via the
//!   watchdog's cancel tokens, and the daemon's thread count and
//!   inflight gauge return to baseline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use whirlpool_serve::{start, DocState, Json, Registry, ServeConfig};
use whirlpool_xmark::{generate, GeneratorConfig};

fn registry(items: usize) -> Registry {
    let mut r = Registry::new();
    r.insert(DocState::new(
        "xmark",
        generate(&GeneratorConfig::items(items)),
    ));
    r
}

/// One blocking request; panics on transport-level hangs (socket
/// timeout) so a stuck daemon fails the test instead of wedging it.
fn request(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_query(addr: SocketAddr, json: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{json}",
            json.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, format!("GET {path} HTTP/1.1\r\n\r\n"))
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    Json::parse(&body)
        .expect("metrics json")
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metric {name} missing in {body}"))
}

/// This process's thread count (Linux `/proc`).
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Waits until `inflight` drains to zero (or fails loudly).
fn await_quiescence(addr: SocketAddr, within: Duration) {
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, "/healthz");
        // A 429 means the probe itself was shed — the daemon is still
        // draining its queue, which is just another form of "not yet".
        if status == 200 {
            let inflight = Json::parse(&body)
                .unwrap()
                .get("inflight")
                .and_then(Json::as_u64)
                .unwrap();
            if inflight == 0 {
                return;
            }
        } else {
            assert_eq!(status, 429, "unhealthy daemon: {status} {body}");
        }
        assert!(
            start.elapsed() < within,
            "daemon never quiesced within {within:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

const QUERY: &str = "//item[./description/parlist and ./mailbox/mail/text]";

/// Serializes the tests in this file: the thread-leak assertion counts
/// process-wide threads, so another test's daemon must not be starting
/// or stopping its pool concurrently.
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn overload_soak_sheds_honestly_and_conserves_outcomes() {
    let _gate = exclusive();
    let config = ServeConfig {
        workers: 3,
        queue_depth: 3,
        max_inflight: 3,
        base_deadline: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let handle = start(config, registry(40)).expect("daemon starts");
    let addr = handle.addr();

    // Phase 1: ~6x overload. 18 concurrent clients, 3 requests each,
    // against 3 workers. Every request must resolve; overload shows up
    // as 429s, and every 200 is exact or carries its certificate.
    let clients: Vec<_> = (0..18)
        .map(|c| {
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for _ in 0..3 {
                    // Artificial per-op cost so 3 workers cannot simply
                    // race through 54 requests without ever overlapping.
                    let body = format!("{{\"query\": \"{QUERY}\", \"k\": 5, \"op_cost_us\": 200}}");
                    let (status, response) = post_query(addr, &body);
                    match status {
                        200 => {
                            let v = Json::parse(&response)
                                .unwrap_or_else(|e| panic!("client {c}: bad json ({e})"));
                            let completeness =
                                v.get("completeness").and_then(Json::as_str).unwrap();
                            match completeness {
                                "exact" => {}
                                "truncated" => {
                                    assert!(
                                        v.get("score_bound").and_then(Json::as_f64).is_some(),
                                        "truncated without a certificate: {response}"
                                    );
                                }
                                other => panic!("unknown completeness {other:?}"),
                            }
                        }
                        429 | 504 => {}
                        other => panic!("client {c}: unexpected status {other}: {response}"),
                    }
                    statuses.push(status);
                }
                statuses
            })
        })
        .collect();
    let statuses: Vec<u16> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client thread"))
        .collect();
    assert_eq!(statuses.len(), 54, "every request resolved");
    let rejected = statuses.iter().filter(|&&s| s == 429).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert!(served > 0, "overload must not starve everyone out");
    assert!(
        rejected > 0,
        "6x overload against a 3-token bucket must shed: {statuses:?}"
    );

    // Conservation at quiescence: every admitted request settled into
    // exactly one outcome class.
    await_quiescence(addr, Duration::from_secs(10));
    let admitted = metric(addr, "admitted");
    let settled = metric(addr, "exact") + metric(addr, "degraded") + metric(addr, "timed_out");
    assert_eq!(
        admitted, settled,
        "conservation law: admitted = exact + degraded + timed_out"
    );
    assert_eq!(
        metric(addr, "rejected") + metric(addr, "shed"),
        rejected as u64
    );

    handle.shutdown();
}

#[test]
fn hundred_cancelled_queries_leak_no_threads() {
    let _gate = exclusive();
    // Long deadline so disconnects — not the ladder — are what stop
    // these queries; per-op cost makes each query take far longer than
    // the clients stick around.
    let config = ServeConfig {
        workers: 4,
        queue_depth: 8,
        max_inflight: 4,
        base_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = start(config, registry(30)).expect("daemon starts");
    let addr = handle.addr();

    // Baseline after one served request (lazy init all settled).
    let (status, _) = post_query(addr, &format!("{{\"query\": \"{QUERY}\", \"k\": 3}}"));
    assert_eq!(status, 200);
    let threads_before = thread_count();

    for wave in 0..10 {
        let clients: Vec<_> = (0..10)
            .map(|_| {
                std::thread::spawn(move || {
                    let body =
                        format!("{{\"query\": \"{QUERY}\", \"k\": 5, \"op_cost_us\": 2000}}");
                    let raw = format!(
                        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.write_all(raw.as_bytes()).expect("send");
                    // Hang up without reading the response: the server
                    // is now evaluating for nobody.
                    drop(conn);
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        // Let the watchdog reclaim the wave before the next one so the
        // abandoned queries exercise cancellation, not the 429 path.
        await_quiescence(addr, Duration::from_secs(15));
        let _ = wave;
    }

    // The daemon is still healthy, its pool intact, and a live client
    // still gets a prompt, well-formed answer.
    assert_eq!(
        thread_count(),
        threads_before,
        "cancelled queries must not leak threads"
    );
    let start_t = Instant::now();
    let (status, body) = post_query(addr, &format!("{{\"query\": \"{QUERY}\", \"k\": 3}}"));
    assert_eq!(status, 200, "{body}");
    assert!(
        start_t.elapsed() < Duration::from_secs(10),
        "daemon sluggish after the cancellation storm"
    );
    // The abandoned queries were admitted and settled (conservation
    // still holds), mostly as watchdog-reclaimed timeouts.
    let admitted = metric(addr, "admitted");
    let settled = metric(addr, "exact") + metric(addr, "degraded") + metric(addr, "timed_out");
    assert_eq!(admitted, settled);
    assert!(
        metric(addr, "timed_out") > 0,
        "disconnect cancellation never fired"
    );

    handle.shutdown();
}
