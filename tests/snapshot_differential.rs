//! A snapshot is a pure representation change.
//!
//! Attaching a version-2 snapshot must be observationally equivalent
//! to parsing + indexing the same document: the score model, every
//! engine's top-k (tie-aware), and the collection driver's global
//! top-k all agree whichever backing the views read from. Only the
//! prepare cost may differ.

use proptest::prelude::*;
use whirlpool_core::{
    answers_equivalent, collection_answers_equivalent, evaluate_collection, evaluate_view,
    Algorithm, Collection, CollectionOptions, EvalOptions,
};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_store::Snapshot;
use whirlpool_xmark::{generate, queries, GeneratorConfig};
use whirlpool_xml::Document;

const EPS: f64 = 1e-9;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
        Algorithm::WhirlpoolM {
            processors: Some(2),
        },
    ]
}

/// Round-trips `doc` through the snapshot format: save, attach, and
/// hand back the attached snapshot. The file lives under a unique temp
/// name; Linux keeps the mapping valid after the unlink, so the file
/// is removed immediately.
fn snapshot_of(doc: &Document, index: &TagIndex, tag: &str) -> Snapshot {
    let path = std::env::temp_dir().join(format!("wp-snap-diff-{}-{tag}.wps", std::process::id()));
    whirlpool_store::save_snapshot(doc, index, &path).expect("save snapshot");
    let snapshot = Snapshot::attach(&path).expect("attach snapshot");
    let _ = std::fs::remove_file(&path);
    snapshot
}

#[test]
fn every_engine_agrees_across_backings_on_xmark() {
    let doc = generate(&GeneratorConfig::items(120));
    let index = TagIndex::build(&doc);
    let snapshot = snapshot_of(&doc, &index, "engines");

    for (name, query) in queries::benchmark_queries() {
        // Each backing builds its *own* model: idf counts read off the
        // mapped arrays must equal those read off the owned index.
        let parsed_model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let snap_model = TfIdfModel::build_view(
            snapshot.doc_view(),
            snapshot.index_view(),
            &query,
            Normalization::Sparse,
        );
        for k in [1, 5, 15] {
            let options = EvalOptions::top_k(k);
            for alg in algorithms() {
                let parsed_run = evaluate_view(
                    (&doc).into(),
                    index.view(),
                    &query,
                    &parsed_model,
                    &alg,
                    &options,
                );
                let snap_run = evaluate_view(
                    snapshot.doc_view(),
                    snapshot.index_view(),
                    &query,
                    &snap_model,
                    &alg,
                    &options,
                );
                assert!(
                    answers_equivalent(&snap_run.answers, &parsed_run.answers, EPS),
                    "{name} k={k} alg={}: snapshot backing diverged\n snap {:?}\n parse {:?}",
                    alg.name(),
                    snap_run.answers,
                    parsed_run.answers
                );
            }
        }
    }
}

#[test]
fn collection_of_snapshots_matches_collection_of_documents() {
    let mut parsed = Collection::new();
    let mut attached = Collection::new();
    for (i, (bytes, seed)) in [(30_000usize, 11u64), (60_000, 22), (90_000, 33)]
        .iter()
        .enumerate()
    {
        let doc = generate(&GeneratorConfig {
            target_bytes: *bytes,
            seed: *seed,
            max_items: None,
        });
        let index = TagIndex::build(&doc);
        attached.add_snapshot(
            format!("doc-{i}"),
            snapshot_of(&doc, &index, &format!("coll-{i}")),
        );
        parsed.add_document(format!("doc-{i}"), doc);
    }

    for (name, pattern) in [
        ("Q1", queries::parse(queries::Q1)),
        ("Q2", queries::parse(queries::Q2)),
    ] {
        for copts in [
            CollectionOptions::default(),
            CollectionOptions::scan_all(),
            CollectionOptions::default().with_threads(4),
        ] {
            let reference = evaluate_collection(
                &parsed,
                &pattern,
                &Algorithm::WhirlpoolS,
                &EvalOptions::top_k(12),
                Normalization::Sparse,
                &copts,
            );
            let got = evaluate_collection(
                &attached,
                &pattern,
                &Algorithm::WhirlpoolS,
                &EvalOptions::top_k(12),
                Normalization::Sparse,
                &copts,
            );
            assert!(
                collection_answers_equivalent(&got.answers, &reference.answers, EPS),
                "{name} threads={}: snapshot shards diverged\n snap {:?}\n parse {:?}",
                copts.threads,
                got.answers,
                reference.answers
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads: whatever the document size, query, k, and
    /// engine, the snapshot backing returns the same top-k as the
    /// parse-built one.
    #[test]
    fn random_workloads_are_backing_invariant(
        items in 10usize..80,
        k in 1usize..12,
        seed in 0u64..1_000_000,
        query_idx in 0usize..3,
    ) {
        let doc = generate(&GeneratorConfig::items(items).with_seed(seed));
        let index = TagIndex::build(&doc);
        let snapshot = snapshot_of(&doc, &index, &format!("prop-{items}-{seed}-{k}"));
        let (name, query) = queries::benchmark_queries().swap_remove(query_idx);
        let parsed_model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let snap_model = TfIdfModel::build_view(
            snapshot.doc_view(),
            snapshot.index_view(),
            &query,
            Normalization::Sparse,
        );
        let options = EvalOptions::top_k(k);
        for alg in algorithms() {
            let parsed_run =
                evaluate_view((&doc).into(), index.view(), &query, &parsed_model, &alg, &options);
            let snap_run = evaluate_view(
                snapshot.doc_view(),
                snapshot.index_view(),
                &query,
                &snap_model,
                &alg,
                &options,
            );
            prop_assert!(
                answers_equivalent(&snap_run.answers, &parsed_run.answers, EPS),
                "{name} items={items} k={k} seed={seed} alg={}:\n snap {:?}\n parse {:?}",
                alg.name(),
                snap_run.answers,
                parsed_run.answers
            );
        }
    }
}
