//! Equivalence of the contention-free Whirlpool-M concurrency layer.
//!
//! The atomic threshold snapshot, sharded match pools, and batched
//! router/server queues are pure performance machinery: they must be
//! invisible in the answer set. This suite pins that claim where it is
//! most at risk — under real thread interleavings:
//!
//! * Whirlpool-M at 1, 2, 4, and 8 worker threads per server returns a
//!   top-k set equivalent to single-threaded Whirlpool-S, in both
//!   relaxed and exact modes, on random documents × random queries.
//! * Under deterministic panic injection (a server poisons itself
//!   mid-run) every thread count still terminates — no hang in
//!   termination detection, no lost rescue — and the degraded result
//!   carries a valid anytime certificate against the exact answers.
//! * On *skewed-routing* documents — one hot server receives nearly
//!   every match, so idle workers live off batch stealing — the
//!   worker-pool scheduler still agrees with Whirlpool-S at every pool
//!   size and in both relax modes.
//! * A panic that escapes the fault layer entirely (a panicking score
//!   model with **no** fault plan, so `guarded_process` runs
//!   unguarded) is caught at batch granularity by the worker itself:
//!   the run terminates at every pool size and returns a certified
//!   truncated prefix, even when the poisoned batch was stolen.
//!
//! CI runs this file at several `PROPTEST_SEED`s with the thread counts
//! above, so the snapshot/sharding/batching protocols see many distinct
//! schedules per change.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use whirlpool_core::{
    answers_equivalent, evaluate, Algorithm, Completeness, EvalOptions, FaultKind, FaultPlan,
    RankedAnswer, RelaxMode,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{Axis, QNodeId, TreePattern};
use whirlpool_score::{MatchLevel, Normalization, ScoreModel, TfIdfModel};
use whirlpool_xml::{Document, DocumentBuilder, NodeId};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
struct RandTree {
    tag: usize,
    children: Vec<RandTree>,
}

fn tree_strategy() -> impl Strategy<Value = RandTree> {
    let leaf = (0usize..TAGS.len()).prop_map(|tag| RandTree {
        tag,
        children: vec![],
    });
    leaf.prop_recursive(4, 40, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| RandTree { tag, children })
    })
}

#[derive(Debug, Clone)]
struct RandQuery {
    tag: usize,
    axis: bool,
    children: Vec<RandQuery>,
}

fn query_strategy() -> impl Strategy<Value = RandQuery> {
    let leaf = (0usize..TAGS.len(), any::<bool>()).prop_map(|(tag, axis)| RandQuery {
        tag,
        axis,
        children: vec![],
    });
    leaf.prop_recursive(2, 6, 2, |inner| {
        (
            0usize..TAGS.len(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, children)| RandQuery {
                tag,
                axis,
                children,
            })
    })
}

fn build_doc(trees: &[RandTree]) -> Document {
    fn rec(t: &RandTree, b: &mut DocumentBuilder) {
        b.open(TAGS[t.tag]);
        for c in &t.children {
            rec(c, b);
        }
        b.close();
    }
    let mut b = DocumentBuilder::new();
    for t in trees {
        rec(t, &mut b);
    }
    b.finish()
}

fn build_query(q: &RandQuery) -> TreePattern {
    fn rec(q: &RandQuery, parent: QNodeId, p: &mut TreePattern) {
        let axis = if q.axis {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let id = p.add_node(parent, axis, TAGS[q.tag], None);
        for c in &q.children {
            rec(c, id, p);
        }
    }
    let mut p = TreePattern::new(TAGS[q.tag], Axis::Descendant);
    for c in &q.children {
        rec(c, p.root(), &mut p);
    }
    p
}

/// Anytime certificate check (same contract as `anytime_faults.rs`):
/// every returned answer is within the bound, and every exact answer
/// missing from the prefix could not have beaten it.
fn assert_certificate_valid(
    truncated: &[RankedAnswer],
    completeness: &Completeness,
    exact: &[RankedAnswer],
    context: &str,
) {
    let Some(bound) = completeness.score_bound() else {
        panic!("{context}: expected a truncated result, got {completeness:?}");
    };
    for a in truncated {
        assert!(
            a.score.value() <= bound + EPS,
            "{context}: returned answer {a:?} above the bound {bound}"
        );
    }
    for e in exact {
        let present = truncated.iter().any(|a| a.root == e.root);
        assert!(
            present || e.score.value() <= bound + EPS,
            "{context}: missing answer {e:?} exceeds the bound {bound}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thread-count sweep, fault-free: Whirlpool-M with the snapshot
    /// threshold, sharded pools, and batched queues agrees with
    /// Whirlpool-S at every worker multiplicity, in both relax modes.
    #[test]
    fn whirlpool_m_matches_whirlpool_s_at_every_thread_count(
        trees in prop::collection::vec(tree_strategy(), 1..4),
        q in query_strategy(),
        k in 1usize..8,
        exact_mode in any::<bool>(),
    ) {
        let doc = build_doc(&trees);
        let pattern = build_query(&q);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let relax = if exact_mode { RelaxMode::Exact } else { RelaxMode::Relaxed };
        let mut options = EvalOptions::top_k(k);
        options.relax = relax;
        let reference =
            evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS, &options);
        for threads in THREAD_COUNTS {
            let mut options = EvalOptions::top_k(k);
            options.relax = relax;
            options.threads = threads;
            let got = evaluate(
                &doc, &index, &pattern, &model,
                &Algorithm::WhirlpoolM { processors: None },
                &options,
            );
            prop_assert!(
                answers_equivalent(&got.answers, &reference.answers, EPS),
                "threads={threads} relax={relax:?} query={pattern} k={k}\n got {:?}\n ref {:?}",
                got.answers, reference.answers
            );
        }
    }

    /// Thread-count sweep under deterministic panic injection: a server
    /// that poisons itself mid-run is isolated at every worker
    /// multiplicity — the run terminates and the degraded prefix is
    /// certified against the exact answers.
    #[test]
    fn panic_faults_stay_isolated_at_every_thread_count(
        trees in prop::collection::vec(tree_strategy(), 1..4),
        q in query_strategy(),
        seed in 0u64..1000,
        server_pick in 0usize..8,
        after_ops in 0u64..20,
        k in 1usize..6,
    ) {
        let doc = build_doc(&trees);
        let pattern = build_query(&q);
        let servers = pattern.server_ids().count();
        prop_assume!(servers > 0);
        let server = QNodeId(1 + (server_pick % servers) as u8);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let exact =
            evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS,
                     &EvalOptions::top_k(k)).answers;
        for threads in THREAD_COUNTS {
            let mut options = EvalOptions::top_k(k);
            options.threads = threads;
            options.fault_plan = Some(
                FaultPlan::seeded(seed).with(server, FaultKind::Panic { after_ops }),
            );
            let r = evaluate(
                &doc, &index, &pattern, &model,
                &Algorithm::WhirlpoolM { processors: None },
                &options,
            );
            match r.completeness {
                Completeness::Exact => {
                    // The fault never fired (the query drained first).
                    prop_assert!(r.metrics.servers_failed == 0);
                    prop_assert!(
                        answers_equivalent(&r.answers, &exact, EPS),
                        "threads={threads}: exact-complete run disagrees"
                    );
                }
                Completeness::Truncated { .. } => {
                    prop_assert!(r.metrics.servers_failed >= 1);
                    assert_certificate_valid(
                        &r.answers,
                        &r.completeness,
                        &exact,
                        &format!("threads={threads} server={server:?} after={after_ops}"),
                    );
                }
            }
        }
    }
}

/// A document where almost every routed match lands on the same server:
/// `hot` elements each carry two `b` children and one `c`, so the `b`
/// server's queue dwarfs the others and workers whose home queues run
/// dry must steal from it to stay busy.
fn build_hot_server_doc(hot: usize) -> Document {
    let mut b = DocumentBuilder::new();
    for i in 0..hot {
        b.open("a");
        b.open("b");
        b.close();
        b.open("b");
        b.close();
        if i % 3 != 0 {
            b.open("c");
            b.close();
        }
        b.close();
    }
    // A few structurally different trees so routing has real choices.
    for _ in 0..3 {
        b.open("d");
        b.open("a");
        b.open("c");
        b.close();
        b.close();
        b.close();
    }
    b.finish()
}

fn hot_server_query() -> TreePattern {
    let mut p = TreePattern::new("a", Axis::Descendant);
    p.add_node(p.root(), Axis::Child, "b", None);
    p.add_node(p.root(), Axis::Child, "c", None);
    p
}

/// Skewed routing: one hot server, workers forced onto the steal path.
/// The answer set must match Whirlpool-S at every pool size, in both
/// relax modes, across repeated runs (each run is a fresh schedule).
#[test]
fn skewed_hot_server_routing_agrees_at_every_worker_count() {
    let doc = build_hot_server_doc(60);
    let pattern = hot_server_query();
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
        let mut options = EvalOptions::top_k(10);
        options.relax = relax;
        let reference = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        for threads in THREAD_COUNTS {
            for rep in 0..3 {
                let mut options = EvalOptions::top_k(10);
                options.relax = relax;
                options.threads = threads;
                let got = evaluate(
                    &doc,
                    &index,
                    &pattern,
                    &model,
                    &Algorithm::WhirlpoolM { processors: None },
                    &options,
                );
                assert!(
                    answers_equivalent(&got.answers, &reference.answers, EPS),
                    "threads={threads} relax={relax:?} rep={rep}\n got {:?}\n ref {:?}",
                    got.answers,
                    reference.answers
                );
            }
        }
    }
}

/// A score model that panics after a fixed number of contribution
/// calls. With no fault plan active the fault layer runs *unguarded*,
/// so the panic escapes into the worker itself and exercises the
/// batch-granularity panic guard (`serve_batch`/`abandon_batch`).
struct PanickingModel<'m> {
    inner: &'m TfIdfModel,
    calls: AtomicU64,
    panic_after: u64,
}

impl ScoreModel for PanickingModel<'_> {
    fn contribution(&self, server: QNodeId, node: NodeId, level: MatchLevel) -> f64 {
        if self.calls.fetch_add(1, Ordering::Relaxed) >= self.panic_after {
            panic!("injected score-model panic (no fault plan)");
        }
        self.inner.contribution(server, node, level)
    }

    fn max_contribution(&self, server: QNodeId) -> f64 {
        self.inner.max_contribution(server)
    }

    fn max_relaxed_contribution(&self, server: QNodeId) -> f64 {
        self.inner.max_relaxed_contribution(server)
    }
}

/// Certified termination when a worker panics outside the fault layer,
/// including mid-steal on the hot-server workload: the run must not
/// hang or abort at any pool size, and the truncated prefix must carry
/// a certificate valid against the panic-free exact answers.
#[test]
fn worker_panic_outside_fault_layer_terminates_with_certificate() {
    let doc = build_hot_server_doc(40);
    let pattern = hot_server_query();
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    let options = EvalOptions::top_k(8);
    let exact = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    )
    .answers;

    // Calibrate: total contribution calls in one fault-free M run. The
    // panic threshold is set halfway so it fires while the workers are
    // deep in server operations (well past the seed phase, which runs
    // on the unguarded main thread).
    let counting = PanickingModel {
        inner: &model,
        calls: AtomicU64::new(0),
        panic_after: u64::MAX,
    };
    evaluate(
        &doc,
        &index,
        &pattern,
        &counting,
        &Algorithm::WhirlpoolM { processors: None },
        &options,
    );
    let total_calls = counting.calls.load(Ordering::Relaxed);
    assert!(total_calls > 20, "workload too small: {total_calls} calls");

    for threads in THREAD_COUNTS {
        let panicking = PanickingModel {
            inner: &model,
            calls: AtomicU64::new(0),
            panic_after: total_calls / 2,
        };
        let mut options = EvalOptions::top_k(8);
        options.threads = threads;
        let r = evaluate(
            &doc,
            &index,
            &pattern,
            &panicking,
            &Algorithm::WhirlpoolM { processors: None },
            &options,
        );
        assert!(
            matches!(r.completeness, Completeness::Truncated { .. }),
            "threads={threads}: expected truncation, got {:?}",
            r.completeness
        );
        assert_certificate_valid(
            &r.answers,
            &r.completeness,
            &exact,
            &format!("threads={threads} panic_after={}", total_calls / 2),
        );
    }
}
