//! Property-based system tests: on random documents × random queries,
//! the adaptive engines must agree with the exhaustive baseline, the
//! virtual-time scheduler must agree across processor counts, and
//! Whirlpool-S must never do more work than LockStep under the same
//! static plan (the minimal-probing property the paper imports from
//! MPro/Upper).

use proptest::prelude::*;
use whirlpool_core::vtime::{simulate_whirlpool_m, VTimeConfig};
use whirlpool_core::{
    answers_equivalent, evaluate, Algorithm, ContextOptions, EvalOptions, QueryContext,
    QueuePolicy, RoutingStrategy,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{Axis, StaticPlan, TreePattern};
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xml::{Document, DocumentBuilder};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone)]
struct RandTree {
    tag: usize,
    children: Vec<RandTree>,
}

fn tree_strategy() -> impl Strategy<Value = RandTree> {
    let leaf = (0usize..TAGS.len()).prop_map(|tag| RandTree {
        tag,
        children: vec![],
    });
    leaf.prop_recursive(4, 40, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| RandTree { tag, children })
    })
}

#[derive(Debug, Clone)]
struct RandQuery {
    tag: usize,
    axis: bool,
    children: Vec<RandQuery>,
}

fn query_strategy() -> impl Strategy<Value = RandQuery> {
    let leaf = (0usize..TAGS.len(), any::<bool>()).prop_map(|(tag, axis)| RandQuery {
        tag,
        axis,
        children: vec![],
    });
    leaf.prop_recursive(2, 6, 2, |inner| {
        (
            0usize..TAGS.len(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, children)| RandQuery {
                tag,
                axis,
                children,
            })
    })
}

fn build_doc(trees: &[RandTree]) -> Document {
    fn rec(t: &RandTree, b: &mut DocumentBuilder) {
        b.open(TAGS[t.tag]);
        for c in &t.children {
            rec(c, b);
        }
        b.close();
    }
    let mut b = DocumentBuilder::new();
    for t in trees {
        rec(t, &mut b);
    }
    b.finish()
}

fn build_query(q: &RandQuery) -> TreePattern {
    fn rec(q: &RandQuery, parent: whirlpool_pattern::QNodeId, p: &mut TreePattern) {
        let axis = if q.axis {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let id = p.add_node(parent, axis, TAGS[q.tag], None);
        for c in &q.children {
            rec(c, id, p);
        }
    }
    let mut p = TreePattern::new(TAGS[q.tag], Axis::Descendant);
    for c in &q.children {
        rec(c, p.root(), &mut p);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Relaxed mode: every engine/routing combination returns a top-k
    /// set equivalent to the exhaustive baseline.
    #[test]
    fn engines_agree_on_random_workloads(
        trees in prop::collection::vec(tree_strategy(), 1..4),
        q in query_strategy(),
        k in 1usize..6,
    ) {
        let doc = build_doc(&trees);
        let pattern = build_query(&q);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let options = EvalOptions::top_k(k);
        let reference =
            evaluate(&doc, &index, &pattern, &model, &Algorithm::LockStepNoPrune, &options);
        for alg in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let got = evaluate(&doc, &index, &pattern, &model, &alg, &options);
            prop_assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "alg={} query={} k={k}\n got {:?}\n ref {:?}",
                alg.name(), pattern, got.answers, reference.answers
            );
        }
        for routing in [RoutingStrategy::MaxScore, RoutingStrategy::MinScore] {
            let mut options = EvalOptions::top_k(k);
            options.routing = routing;
            let got = evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS, &options);
            prop_assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "routing={} query={pattern} k={k}", options.routing.name()
            );
        }
    }

    /// The virtual-time scheduler returns the same answers at every
    /// processor count and its makespan never increases with more
    /// processors (same-cost schedules only get more parallel).
    #[test]
    fn vtime_consistent_across_processors(
        trees in prop::collection::vec(tree_strategy(), 1..3),
        q in query_strategy(),
    ) {
        let doc = build_doc(&trees);
        let pattern = build_query(&q);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);

        let mut previous: Option<Vec<whirlpool_core::RankedAnswer>> = None;
        for procs in [Some(1), Some(2), None] {
            let ctx = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
            let sim = simulate_whirlpool_m(
                &ctx,
                &RoutingStrategy::MinAlive,
                3,
                QueuePolicy::MaxFinalScore,
                &VTimeConfig { processors: procs, ..Default::default() },
            );
            if let Some(prev) = &previous {
                prop_assert!(
                    answers_equivalent(&sim.answers, prev, 1e-9),
                    "procs={procs:?} query={pattern}"
                );
            }
            previous = Some(sim.answers);
        }
    }

    /// Minimal probing: under the same static plan, Whirlpool-S (which
    /// processes the globally most-promising match next) never performs
    /// more server operations than LockStep (which drains whole stages).
    #[test]
    fn whirlpool_s_never_outworks_lockstep_static(
        trees in prop::collection::vec(tree_strategy(), 1..4),
        q in query_strategy(),
        k in 1usize..4,
    ) {
        let doc = build_doc(&trees);
        let pattern = build_query(&q);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let plan = StaticPlan::in_id_order(pattern.server_ids().count());

        let mut options = EvalOptions::top_k(k);
        options.routing = RoutingStrategy::Static(plan);

        let lockstep =
            evaluate(&doc, &index, &pattern, &model, &Algorithm::LockStep, &options);
        let ws = evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS, &options);
        prop_assert!(
            ws.metrics.server_ops <= lockstep.metrics.server_ops,
            "W-S {} ops > LockStep {} ops for query={pattern} k={k}",
            ws.metrics.server_ops,
            lockstep.metrics.server_ops
        );
    }
}

/// Deterministic-input stress matrix for the threaded engine: every
/// combination of processor cap, threads-per-server, queue policy and
/// injected op cost must terminate and return the reference answers.
#[test]
fn whirlpool_m_stress_matrix() {
    use whirlpool_core::{run_whirlpool_m, WhirlpoolMConfig};
    let doc = build_doc(&[RandTree {
        tag: 0,
        children: (0..12)
            .map(|i| RandTree {
                tag: 1 + (i % 3),
                children: (0..(i % 4))
                    .map(|j| RandTree {
                        tag: 1 + (j % 3),
                        children: vec![],
                    })
                    .collect(),
            })
            .collect(),
    }]);
    let pattern = build_query(&RandQuery {
        tag: 1,
        axis: true,
        children: vec![
            RandQuery {
                tag: 2,
                axis: false,
                children: vec![],
            },
            RandQuery {
                tag: 3,
                axis: true,
                children: vec![],
            },
        ],
    });
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    let reference = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(5),
    );

    for processors in [None, Some(1), Some(3)] {
        for threads in [1usize, 3] {
            for queue_policy in [QueuePolicy::MaxFinalScore, QueuePolicy::Fifo] {
                for op_cost in [None, Some(std::time::Duration::from_micros(50))] {
                    let ctx = QueryContext::new(
                        &doc,
                        &index,
                        &pattern,
                        &model,
                        whirlpool_core::ContextOptions {
                            op_cost,
                            ..Default::default()
                        },
                    );
                    let got = run_whirlpool_m(
                        &ctx,
                        &RoutingStrategy::MinAlive,
                        5,
                        &WhirlpoolMConfig {
                            queue_policy,
                            processors,
                            threads,
                            ..WhirlpoolMConfig::default()
                        },
                    );
                    assert!(
                        answers_equivalent(&got, &reference.answers, 1e-9),
                        "procs={processors:?} threads={threads} \
                         queue={queue_policy:?} cost={op_cost:?}"
                    );
                }
            }
        }
    }
}

/// Regression: a server worker must apply its batch's net in-flight
/// delta *before* pushing survivors to the router. With the opposite
/// order, a sibling worker could drain and retire the survivors (its
/// own −1s landing first) and drive the count transiently negative —
/// or through zero, terminating the run early. This workload (found
/// by `engines_agree_on_random_workloads`) reliably tripped the
/// negative-count assertion within a few hundred runs.
#[test]
fn batched_settle_never_undercounts_in_flight() {
    fn t(tag: usize, children: Vec<RandTree>) -> RandTree {
        RandTree { tag, children }
    }
    let trees = vec![
        t(
            2,
            vec![
                t(3, vec![]),
                t(1, vec![t(3, vec![]), t(3, vec![]), t(3, vec![])]),
                t(
                    0,
                    vec![
                        t(1, vec![t(0, vec![]), t(3, vec![]), t(2, vec![])]),
                        t(
                            0,
                            vec![
                                t(0, vec![t(2, vec![])]),
                                t(0, vec![t(1, vec![]), t(1, vec![])]),
                                t(3, vec![]),
                            ],
                        ),
                        t(
                            1,
                            vec![
                                t(0, vec![t(2, vec![])]),
                                t(0, vec![t(0, vec![])]),
                                t(3, vec![t(3, vec![])]),
                            ],
                        ),
                    ],
                ),
            ],
        ),
        t(3, vec![]),
    ];
    let q = RandQuery {
        tag: 0,
        axis: false,
        children: vec![
            RandQuery {
                tag: 3,
                axis: true,
                children: vec![],
            },
            RandQuery {
                tag: 0,
                axis: true,
                children: vec![],
            },
        ],
    };
    let k = 4;
    let doc = build_doc(&trees);
    let pattern = build_query(&q);
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    let options = EvalOptions::top_k(k);
    let reference = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::LockStepNoPrune,
        &options,
    );
    for alg in [
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ] {
        for iter in 0..300 {
            let got = evaluate(&doc, &index, &pattern, &model, &alg, &options);
            assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "iter={iter} alg={} k={k}\n got {:?}\n ref {:?}",
                alg.name(),
                got.answers,
                reference.answers
            );
        }
    }
}
