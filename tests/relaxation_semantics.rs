//! The plan-encoded relaxation must agree with the rewriting-based
//! definition: an approximate answer of query Q is an exact answer of
//! some relaxed query Q′ of Q — and vice versa.

use std::collections::HashSet;
use whirlpool_core::{evaluate, naive, Algorithm, EvalOptions};
use whirlpool_index::TagIndex;
use whirlpool_pattern::parse_pattern;
use whirlpool_pattern::relax;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{books, generate, queries, GeneratorConfig};
use whirlpool_xml::{Document, NodeId};

/// Roots of exact matches of any query in the relaxation closure.
fn closure_roots(doc: &Document, query: &whirlpool_pattern::TreePattern) -> HashSet<NodeId> {
    let mut roots = HashSet::new();
    for relaxed in relax::enumerate(query, 50_000) {
        for r in naive::exact_match_roots(doc, &relaxed) {
            roots.insert(r);
        }
    }
    roots
}

/// Engine answers with a positive score, given unnormalized weights.
fn engine_positive_roots(
    doc: &Document,
    query: &whirlpool_pattern::TreePattern,
) -> (HashSet<NodeId>, HashSet<NodeId>) {
    let index = TagIndex::build(doc);
    let model = TfIdfModel::build(doc, &index, query, Normalization::None);
    let options = EvalOptions::top_k(1_000_000);
    let result = evaluate(doc, &index, query, &model, &Algorithm::WhirlpoolS, &options);
    let all: HashSet<NodeId> = result.answers.iter().map(|a| a.root).collect();
    let positive: HashSet<NodeId> = result
        .answers
        .iter()
        .filter(|a| a.score.value() > 0.0)
        .map(|a| a.root)
        .collect();
    (all, positive)
}

#[test]
fn books_example_matches_figure_2() {
    // §2: query 2(a) matches book (a) only; 2(c) additionally matches
    // book (b); 2(d) matches all three. The engine's relaxed evaluation
    // must therefore return all three books, with book (a) first.
    let doc = books::heterogeneous_collection();
    let query = queries::parse(queries::FIG2A);

    let exact = naive::exact_match_roots(&doc, &query);
    assert_eq!(exact.len(), 1, "book (a) is the only exact match");

    let fig2c =
        parse_pattern("/book[.//title = 'wodehouse' and .//publisher/name = 'psmith']").unwrap();
    assert_eq!(
        naive::exact_match_roots(&doc, &fig2c).len(),
        2,
        "books (a) and (b)"
    );

    let fig2d = parse_pattern("/book[.//title = 'wodehouse']").unwrap();
    assert_eq!(
        naive::exact_match_roots(&doc, &fig2d).len(),
        3,
        "all three books"
    );

    let (all, _) = engine_positive_roots(&doc, &query);
    assert_eq!(all.len(), 3, "relaxed evaluation admits all three books");
}

#[test]
fn engine_covers_the_relaxation_closure() {
    // Every exact answer to every relaxed query must appear among the
    // engine's (relaxed-mode) answers.
    let doc = generate(&GeneratorConfig::items(30));
    for (name, query) in queries::benchmark_queries() {
        // Q3's closure is huge; cap the enumeration for it.
        if name == "Q3" {
            continue;
        }
        let closure = closure_roots(&doc, &query);
        let (all, _) = engine_positive_roots(&doc, &query);
        for r in &closure {
            assert!(
                all.contains(r),
                "{name}: closure root {r:?} missing from engine answers"
            );
        }
    }
}

#[test]
fn exact_matches_score_highest() {
    // An exact match satisfies every component predicate at the exact
    // level, so no approximate answer can outscore it.
    let doc = generate(&GeneratorConfig::items(60));
    for (name, query) in queries::benchmark_queries() {
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);
        let options = EvalOptions::top_k(1_000_000);
        let result = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        let exact: HashSet<NodeId> = naive::exact_match_roots(&doc, &query).into_iter().collect();
        if exact.is_empty() {
            continue;
        }
        let best_exact = result
            .answers
            .iter()
            .filter(|a| exact.contains(&a.root))
            .map(|a| a.score)
            .max()
            .expect("exact matches are answers");
        let best_any = result.answers.first().map(|a| a.score).unwrap();
        assert!(
            best_exact >= best_any,
            "{name}: an approximate answer outscored every exact match"
        );
    }
}

#[test]
fn relaxation_never_loses_exact_answers() {
    // "These relaxations ... still guarantee that exact matches to the
    // original query continue to be matches to the relaxed query."
    let doc = generate(&GeneratorConfig::items(25));
    let query = queries::parse(queries::Q1);
    let exact_roots: HashSet<NodeId> = naive::exact_match_roots(&doc, &query).into_iter().collect();
    for relaxed in relax::enumerate(&query, 10_000) {
        let relaxed_roots: HashSet<NodeId> = naive::exact_match_roots(&doc, &relaxed)
            .into_iter()
            .collect();
        for r in &exact_roots {
            assert!(
                relaxed_roots.contains(r),
                "exact match {r:?} lost by relaxed query {relaxed}"
            );
        }
    }
}
