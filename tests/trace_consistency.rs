//! Event-stream invariants of the observability layer, across engines.
//!
//! A trace is only trustworthy if it is *complete*: every span closes,
//! every routing decision is recorded, and every partial match that
//! enters the system leaves it through exactly one of the four
//! terminals (consumed by a server operation, pruned, completed,
//! abandoned). This suite pins those invariants for a fixed query and
//! document seed under all four engines — fault-free, under an
//! operation budget, and with an injected server failure — and checks
//! that turning tracing on does not perturb the answer set (the
//! engine-equivalence invariant from DESIGN.md §7).

use whirlpool_core::trace::{tracing_compiled, TraceData};
use whirlpool_core::{evaluate, Algorithm, EvalOptions, EvalResult, FaultKind, FaultPlan};
use whirlpool_index::TagIndex;
use whirlpool_pattern::QNodeId;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

struct Fixture {
    doc: whirlpool_xml::Document,
    index: TagIndex,
    query: whirlpool_pattern::TreePattern,
}

impl Fixture {
    fn new(items: usize) -> Self {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        let query = queries::parse(queries::Q2);
        Fixture { doc, index, query }
    }

    fn eval(&self, algorithm: &Algorithm, options: &EvalOptions) -> EvalResult {
        let model = TfIdfModel::build(&self.doc, &self.index, &self.query, Normalization::Sparse);
        evaluate(
            &self.doc,
            &self.index,
            &self.query,
            &model,
            algorithm,
            options,
        )
    }
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ]
}

fn traced_options(k: usize) -> EvalOptions {
    EvalOptions {
        trace: true,
        ..EvalOptions::top_k(k)
    }
}

fn answer_key(r: &EvalResult) -> Vec<(usize, u64)> {
    r.answers
        .iter()
        .map(|a| (a.root.index(), a.score.value().to_bits()))
        .collect()
}

/// The invariants every trace must satisfy, regardless of how the run
/// ended (complete, truncated, or degraded).
fn assert_stream_invariants(trace: &TraceData, engine: &str) {
    let summary = trace.summary();
    assert!(
        summary.unmatched_spans.is_empty(),
        "{engine}: unclosed spans {:?}",
        summary.unmatched_spans
    );
    assert!(
        summary.balanced(),
        "{engine}: match conservation violated — {} spawned vs {} consumed + {} pruned + \
         {} completed + {} abandoned",
        summary.spawned,
        summary.consumed,
        summary.pruned,
        summary.completed,
        summary.abandoned
    );
    assert_eq!(summary.pending(), 0, "{engine}: pending matches");
    // Threshold samples never regress: the k-th best score only grows.
    for w in summary.thresholds.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 1e-9,
            "{engine}: threshold regressed {} -> {}",
            w[0].1,
            w[1].1
        );
    }
}

#[test]
fn fault_free_traces_are_balanced_and_match_metrics() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(150);
    for algorithm in algorithms() {
        let result = fx.eval(&algorithm, &traced_options(10));
        let trace = result.trace.as_ref().expect("trace requested");
        assert!(
            !trace.events.is_empty(),
            "{}: empty trace",
            algorithm.name()
        );
        assert_stream_invariants(trace, algorithm.name());

        let summary = trace.summary();
        // Fault-free, the trace's counts and the engine's metric
        // counters are two observations of the same run.
        assert_eq!(
            summary.consumed,
            result.metrics.server_ops,
            "{}: ServerOp events vs server_ops metric",
            algorithm.name()
        );
        assert_eq!(
            summary.routed,
            result.metrics.routing_decisions,
            "{}: Routed events vs routing_decisions metric",
            algorithm.name()
        );
        assert_eq!(
            summary.abandoned,
            0,
            "{}: fault-free run abandoned matches",
            algorithm.name()
        );
        assert_eq!(summary.degraded_completions, 0, "{}", algorithm.name());
    }
}

#[test]
fn tracing_does_not_perturb_answers() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(150);
    for algorithm in algorithms() {
        let plain = fx.eval(&algorithm, &EvalOptions::top_k(10));
        let traced = fx.eval(&algorithm, &traced_options(10));
        assert_eq!(
            answer_key(&plain),
            answer_key(&traced),
            "{}: tracing changed the answers",
            algorithm.name()
        );
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
    }
}

#[test]
fn budgeted_runs_stay_balanced() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(150);
    for algorithm in algorithms() {
        // A tight operation budget forces the abandon path: matches
        // still in flight at expiry must each get exactly one
        // MatchAbandoned terminal.
        let options = EvalOptions {
            max_server_ops: Some(40),
            ..traced_options(10)
        };
        let result = fx.eval(&algorithm, &options);
        let trace = result.trace.as_ref().expect("trace requested");
        assert_stream_invariants(trace, algorithm.name());
        assert!(
            trace.summary().consumed <= 40 + 4,
            "{}: budget overshot",
            algorithm.name()
        );
    }
}

#[test]
fn faulted_runs_stay_balanced() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(150);
    for algorithm in algorithms() {
        // Kill one mid-plan server early: its queued matches flow
        // through the degradation path (abandon + respawn-as-degraded),
        // which must keep the conservation law intact.
        let options = EvalOptions {
            fault_plan: Some(
                FaultPlan::seeded(7).with(QNodeId(2), FaultKind::Fail { after_ops: 5 }),
            ),
            ..traced_options(10)
        };
        let result = fx.eval(&algorithm, &options);
        let trace = result.trace.as_ref().expect("trace requested");
        assert_stream_invariants(trace, algorithm.name());
    }
}

#[test]
fn chrome_trace_output_is_well_formed() {
    if !tracing_compiled() {
        return;
    }
    let fx = Fixture::new(60);
    for algorithm in algorithms() {
        let result = fx.eval(&algorithm, &traced_options(5));
        let trace = result.trace.as_ref().expect("trace requested");
        let mut buf = Vec::new();
        trace.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).expect("trace output is UTF-8");
        let name = algorithm.name();

        assert!(text.starts_with("{\n"), "{name}");
        assert!(text.contains("\"traceEvents\": ["), "{name}");
        assert!(text.trim_end().ends_with('}'), "{name}");
        // One JSON record per event plus one thread_name metadata
        // record per worker, each carrying exactly one "ph" marker.
        assert_eq!(
            text.matches("\"ph\": \"").count(),
            trace.events.len() + trace.workers.len(),
            "{name}: record count"
        );
        // Every engine emits metadata, spans, complete ops, and
        // instants. Counter tracks ("C") come from threshold/queue
        // samples, which LockStep-NoPrun has none of by design.
        for ph in ["\"M\"", "\"B\"", "\"E\"", "\"X\"", "\"i\""] {
            assert!(
                text.contains(&format!("\"ph\": {ph}")),
                "{name}: missing ph {ph}"
            );
        }
        let has_samples = trace.events.iter().any(|e| {
            matches!(
                e.kind,
                whirlpool_core::trace::TraceEventKind::ThresholdSample { .. }
                    | whirlpool_core::trace::TraceEventKind::QueueDepth { .. }
            )
        });
        assert_eq!(text.contains("\"ph\": \"C\""), has_samples, "{name}");
        // No NaN/Infinity can leak into the JSON.
        assert!(!text.contains("NaN") && !text.contains("inf"), "{name}");
    }
}
