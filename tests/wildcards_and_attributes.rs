//! Tests for the query-language extensions: wildcard node tests (`*`)
//! and attribute predicates (`@name`, `@name = 'value'`).

use whirlpool_core::{answers_equivalent, evaluate, naive, Algorithm, EvalOptions, RelaxMode};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{parse_pattern, relax};
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xml::{parse_document, Document, NodeId};

const SRC: &str = "<site>\
    <item id=\"i1\"><incategory category=\"cat7\"/><name>alpha</name></item>\
    <item id=\"i2\"><incategory category=\"cat9\"/><name>beta</name></item>\
    <item id=\"i3\"><name>gamma</name></item>\
    <item><wrapper><incategory category=\"cat7\"/></wrapper><name>delta</name></item>\
    </site>";

fn exact_roots(doc: &Document, query: &str) -> Vec<NodeId> {
    let pattern = parse_pattern(query).unwrap();
    let index = TagIndex::build(doc);
    let model = TfIdfModel::build(doc, &index, &pattern, Normalization::Sparse);
    let mut options = EvalOptions::top_k(1000);
    options.relax = RelaxMode::Exact;
    let result = evaluate(
        doc,
        &index,
        &pattern,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    let mut roots: Vec<NodeId> = result.answers.iter().map(|a| a.root).collect();
    roots.sort_unstable();
    roots
}

#[test]
fn attribute_presence_and_equality() {
    let doc = parse_document(SRC).unwrap();

    // Presence: items with any incategory child carrying @category.
    let with_attr = exact_roots(&doc, "//item[./incategory[@category]]");
    assert_eq!(with_attr.len(), 2, "items i1, i2");

    // Equality: only the cat7 item (the nested one needs relaxation).
    let cat7 = exact_roots(&doc, "//item[./incategory[@category = 'cat7']]");
    assert_eq!(cat7.len(), 1);

    // Attribute test on the root node itself.
    let by_id = exact_roots(&doc, "//item[@id = 'i2']");
    assert_eq!(by_id.len(), 1);
    let by_any_id = exact_roots(&doc, "//item[@id]");
    assert_eq!(by_any_id.len(), 3, "the fourth item has no id");
}

#[test]
fn attribute_tests_agree_with_naive() {
    let doc = parse_document(SRC).unwrap();
    for query in [
        "//item[./incategory[@category = 'cat7']]",
        "//item[@id and ./name]",
        "//item[./incategory[@category]]",
        "//item[.//incategory[@category = 'cat7']]",
    ] {
        let pattern = parse_pattern(query).unwrap();
        let mut expected = naive::exact_match_roots(&doc, &pattern);
        expected.sort_unstable();
        assert_eq!(exact_roots(&doc, query), expected, "{query}");
    }
}

#[test]
fn wildcard_node_tests() {
    let doc = parse_document(
        "<r>\
         <item><a><x/></a></item>\
         <item><b><x/></b></item>\
         <item><x/></item>\
         <item><c/></item>\
         </r>",
    )
    .unwrap();
    // x reachable through exactly one intermediate element of any tag.
    let two_step = exact_roots(&doc, "//item[./*/x]");
    assert_eq!(two_step.len(), 2);
    // Any child at all.
    let any_child = exact_roots(&doc, "//item[./*]");
    assert_eq!(any_child.len(), 4);
    // Wildcard agrees with naive.
    for query in ["//item[./*/x]", "//item[./*]", "//item[.//*]"] {
        let pattern = parse_pattern(query).unwrap();
        let mut expected = naive::exact_match_roots(&doc, &pattern);
        expected.sort_unstable();
        assert_eq!(exact_roots(&doc, query), expected, "{query}");
    }
}

#[test]
fn relaxed_mode_scores_attribute_matches_higher() {
    let doc = parse_document(SRC).unwrap();
    let pattern = parse_pattern("//item[./incategory[@category = 'cat7']]").unwrap();
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::None);
    let result = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(10),
    );
    assert_eq!(result.answers.len(), 4, "all items are approximate answers");
    // The exact cat7 item outranks the nested cat7 item, which outranks
    // the attribute-less ones.
    let top = result.answers[0].root;
    assert_eq!(doc.attribute(top, "id"), Some("i1"));
    assert!(result.answers[0].score > result.answers[1].score);
    assert!(
        result.answers[1].score.value() > 0.0,
        "nested cat7 still scores"
    );
    assert_eq!(result.answers[3].score.value(), 0.0);
}

#[test]
fn engines_agree_with_extensions() {
    let doc = parse_document(SRC).unwrap();
    for query in [
        "//item[./incategory[@category = 'cat7'] and ./name]",
        "//item[./*[@category]]",
        "//item[@id and ./*]",
    ] {
        let pattern = parse_pattern(query).unwrap();
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let options = EvalOptions::top_k(4);
        let reference = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::LockStepNoPrune,
            &options,
        );
        for alg in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let got = evaluate(&doc, &index, &pattern, &model, &alg, &options);
            assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "{query} alg={}",
                alg.name()
            );
        }
    }
}

#[test]
fn relaxations_preserve_attribute_tests() {
    let query = parse_pattern("//item[./incategory[@category = 'cat7']]").unwrap();
    for relaxed in relax::enumerate(&query, 100) {
        // Any relaxed query that still mentions incategory keeps its
        // attribute test.
        for id in relaxed.node_ids() {
            if relaxed.node(id).tag == "incategory" {
                assert_eq!(relaxed.node(id).attrs.len(), 1, "{relaxed}");
            }
        }
    }
}

#[test]
fn display_roundtrips_extensions() {
    for src in [
        "//item[@id = 'i1' and ./name]",
        "//item[./incategory[@category]]",
        "//item[./*[./x]]",
        "//*[./name]",
    ] {
        let q = parse_pattern(src).unwrap();
        let printed = q.to_string();
        let reparsed =
            parse_pattern(&printed).unwrap_or_else(|e| panic!("cannot reparse {printed:?}: {e}"));
        assert_eq!(q.canonical_form(), reparsed.canonical_form(), "{src}");
    }
}

#[test]
fn wildcard_root_query() {
    let doc = parse_document("<r><a><k/></a><b><k/></b><c/></r>").unwrap();
    let roots = exact_roots(&doc, "//*[./k]");
    assert_eq!(roots.len(), 2);
    let pattern = parse_pattern("//*[./k]").unwrap();
    let mut expected = naive::exact_match_roots(&doc, &pattern);
    expected.sort_unstable();
    assert_eq!(roots, expected);
}

#[test]
fn parser_rejects_wildcard_attribute_names() {
    assert!(parse_pattern("//item[@* = 'x']").is_err());
}

#[test]
fn q4_on_generated_data_agrees_with_naive() {
    let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(80));
    let query = whirlpool_xmark::queries::Q4;
    let pattern = parse_pattern(query).unwrap();
    let mut expected = naive::exact_match_roots(&doc, &pattern);
    expected.sort_unstable();
    assert!(!expected.is_empty(), "Q4 should match generated items");
    assert_eq!(exact_roots(&doc, query), expected);

    // And all engines agree on the relaxed top-k.
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    let options = EvalOptions::top_k(15);
    let reference = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::LockStepNoPrune,
        &options,
    );
    for alg in [
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ] {
        let got = evaluate(&doc, &index, &pattern, &model, &alg, &options);
        assert!(
            answers_equivalent(&got.answers, &reference.answers, 1e-9),
            "{}",
            alg.name()
        );
    }
}
