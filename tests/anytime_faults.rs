//! Anytime evaluation and fault tolerance, end to end.
//!
//! Two families of guarantees:
//!
//! * **Budgets** (deadline / `max_server_ops`): a run cut short returns
//!   the current top-k tagged `Truncated` with a *score bound* — a
//!   certificate that no answer missing from the prefix could score
//!   above it. With no budget the result is byte-identical to the
//!   pre-existing exact behavior.
//! * **Faults**: a server that fails or panics is isolated; the run
//!   completes without aborting or hanging, survivors absorb the dead
//!   server's work, and the same score-bound certificate covers
//!   whatever was degraded.
//!
//! Note on "monotonicity": the literal property "a smaller budget's
//! answers are a prefix of a larger budget's" is *false* — per-root
//! scores improve as more matches complete, so rankings shift. The true
//! monotone quantities, asserted here for the deterministic sequential
//! engines, are (1) the per-root score of any root present in both
//! runs, and (2) the k-th score once the set is full.

use proptest::prelude::*;
use std::time::Duration;
use whirlpool_core::{
    evaluate, Algorithm, Completeness, EvalOptions, FaultKind, FaultPlan, RankedAnswer,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::QNodeId;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

const EPS: f64 = 1e-9;

struct Fixture {
    doc: whirlpool_xml::Document,
    index: TagIndex,
    query: whirlpool_pattern::TreePattern,
}

impl Fixture {
    fn new(items: usize) -> Self {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        let query = queries::parse(queries::Q2);
        Fixture { doc, index, query }
    }

    fn eval(&self, algorithm: &Algorithm, options: &EvalOptions) -> whirlpool_core::EvalResult {
        let model = TfIdfModel::build(&self.doc, &self.index, &self.query, Normalization::Sparse);
        evaluate(
            &self.doc,
            &self.index,
            &self.query,
            &model,
            algorithm,
            options,
        )
    }
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ]
}

/// Checks the anytime certificate of `truncated` against the exact
/// top-k: every returned answer scores within the bound, and every
/// exact answer *missing* from the truncated prefix could not have
/// beaten it.
fn assert_certificate_valid(
    truncated: &[RankedAnswer],
    completeness: &Completeness,
    exact: &[RankedAnswer],
    context: &str,
) {
    let Some(bound) = completeness.score_bound() else {
        panic!("{context}: expected a truncated result, got {completeness:?}");
    };
    for a in truncated {
        assert!(
            a.score.value() <= bound + EPS,
            "{context}: returned answer {a:?} above the bound {bound}"
        );
    }
    for e in exact {
        let present = truncated.iter().any(|a| a.root == e.root);
        assert!(
            present || e.score.value() <= bound + EPS,
            "{context}: missing answer {e:?} exceeds the bound {bound}"
        );
    }
}

// ---------------------------------------------------------------------
// Budgets.

#[test]
fn no_budget_means_exact_for_every_engine() {
    let fx = Fixture::new(40);
    for alg in algorithms() {
        let r = fx.eval(&alg, &EvalOptions::top_k(5));
        assert!(r.completeness.is_exact(), "{}", alg.name());
        assert_eq!(r.metrics.deadline_hits, 0, "{}", alg.name());
    }
}

#[test]
fn zero_op_budget_returns_certified_prefix() {
    let fx = Fixture::new(40);
    let exact = fx
        .eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5))
        .answers;
    for alg in algorithms() {
        let mut options = EvalOptions::top_k(5);
        options.max_server_ops = Some(0);
        let r = fx.eval(&alg, &options);
        assert!(
            !r.completeness.is_exact(),
            "{}: a zero budget cannot complete this query",
            alg.name()
        );
        assert!(r.metrics.deadline_hits >= 1, "{}", alg.name());
        assert_certificate_valid(&r.answers, &r.completeness, &exact, alg.name());
    }
}

#[test]
fn generous_op_budget_is_exact_and_identical() {
    let fx = Fixture::new(40);
    let reference = fx.eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5));
    let mut options = EvalOptions::top_k(5);
    options.max_server_ops = Some(u64::MAX);
    let r = fx.eval(&Algorithm::WhirlpoolS, &options);
    assert!(r.completeness.is_exact());
    assert_eq!(r.metrics.deadline_hits, 0);
    let got: Vec<_> = r.answers.iter().map(|a| (a.root, a.score)).collect();
    let want: Vec<_> = reference
        .answers
        .iter()
        .map(|a| (a.root, a.score))
        .collect();
    assert_eq!(got, want, "a non-binding budget changed the answers");
}

#[test]
fn tight_deadline_still_returns() {
    let fx = Fixture::new(60);
    for alg in algorithms() {
        let mut options = EvalOptions::top_k(5);
        options.deadline = Some(Duration::ZERO);
        let r = fx.eval(&alg, &options);
        // An already-expired deadline: the run must return promptly and
        // label itself honestly (seed-only answers may still surface).
        assert!(
            !r.completeness.is_exact() || r.answers.is_empty(),
            "{}",
            alg.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budget monotonicity for the deterministic sequential engines:
    /// growing the op budget never worsens the k-th score (once full)
    /// or any root's score, and every prefix carries a valid
    /// certificate against the exact answer.
    #[test]
    fn op_budgets_improve_monotonically(
        items in 15usize..50,
        k in 1usize..8,
        small in 0u64..60,
        extra in 1u64..200,
        lockstep in any::<bool>(),
    ) {
        let fx = Fixture::new(items);
        let alg = if lockstep { Algorithm::LockStep } else { Algorithm::WhirlpoolS };
        let exact = fx.eval(&alg, &EvalOptions::top_k(k));
        prop_assert!(exact.completeness.is_exact());

        let run = |ops: u64| {
            let mut options = EvalOptions::top_k(k);
            options.max_server_ops = Some(ops);
            fx.eval(&alg, &options)
        };
        let r1 = run(small);
        let r2 = run(small + extra);

        for r in [&r1, &r2] {
            if let Completeness::Truncated { .. } = r.completeness {
                assert_certificate_valid(&r.answers, &r.completeness, &exact.answers, alg.name());
            }
        }
        // Per-root: a root surviving into both prefixes never loses score.
        for a1 in &r1.answers {
            if let Some(a2) = r2.answers.iter().find(|a| a.root == a1.root) {
                prop_assert!(
                    a2.score.value() + EPS >= a1.score.value(),
                    "root {:?} got worse with a larger budget: {} -> {}",
                    a1.root, a1.score.value(), a2.score.value()
                );
            }
        }
        // k-th score: once the small-budget set is full, the bigger
        // budget's k-th entry is at least as good.
        if r1.answers.len() == k {
            prop_assert!(r2.answers.len() == k);
            let kth1 = r1.answers[k - 1].score.value();
            let kth2 = r2.answers[k - 1].score.value();
            prop_assert!(kth2 + EPS >= kth1, "k-th score regressed: {kth1} -> {kth2}");
        }
    }
}

// ---------------------------------------------------------------------
// Cancellation.

#[test]
fn mid_run_cancel_reclaims_the_worker_promptly() {
    let fx = Fixture::new(40);
    let exact = fx
        .eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5))
        .answers;
    for alg in [
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM {
            processors: Some(2),
        },
    ] {
        let token = whirlpool_core::CancelToken::new();
        let mut options = EvalOptions::top_k(5);
        // Slow every server op down so the run is mid-flight when the
        // token trips; without the cancel this query would take seconds.
        options.op_cost = Some(Duration::from_millis(2));
        options.cancel = Some(token.clone());

        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = tx.send(fx.eval(&alg, &options));
            });
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
            // Promptness is the property under test: a cancelled run
            // must hand its worker back within a drain batch, not after
            // finishing the query.
            let r = rx
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("{}: cancelled run did not return", alg.name()));
            assert!(
                !r.completeness.is_exact(),
                "{}: a mid-run cancel cannot claim exactness",
                alg.name()
            );
            assert_eq!(r.metrics.cancellations, 1, "{}", alg.name());
            assert_eq!(r.metrics.deadline_hits, 0, "{}", alg.name());
            assert_certificate_valid(&r.answers, &r.completeness, &exact, alg.name());
        });
    }
}

// ---------------------------------------------------------------------
// Faults.

#[test]
fn panic_fault_is_isolated_in_whirlpool_m() {
    let fx = Fixture::new(30);
    let exact = fx
        .eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5))
        .answers;
    let mut options = EvalOptions::top_k(5);
    options.fault_plan =
        Some(FaultPlan::seeded(7).with(QNodeId(2), FaultKind::Panic { after_ops: 3 }));
    let r = fx.eval(&Algorithm::WhirlpoolM { processors: None }, &options);
    // The run returned at all: the panic neither aborted the process
    // nor hung termination detection.
    assert_eq!(r.metrics.servers_failed, 1, "exactly one server died");
    assert!(
        r.metrics.matches_redistributed > 0,
        "the dead server's matches were rescued"
    );
    assert!(
        !r.completeness.is_exact(),
        "a lost server means the result cannot claim exactness"
    );
    assert_certificate_valid(&r.answers, &r.completeness, &exact, "whirlpool-m panic");
    // Degradation keeps relaxed answers flowing: every item root is
    // still reachable, so the prefix holds a full k answers.
    assert_eq!(r.answers.len(), 5);
}

#[test]
fn fail_fault_degrades_gracefully_in_every_engine() {
    let fx = Fixture::new(30);
    let exact = fx
        .eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5))
        .answers;
    for alg in algorithms() {
        let mut options = EvalOptions::top_k(5);
        options.fault_plan =
            Some(FaultPlan::seeded(1).with(QNodeId(1), FaultKind::Fail { after_ops: 2 }));
        let r = fx.eval(&alg, &options);
        assert_eq!(r.metrics.servers_failed, 1, "{}", alg.name());
        assert!(!r.completeness.is_exact(), "{}", alg.name());
        assert_certificate_valid(&r.answers, &r.completeness, &exact, alg.name());
    }
}

#[test]
fn delay_fault_changes_timing_but_not_answers() {
    let fx = Fixture::new(25);
    let reference = fx.eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(5));
    let mut options = EvalOptions::top_k(5);
    options.fault_plan = Some(FaultPlan::seeded(3).with(
        QNodeId(1),
        FaultKind::Delay {
            mean: Duration::from_micros(50),
        },
    ));
    let r = fx.eval(&Algorithm::WhirlpoolS, &options);
    assert!(r.completeness.is_exact(), "a slow server is not a dead one");
    assert_eq!(r.metrics.servers_failed, 0);
    let got: Vec<_> = r.answers.iter().map(|a| (a.root, a.score)).collect();
    let want: Vec<_> = reference
        .answers
        .iter()
        .map(|a| (a.root, a.score))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn exact_mode_drops_rather_than_degrades() {
    let fx = Fixture::new(30);
    for alg in algorithms() {
        let mut options = EvalOptions::top_k(5);
        options.relax = whirlpool_core::RelaxMode::Exact;
        options.fault_plan =
            Some(FaultPlan::seeded(1).with(QNodeId(1), FaultKind::Fail { after_ops: 0 }));
        let r = fx.eval(&alg, &options);
        assert!(!r.completeness.is_exact(), "{}", alg.name());
        // Exact semantics admit no null bindings: nothing is degraded.
        assert_eq!(r.metrics.answers_degraded, 0, "{}", alg.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Whirlpool-M under an arbitrary single-server fault always
    /// terminates with a certified result: no hang, no abort, at most
    /// one dead server, answers within the bound.
    #[test]
    fn whirlpool_m_survives_any_single_server_fault(
        seed in 0u64..1000,
        server in 1u8..4,
        panics in any::<bool>(),
        after_ops in 0u64..30,
        k in 1usize..8,
    ) {
        let fx = Fixture::new(25);
        let exact = fx.eval(&Algorithm::WhirlpoolS, &EvalOptions::top_k(k)).answers;
        let kind = if panics {
            FaultKind::Panic { after_ops }
        } else {
            FaultKind::Fail { after_ops }
        };
        let mut options = EvalOptions::top_k(k);
        options.fault_plan = Some(FaultPlan::seeded(seed).with(QNodeId(server), kind));
        let r = fx.eval(&Algorithm::WhirlpoolM { processors: None }, &options);
        prop_assert!(r.metrics.servers_failed <= 1);
        match r.completeness {
            Completeness::Exact => {
                // The faulted server died after the query had already
                // drained — only possible if the fault never fired.
                prop_assert!(r.metrics.servers_failed == 0);
            }
            Completeness::Truncated { .. } => {
                assert_certificate_valid(&r.answers, &r.completeness, &exact, "fault prop");
            }
        }
    }
}
