//! Differential testing of the engines' *exact* mode against the naive
//! recursive tree-pattern evaluator, over both the XMark generator and
//! property-generated random documents/queries.

use proptest::prelude::*;
use whirlpool_core::{evaluate, naive, Algorithm, EvalOptions, RelaxMode};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{parse_pattern, Axis, TreePattern};
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};
use whirlpool_xml::{Document, DocumentBuilder, NodeId};

/// Exact-mode engine roots must equal the naive evaluator's roots.
fn assert_exact_agrees(doc: &Document, query: &TreePattern) {
    let index = TagIndex::build(doc);
    let model = TfIdfModel::build(doc, &index, query, Normalization::Sparse);
    let mut options = EvalOptions::top_k(1_000_000);
    options.relax = RelaxMode::Exact;

    let mut expected: Vec<NodeId> = naive::exact_match_roots(doc, query);
    expected.sort_unstable();

    for alg in [
        Algorithm::LockStepNoPrune,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ] {
        let result = evaluate(doc, &index, query, &model, &alg, &options);
        let mut got: Vec<NodeId> = result.answers.iter().map(|a| a.root).collect();
        got.sort_unstable();
        assert_eq!(got, expected, "alg={} query={query}", alg.name());
    }
}

#[test]
fn xmark_exact_roots_match_naive() {
    let doc = generate(&GeneratorConfig::items(60));
    for (_, query) in queries::benchmark_queries() {
        assert_exact_agrees(&doc, &query);
    }
}

#[test]
fn handcrafted_edge_cases() {
    let cases = [
        // Same tag at several depths.
        ("<a><a><a/></a></a>", "//a[./a]"),
        ("<a><a><a/></a></a>", "//a[.//a]"),
        // Sibling multiplicity.
        ("<r><i><x/><x/><y/></i><i><x/></i></r>", "//i[./x and ./y]"),
        // Values.
        (
            "<r><b><t>q</t></b><b><t>z</t></b><b><u><t>q</t></u></b></r>",
            "//b[./t = 'q']",
        ),
        (
            "<r><b><t>q</t></b><b><t>z</t></b><b><u><t>q</t></u></b></r>",
            "//b[.//t = 'q']",
        ),
        // Deep chains with pc composition.
        (
            "<r><i><m><n><o/></n></m></i><i><m><o/></m></i></r>",
            "//i[./m/n/o]",
        ),
        // Nested predicates.
        (
            "<r><i><t><b/><k/></t></i><i><t><b/></t></i></r>",
            "//i[./t[./b and ./k]]",
        ),
        // Root axis.
        ("<b><t/></b>", "/b[./t]"),
        ("<r><b><t/></b></r>", "/b[./t]"),
    ];
    for (src, q) in cases {
        let doc = whirlpool_xml::parse_document(src).unwrap();
        let query = parse_pattern(q).unwrap();
        assert_exact_agrees(&doc, &query);
    }
}

// ---------------------------------------------------------------------
// Property-based: random documents × random queries over a tiny tag
// alphabet, so collisions (and hence interesting matches) are frequent.
// ---------------------------------------------------------------------

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone)]
struct RandomTree {
    tag: usize,
    children: Vec<RandomTree>,
}

fn tree_strategy() -> impl Strategy<Value = RandomTree> {
    let leaf = (0usize..TAGS.len()).prop_map(|tag| RandomTree {
        tag,
        children: vec![],
    });
    leaf.prop_recursive(4, 24, 3, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| RandomTree { tag, children })
    })
}

#[derive(Debug, Clone)]
struct RandomQuery {
    tag: usize,
    axis: bool, // true = descendant
    children: Vec<RandomQuery>,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    let leaf = (0usize..TAGS.len(), any::<bool>()).prop_map(|(tag, axis)| RandomQuery {
        tag,
        axis,
        children: vec![],
    });
    leaf.prop_recursive(3, 8, 2, |inner| {
        (
            0usize..TAGS.len(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, children)| RandomQuery {
                tag,
                axis,
                children,
            })
    })
}

fn build_doc(tree: &RandomTree) -> Document {
    fn rec(t: &RandomTree, b: &mut DocumentBuilder) {
        b.open(TAGS[t.tag]);
        for c in &t.children {
            rec(c, b);
        }
        b.close();
    }
    let mut b = DocumentBuilder::new();
    rec(tree, &mut b);
    b.finish()
}

fn build_query(q: &RandomQuery) -> TreePattern {
    fn rec(q: &RandomQuery, parent: whirlpool_pattern::QNodeId, p: &mut TreePattern) {
        let axis = if q.axis {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let id = p.add_node(parent, axis, TAGS[q.tag], None);
        for c in &q.children {
            rec(c, id, p);
        }
    }
    let mut p = TreePattern::new(TAGS[q.tag], Axis::Descendant);
    let root = p.root();
    for c in &q.children {
        rec(c, root, &mut p);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_docs_and_queries_agree_with_naive(
        tree in tree_strategy(),
        query in query_strategy(),
    ) {
        let doc = build_doc(&tree);
        let pattern = build_query(&query);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let mut options = EvalOptions::top_k(1_000_000);
        options.relax = RelaxMode::Exact;

        let mut expected: Vec<NodeId> = naive::exact_match_roots(&doc, &pattern);
        expected.sort_unstable();

        let result = evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS, &options);
        let mut got: Vec<NodeId> = result.answers.iter().map(|a| a.root).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected, "query={}", pattern);
    }

    /// In relaxed mode every root candidate survives (outer-join
    /// semantics), and exact-match roots are among the answers.
    #[test]
    fn relaxed_mode_is_complete(
        tree in tree_strategy(),
        query in query_strategy(),
    ) {
        let doc = build_doc(&tree);
        let pattern = build_query(&query);
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let options = EvalOptions::top_k(1_000_000);

        let result = evaluate(&doc, &index, &pattern, &model, &Algorithm::WhirlpoolS, &options);
        let answer_roots: std::collections::HashSet<NodeId> =
            result.answers.iter().map(|a| a.root).collect();

        // Every node with the root tag is an approximate answer.
        let root_tag = &pattern.node(pattern.root()).tag;
        for n in doc.elements() {
            if doc.tag_str(n) == root_tag {
                prop_assert!(answer_roots.contains(&n), "missing root candidate {n:?}");
            }
        }
        // Exact matches are answers too (subset check).
        for r in naive::exact_match_roots(&doc, &pattern) {
            prop_assert!(answer_roots.contains(&r));
        }
    }
}
