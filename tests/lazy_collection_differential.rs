//! Disk-resident lazy collections are a pure representation change.
//!
//! Two properties, both over randomly generated element trees (not
//! XMark — the generator here produces arbitrary nestings of a small
//! tag alphabet, so query paths exist, exist only in the wrong
//! arrangement, or don't exist at all):
//!
//! * **Lazy == eager.** A collection opened with
//!   [`Collection::open_dir`] (attach-on-visit, path-synopsis
//!   ceilings, LRU residency) returns a tie-equivalent top-k to the
//!   scan-all run that attaches every shard — across engines, shard
//!   worker counts, and `max_resident` ∈ {1, 4, ∞}. Eviction and
//!   re-attach must never change an answer.
//!
//! * **Ceilings never under-estimate.** For every shard, the
//!   path-aware ceiling ([`shard_ceiling_with_paths`]) bounds every
//!   score that shard can actually produce under the shared corpus
//!   model — relaxed ceilings bound relaxed runs, exact ceilings
//!   bound exact runs, and a `None` ceiling means a provably empty
//!   shard. This is the soundness contract that makes
//!   pruned-before-attach safe: a shard discarded on synopsis evidence
//!   alone can never have held a top-k answer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use whirlpool_core::{
    collection_answers_equivalent, evaluate_collection, shard_ceiling, Algorithm, Collection,
    CollectionAnswer, CollectionOptions, Completeness, EvalOptions, RelaxMode,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{parse_pattern, TreePattern};
use whirlpool_score::Normalization;
use whirlpool_xml::parse_document;

const EPS: f64 = 1e-9;

/// Tags the generator draws from: a mix of the query alphabet (so
/// matches, partial matches, and arrangement mismatches all occur) and
/// noise tags.
const TAGS: [&str; 8] = [
    "book", "title", "isbn", "price", "archive", "info", "note", "shelf",
];

/// Queries whose server paths range from flat child steps to nested
/// chains — exercising the dataguide intersection at every depth.
const QUERIES: [&str; 4] = [
    "//book[./title and ./isbn]",
    "//book[.//price]",
    "//book[./info/isbn and ./title]",
    "//archive[./isbn and .//note]",
];

fn emit(rng: &mut StdRng, depth: usize, out: &mut String) {
    let tag = TAGS[rng.gen_range(0..TAGS.len())];
    out.push_str(&format!("<{tag}>"));
    if depth < 4 {
        for _ in 0..rng.gen_range(0..=3) {
            if rng.gen_bool(0.6) {
                emit(rng, depth + 1, out);
            }
        }
    }
    if rng.gen_bool(0.3) {
        out.push_str(&format!("x{}", rng.gen_range(0..9)));
    }
    out.push_str(&format!("</{tag}>"));
}

/// A random element tree under a fixed `<lib>` root. Same seed, same
/// document.
fn random_doc(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("<lib>");
    for _ in 0..rng.gen_range(1..=6) {
        emit(&mut rng, 0, &mut out);
    }
    out.push_str("</lib>");
    out
}

/// Writes each source as a snapshot shard in a fresh unique temp dir.
fn write_snapshot_dir(sources: &[String]) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("wp-lazy-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (i, src) in sources.iter().enumerate() {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        whirlpool_store::save_snapshot(&doc, &index, dir.join(format!("s{i:02}.wps"))).unwrap();
    }
    dir
}

fn run_lazy(
    dir: &std::path::Path,
    pattern: &TreePattern,
    algorithm: &Algorithm,
    k: usize,
    workers: usize,
    max_resident: usize,
    copts: &CollectionOptions,
) -> Vec<CollectionAnswer> {
    let collection = Collection::open_dir(dir).unwrap();
    collection.set_max_resident(max_resident);
    let r = evaluate_collection(
        &collection,
        pattern,
        algorithm,
        &EvalOptions::top_k(k),
        Normalization::Sparse,
        &copts.clone().with_threads(workers),
    );
    assert!(
        matches!(r.completeness, Completeness::Exact),
        "unbudgeted lazy run must not truncate: {:?}",
        r.collection_metrics
    );
    r.answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Attach-on-visit, ceiling pruning, LRU eviction, and cross-shard
    /// workers are all answer-preserving: every engine, worker count,
    /// and residency cap agrees tie-aware with the scan-all run that
    /// attaches everything.
    #[test]
    fn lazy_matches_eager_across_engines_workers_and_residency(
        shards in 2usize..7,
        seed in 0u64..1000,
        k in 1usize..8,
        q in 0usize..QUERIES.len(),
    ) {
        let sources: Vec<String> = (0..shards)
            .map(|i| random_doc(seed.wrapping_mul(31).wrapping_add(i as u64)))
            .collect();
        let dir = write_snapshot_dir(&sources);
        let pattern = parse_pattern(QUERIES[q]).unwrap();

        let eager = run_lazy(
            &dir, &pattern, &Algorithm::WhirlpoolS, k, 1, 0,
            &CollectionOptions::scan_all(),
        );
        let engines = [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ];
        for algorithm in &engines {
            for workers in [1usize, 4] {
                for max_resident in [1usize, 4, 0] {
                    let got = run_lazy(
                        &dir, &pattern, algorithm, k, workers, max_resident,
                        &CollectionOptions::default(),
                    );
                    prop_assert!(
                        collection_answers_equivalent(&got, &eager, EPS),
                        "seed={seed} shards={shards} k={k} q={} {} workers={workers} \
                         max_resident={max_resident}:\n got {got:?}\n ref {eager:?}",
                        QUERIES[q],
                        algorithm.name(),
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The path-aware shard ceiling is a sound upper bound on what the
    /// collection driver can actually produce: an exhaustive scan-all
    /// run (k large enough to keep every answer, no pruning) never
    /// yields an answer whose score exceeds its shard's ceiling, and a
    /// `None` ceiling certifies that its shard contributes nothing —
    /// in both relax modes. The dataguide refinement is also monotone:
    /// intersecting query paths can only lower the tag-count bound,
    /// never raise it.
    #[test]
    fn path_ceilings_never_underestimate_brute_force_scores(
        shards in 1usize..6,
        seed in 0u64..1000,
        q in 0usize..QUERIES.len(),
    ) {
        let mut collection = Collection::new();
        for i in 0..shards {
            let src = random_doc(seed.wrapping_mul(53).wrapping_add(i as u64));
            collection.add_source(format!("s{i:02}"), &src).unwrap();
        }
        let pattern = parse_pattern(QUERIES[q]).unwrap();
        let model = collection
            .corpus_stats(&pattern)
            .model(Normalization::Sparse);

        for relax in [RelaxMode::Relaxed, RelaxMode::Exact] {
            // Refinement monotonicity, per shard: the path-aware bound
            // never exceeds the tag-count-only bound.
            for (idx, shard) in collection.shards().iter().enumerate() {
                let with_paths = collection.shard_ceiling(idx, &pattern, &model, relax);
                let tag_only = shard_ceiling(shard.synopsis(), &pattern, &model, relax);
                match (with_paths, tag_only) {
                    (Some(p), Some(t)) => prop_assert!(
                        p.value() <= t.value() + EPS,
                        "seed={seed} shard={idx} q={} {relax:?}: path ceiling {p:?} above \
                         tag ceiling {t:?}",
                        QUERIES[q],
                    ),
                    (Some(p), None) => prop_assert!(
                        false,
                        "seed={seed} shard={idx} q={} {relax:?}: paths resurrected a \
                         tag-empty shard ({p:?})",
                        QUERIES[q],
                    ),
                    (None, _) => {}
                }
            }

            // Soundness against the driver itself: every answer an
            // exhaustive scan produces stays under its shard's ceiling.
            let options = EvalOptions {
                relax,
                ..EvalOptions::top_k(1000)
            };
            let r = evaluate_collection(
                &collection,
                &pattern,
                &Algorithm::WhirlpoolS,
                &options,
                Normalization::Sparse,
                &CollectionOptions::scan_all(),
            );
            for a in &r.answers {
                let ceiling = collection.shard_ceiling(a.shard, &pattern, &model, relax);
                match ceiling {
                    None => prop_assert!(
                        false,
                        "seed={seed} q={} {relax:?}: shard {} answered {a:?} but its \
                         ceiling was None",
                        QUERIES[q],
                        a.shard,
                    ),
                    Some(ceil) => prop_assert!(
                        a.score.value() <= ceil.value() + EPS,
                        "seed={seed} q={} {relax:?}: {a:?} above ceiling {ceil:?}",
                        QUERIES[q],
                    ),
                }
            }
        }
    }
}
