//! The sharded collection driver is a pure orchestration change.
//!
//! The reference semantics of a collection query: build the corpus
//! model once (document-frequency counts pooled over every shard), run
//! each shard *independently* under that model, concatenate the
//! per-shard answers, and keep the global top-k. The driver's
//! optimizations — ceiling-ordered visits, threshold sharing, shard
//! pruning, shard-level workers — must all reproduce exactly that
//! result:
//!
//! * every engine, at every worker count, agrees with the concatenated
//!   single-shard reference (tie-aware: tied boundary groups may
//!   resolve differently);
//! * shard pruning on random document splits never changes the answer
//!   set (proptest);
//! * a single-shard collection reduces to the plain per-document model
//!   and engines.

use proptest::prelude::*;
use whirlpool_core::{
    collection_answers_equivalent, evaluate, evaluate_collection, evaluate_with_context, Algorithm,
    Collection, CollectionAnswer, CollectionOptions, Completeness, ContextOptions, EvalOptions,
    QueryContext,
};
use whirlpool_pattern::TreePattern;
use whirlpool_score::{Normalization, ScoreModel, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

const EPS: f64 = 1e-9;
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

/// Three XMark documents of different sizes and seeds: shards with
/// genuinely different selectivities and document frequencies, so the
/// corpus model differs from every per-document model.
fn xmark_collection() -> Collection {
    let mut c = Collection::new();
    for (i, (bytes, seed)) in [(30_000usize, 11u64), (60_000, 22), (90_000, 33)]
        .iter()
        .enumerate()
    {
        let doc = generate(&GeneratorConfig {
            target_bytes: *bytes,
            seed: *seed,
            max_items: None,
        });
        c.add_document(format!("doc-{i}"), doc);
    }
    c
}

/// The concatenated reference: each shard evaluated on its own under
/// the shared corpus model (no threshold sharing, no pruning, no
/// budgets), all answers pooled, global top-k kept. Mirrors the
/// driver's `(score, shard, root)` ordering so only genuinely tied
/// boundary groups can differ.
fn concatenated_reference(
    collection: &Collection,
    pattern: &TreePattern,
    model: &dyn ScoreModel,
    algorithm: &Algorithm,
    k: usize,
) -> Vec<CollectionAnswer> {
    let mut all: Vec<CollectionAnswer> = Vec::new();
    for (idx, shard) in collection.shards().iter().enumerate() {
        let ctx = QueryContext::new_view(
            shard.doc(),
            shard.index(),
            pattern,
            model,
            ContextOptions::default(),
        );
        let r = evaluate_with_context(&ctx, algorithm, &EvalOptions::top_k(k));
        assert!(
            matches!(r.completeness, Completeness::Exact),
            "reference shard run must not truncate"
        );
        all.extend(r.answers.iter().map(|a| CollectionAnswer {
            shard: idx,
            root: a.root,
            score: a.score,
        }));
    }
    all.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then(b.shard.cmp(&a.shard))
            .then(b.root.cmp(&a.root))
    });
    all.truncate(k);
    all
}

#[test]
fn collection_matches_concatenated_single_shard_runs() {
    let collection = xmark_collection();
    let engines = [
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ];
    for (name, pattern) in [
        ("Q1", queries::parse(queries::Q1)),
        ("Q2", queries::parse(queries::Q2)),
    ] {
        let k = 12;
        let model = collection
            .corpus_stats(&pattern)
            .model(Normalization::Sparse);
        for algorithm in &engines {
            let reference = concatenated_reference(&collection, &pattern, &model, algorithm, k);
            for workers in WORKER_COUNTS {
                let got = evaluate_collection(
                    &collection,
                    &pattern,
                    algorithm,
                    &EvalOptions::top_k(k),
                    Normalization::Sparse,
                    &CollectionOptions::default().with_threads(workers),
                );
                assert!(
                    matches!(got.completeness, Completeness::Exact),
                    "{name} {} workers={workers}: unbudgeted run truncated",
                    algorithm.name(),
                );
                assert!(
                    collection_answers_equivalent(&got.answers, &reference, EPS),
                    "{name} {} workers={workers}: collection diverged from the \
                     concatenated reference\n got {:?}\n ref {:?}",
                    algorithm.name(),
                    got.answers,
                    reference,
                );
            }
        }
    }
}

#[test]
fn single_shard_collection_reduces_to_the_per_document_run() {
    let doc = generate(&GeneratorConfig {
        target_bytes: 40_000,
        seed: 7,
        max_items: None,
    });
    let pattern = queries::parse(queries::Q2);
    let index = whirlpool_index::TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
    let plain = evaluate(
        &doc,
        &index,
        &pattern,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(10),
    );

    let mut collection = Collection::new();
    collection.add_document("only", doc);
    let sharded = evaluate_collection(
        &collection,
        &pattern,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(10),
        Normalization::Sparse,
        &CollectionOptions::default(),
    );
    // With one shard the pooled document-frequency counts *are* the
    // per-document counts, so scores must agree bit-for-bit modulo
    // float noise, and so must the answer nodes.
    assert_eq!(plain.answers.len(), sharded.answers.len());
    for (p, s) in plain.answers.iter().zip(&sharded.answers) {
        assert_eq!(s.shard, 0);
        assert_eq!(p.root, s.root);
        assert!(
            (p.score.value() - s.score.value()).abs() < EPS,
            "single-shard corpus model diverged: {:?} vs {:?}",
            p,
            s
        );
    }
}

/// One fully-specified collection run for the proptest comparisons.
fn run(
    collection: &Collection,
    pattern: &TreePattern,
    k: usize,
    copts: &CollectionOptions,
) -> Vec<CollectionAnswer> {
    let r = evaluate_collection(
        collection,
        pattern,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(k),
        Normalization::Sparse,
        copts,
    );
    assert!(matches!(r.completeness, Completeness::Exact));
    r.answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard pruning and threshold sharing are answer-preserving on
    /// random splits of one document: however the corpus is sharded,
    /// every optimization combination agrees with the scan-all
    /// baseline under the same corpus model.
    #[test]
    fn random_splits_are_answer_preserving(
        items in 12usize..48,
        seed in 0u64..500,
        shards in 1usize..9,
        k in 1usize..12,
    ) {
        let doc = generate(&GeneratorConfig::items(items).with_seed(seed));
        let collection = Collection::split_document(&doc, shards);
        prop_assume!(!collection.is_empty());
        let pattern = queries::parse(queries::Q2);

        let baseline = run(&collection, &pattern, k, &CollectionOptions::scan_all());
        for (shard_pruning, share_threshold) in
            [(true, true), (true, false), (false, true)]
        {
            let copts = CollectionOptions {
                shard_pruning,
                share_threshold,
                threads: 1,
            };
            let got = run(&collection, &pattern, k, &copts);
            prop_assert!(
                collection_answers_equivalent(&got, &baseline, EPS),
                "items={items} seed={seed} shards={} k={k} pruning={shard_pruning} \
                 share={share_threshold}:\n got {got:?}\n ref {baseline:?}",
                collection.len(),
            );
        }
    }

    /// The shard-level worker pool is answer-preserving: any worker
    /// count agrees with the sequential driver on a randomly split
    /// corpus, with both optimizations live.
    #[test]
    fn random_splits_are_worker_count_invariant(
        items in 12usize..40,
        seed in 0u64..500,
        shards in 2usize..9,
        k in 1usize..10,
    ) {
        let doc = generate(&GeneratorConfig::items(items).with_seed(seed));
        let collection = Collection::split_document(&doc, shards);
        prop_assume!(!collection.is_empty());
        let pattern = queries::parse(queries::Q1);

        let sequential = run(&collection, &pattern, k, &CollectionOptions::default());
        for workers in WORKER_COUNTS {
            let got = run(
                &collection,
                &pattern,
                k,
                &CollectionOptions::default().with_threads(workers),
            );
            prop_assert!(
                collection_answers_equivalent(&got, &sequential, EPS),
                "items={items} seed={seed} shards={} k={k} workers={workers}:\n \
                 got {got:?}\n ref {sequential:?}",
                collection.len(),
            );
        }
    }
}
