//! Whole-pipeline tests: generate → serialize → reparse → index →
//! evaluate, plus determinism and virtual-time consistency.

use whirlpool_core::vtime::{simulate_whirlpool_m, VTimeConfig};
use whirlpool_core::{
    answers_equivalent, evaluate, Algorithm, ContextOptions, EvalOptions, QueryContext,
    QueuePolicy, RoutingStrategy,
};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};
use whirlpool_xml::{parse_document, write_document, DocumentStats, WriteOptions};

#[test]
fn serialize_reparse_preserves_answers() {
    let doc = generate(&GeneratorConfig::items(80));
    let xml = write_document(&doc, &WriteOptions::default());
    let reparsed = parse_document(&xml).expect("generated XML parses");

    // Same structure...
    let s1 = DocumentStats::compute(&doc);
    let s2 = DocumentStats::compute(&reparsed);
    assert_eq!(s1.element_count, s2.element_count);
    assert_eq!(s1.max_depth, s2.max_depth);

    // ...and same top-k answers (NodeIds are assigned in document order,
    // so they're comparable across the round-trip).
    let query = queries::parse(queries::Q2);
    let i1 = TagIndex::build(&doc);
    let i2 = TagIndex::build(&reparsed);
    let m1 = TfIdfModel::build(&doc, &i1, &query, Normalization::Sparse);
    let m2 = TfIdfModel::build(&reparsed, &i2, &query, Normalization::Sparse);
    let options = EvalOptions::top_k(10);
    let r1 = evaluate(&doc, &i1, &query, &m1, &Algorithm::WhirlpoolS, &options);
    let r2 = evaluate(
        &reparsed,
        &i2,
        &query,
        &m2,
        &Algorithm::WhirlpoolS,
        &options,
    );
    assert!(answers_equivalent(&r1.answers, &r2.answers, 1e-9));
}

#[test]
fn whirlpool_s_is_deterministic() {
    let doc = generate(&GeneratorConfig::items(60));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q3);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let options = EvalOptions::top_k(15);
    let first = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    for _ in 0..3 {
        let again = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        // Bit-for-bit identical: answers, order, and work counters.
        let a: Vec<_> = first.answers.iter().map(|r| (r.root, r.score)).collect();
        let b: Vec<_> = again.answers.iter().map(|r| (r.root, r.score)).collect();
        assert_eq!(a, b);
        assert_eq!(first.metrics, again.metrics);
    }
}

#[test]
fn virtual_time_simulation_matches_real_answers() {
    let doc = generate(&GeneratorConfig::items(60));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);

    let real = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(15),
    );

    for procs in [Some(1), Some(2), Some(4), None] {
        let ctx = QueryContext::new(&doc, &index, &query, &model, ContextOptions::default());
        let sim = simulate_whirlpool_m(
            &ctx,
            &RoutingStrategy::MinAlive,
            15,
            QueuePolicy::MaxFinalScore,
            &VTimeConfig {
                processors: procs,
                ..Default::default()
            },
        );
        assert!(
            answers_equivalent(&sim.answers, &real.answers, 1e-9),
            "procs={procs:?}"
        );
        assert!(sim.makespan > 0.0);
    }
}

#[test]
fn document_sizes_scale_the_workload() {
    // More document ⇒ more candidate roots ⇒ more work, same code path
    // as the Figure 11 experiment (at reduced scale).
    let query = queries::parse(queries::Q1);
    let mut ops = Vec::new();
    for items in [20usize, 80, 320] {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let r = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(15),
        );
        ops.push(r.metrics.server_ops);
    }
    assert!(ops[0] < ops[1] && ops[1] < ops[2], "{ops:?}");
}

#[test]
fn larger_k_means_less_pruning() {
    let doc = generate(&GeneratorConfig::items(200));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let mut created = Vec::new();
    for k in [3usize, 15, 75] {
        let r = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(k),
        );
        created.push(r.metrics.partials_created);
    }
    assert!(
        created[0] <= created[1] && created[1] <= created[2],
        "partial matches created should not decrease with k: {created:?}"
    );
}

#[test]
fn op_cost_injection_is_respected_end_to_end() {
    let doc = generate(&GeneratorConfig::items(20));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q1);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let mut options = EvalOptions::top_k(3);
    options.op_cost = Some(std::time::Duration::from_micros(500));
    let r = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    let floor = std::time::Duration::from_micros(500) * r.metrics.server_ops as u32;
    assert!(r.elapsed >= floor, "{:?} < {floor:?}", r.elapsed);
}
