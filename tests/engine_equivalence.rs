//! All four engines must return equivalent top-k sets for every
//! configuration: the adaptive engines only reorder and prune work that
//! provably cannot affect the answer.

use proptest::prelude::*;
use whirlpool_core::{
    answers_equivalent, evaluate, Algorithm, EvalOptions, QueuePolicy, RelaxMode, RoutingStrategy,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{permutations, QNodeId, StaticPlan};
use whirlpool_score::{Normalization, RandomScores, ScoreModel, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
        Algorithm::WhirlpoolM {
            processors: Some(2),
        },
    ]
}

#[test]
fn engines_agree_on_xmark_for_all_queries_and_k() {
    let doc = generate(&GeneratorConfig::items(120));
    let index = TagIndex::build(&doc);
    for (name, query) in queries::benchmark_queries() {
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        for k in [1, 5, 15] {
            let options = EvalOptions::top_k(k);
            let reference = evaluate(
                &doc,
                &index,
                &query,
                &model,
                &Algorithm::LockStepNoPrune,
                &options,
            );
            for alg in algorithms() {
                let got = evaluate(&doc, &index, &query, &model, &alg, &options);
                assert!(
                    answers_equivalent(&got.answers, &reference.answers, 1e-9),
                    "{name} k={k} alg={}:\n got {:?}\n ref {:?}",
                    alg.name(),
                    got.answers,
                    reference.answers
                );
            }
        }
    }
}

#[test]
fn engines_agree_under_all_routing_strategies() {
    let doc = generate(&GeneratorConfig::items(60));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let reference = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(10),
    );
    for routing in [
        RoutingStrategy::MinAlive,
        RoutingStrategy::MaxScore,
        RoutingStrategy::MinScore,
        RoutingStrategy::Static(StaticPlan::in_id_order(query.server_ids().count())),
    ] {
        let mut options = EvalOptions::top_k(10);
        options.routing = routing.clone();
        let got = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        assert!(
            answers_equivalent(&got.answers, &reference.answers, 1e-9),
            "routing={}",
            routing.name()
        );
    }
}

#[test]
fn engines_agree_under_all_queue_policies() {
    let doc = generate(&GeneratorConfig::items(60));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q1);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let reference = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(5),
    );
    for queue in [
        QueuePolicy::Fifo,
        QueuePolicy::CurrentScore,
        QueuePolicy::MaxNextScore,
        QueuePolicy::MaxFinalScore,
    ] {
        for alg in [
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let mut options = EvalOptions::top_k(5);
            options.queue = queue;
            let got = evaluate(&doc, &index, &query, &model, &alg, &options);
            assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "queue={queue:?} alg={}",
                alg.name()
            );
        }
    }
}

#[test]
fn engines_agree_for_every_static_permutation() {
    // All 120 permutations of Q2's five servers must give the same
    // answers (only the work differs) — the premise of Figures 6/7.
    let doc = generate(&GeneratorConfig::items(40));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let servers: Vec<QNodeId> = query.server_ids().collect();
    let reference = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(5),
    );
    for perm in permutations(&servers) {
        let mut options = EvalOptions::top_k(5);
        options.routing = RoutingStrategy::Static(StaticPlan::new(perm.clone()));
        let got = evaluate(&doc, &index, &query, &model, &Algorithm::LockStep, &options);
        assert!(
            answers_equivalent(&got.answers, &reference.answers, 1e-9),
            "perm={perm:?}"
        );
    }
}

#[test]
fn engines_agree_under_random_score_models() {
    let doc = generate(&GeneratorConfig::items(80));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    for seed in [1u64, 2, 3] {
        for dense in [false, true] {
            let model: Box<dyn ScoreModel> = if dense {
                Box::new(RandomScores::dense(seed, query.len()))
            } else {
                Box::new(RandomScores::sparse(seed, query.len()))
            };
            let options = EvalOptions::top_k(8);
            let reference = evaluate(
                &doc,
                &index,
                &query,
                model.as_ref(),
                &Algorithm::LockStepNoPrune,
                &options,
            );
            for alg in algorithms() {
                let got = evaluate(&doc, &index, &query, model.as_ref(), &alg, &options);
                assert!(
                    answers_equivalent(&got.answers, &reference.answers, 1e-9),
                    "seed={seed} dense={dense} alg={}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn bulk_routing_preserves_answers_and_amortizes_decisions() {
    // The §6.3.3 future-work knob: batched routing must not change the
    // top-k set, and it must cut the number of routing decisions.
    let doc = generate(&GeneratorConfig::items(100));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let reference = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &EvalOptions::top_k(10),
    );
    let mut decisions = Vec::new();
    for batch in [1usize, 4, 16, 64] {
        let mut options = EvalOptions::top_k(10);
        options.router_batch = batch;
        let got = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        assert!(
            answers_equivalent(&got.answers, &reference.answers, 1e-9),
            "batch={batch}"
        );
        decisions.push(got.metrics.routing_decisions);
    }
    assert!(
        decisions[3] < decisions[0] / 4,
        "batching should amortize routing decisions: {decisions:?}"
    );
}

#[test]
fn k_larger_than_answer_universe() {
    let doc = generate(&GeneratorConfig::items(10));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q1);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let options = EvalOptions::top_k(1000);
    let reference = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::LockStepNoPrune,
        &options,
    );
    // Every item appears (relaxed mode never loses a root).
    assert_eq!(reference.answers.len(), 10);
    for alg in algorithms() {
        let got = evaluate(&doc, &index, &query, &model, &alg, &options);
        assert!(
            answers_equivalent(&got.answers, &reference.answers, 1e-9),
            "{}",
            alg.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Binding-buffer pooling is a pure allocator optimization: on a
    /// random workload (document size, query, k, score model), every
    /// engine must return the same top-k with pooling on and off — and
    /// the pooled run must actually recycle buffers.
    #[test]
    fn pooling_never_changes_the_topk(
        items in 10usize..80,
        k in 1usize..12,
        seed in 0u64..1_000_000,
        query_idx in 0usize..3,
        dense in any::<bool>(),
    ) {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        let (name, query) = queries::benchmark_queries().swap_remove(query_idx);
        let model: Box<dyn ScoreModel> = if dense {
            Box::new(RandomScores::dense(seed, query.len()))
        } else {
            Box::new(RandomScores::sparse(seed, query.len()))
        };

        let pooled_options = EvalOptions::top_k(k);
        let unpooled_options = EvalOptions { pooling: false, ..EvalOptions::top_k(k) };
        for alg in algorithms() {
            let pooled = evaluate(&doc, &index, &query, model.as_ref(), &alg, &pooled_options);
            let unpooled =
                evaluate(&doc, &index, &query, model.as_ref(), &alg, &unpooled_options);
            prop_assert!(
                answers_equivalent(&pooled.answers, &unpooled.answers, 1e-9),
                "{name} items={items} k={k} seed={seed} alg={}:\n pooled {:?}\n plain  {:?}",
                alg.name(),
                pooled.answers,
                unpooled.answers
            );
            prop_assert!(
                unpooled.metrics.buffers_reused == 0,
                "disabled pool must never recycle ({})",
                alg.name()
            );
            prop_assert!(
                pooled.metrics.buffers_allocated <= unpooled.metrics.buffers_allocated,
                "pooling increased allocations for {}: {} > {}",
                alg.name(),
                pooled.metrics.buffers_allocated,
                unpooled.metrics.buffers_allocated
            );
            // With no deadline, op budget, or fault plan configured the
            // anytime layer must be invisible: both runs are exact and
            // none of its counters ever move.
            prop_assert!(
                pooled.completeness.is_exact() && unpooled.completeness.is_exact(),
                "idle robustness layer truncated a run ({})",
                alg.name()
            );
            for run in [&pooled, &unpooled] {
                prop_assert!(
                    run.metrics.deadline_hits == 0
                        && run.metrics.servers_failed == 0
                        && run.metrics.matches_redistributed == 0
                        && run.metrics.answers_degraded == 0,
                    "idle robustness layer touched its counters ({})",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn exact_mode_equivalence() {
    let doc = generate(&GeneratorConfig::items(80));
    let index = TagIndex::build(&doc);
    for (name, query) in queries::benchmark_queries() {
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let mut options = EvalOptions::top_k(10);
        options.relax = RelaxMode::Exact;
        let reference = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::LockStepNoPrune,
            &options,
        );
        for alg in algorithms() {
            let got = evaluate(&doc, &index, &query, &model, &alg, &options);
            assert!(
                answers_equivalent(&got.answers, &reference.answers, 1e-9),
                "{name} exact alg={}",
                alg.name()
            );
        }
    }
}
