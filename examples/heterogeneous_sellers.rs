//! The paper's introductory scenario at scale: "querying books from
//! different online sellers" — one catalog, four seller schemas, a
//! query written against the canonical schema.
//!
//! Shows that (1) exact evaluation only sees the canonical records,
//! (2) relaxed evaluation recovers records from every seller, ranked by
//! structural fidelity, and (3) the per-schema mean score follows how
//! far each schema sits from the query's layout.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example heterogeneous_sellers
//! ```

use std::collections::HashMap;
use whirlpool_core::{evaluate, Algorithm, EvalOptions, RelaxMode};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::bib::{generate_catalog, CatalogConfig, CATALOG_QUERY};
use whirlpool_xmark::queries;

fn main() {
    let doc = generate_catalog(&CatalogConfig {
        books: 500,
        ..Default::default()
    });
    let index = TagIndex::build(&doc);
    let query = queries::parse(CATALOG_QUERY);
    println!("query:   {query}\n");

    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);

    // Exact evaluation: canonical-schema records only.
    let mut options = EvalOptions::top_k(500);
    options.relax = RelaxMode::Exact;
    let exact = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    let exact_schemas: Vec<&str> = exact
        .answers
        .iter()
        .filter_map(|a| doc.attribute(a.root, "schema"))
        .collect();
    println!(
        "exact matches: {} (all canonical: {})",
        exact.answers.len(),
        exact_schemas.iter().all(|&s| s == "canonical")
    );
    assert!(exact_schemas.iter().all(|&s| s == "canonical"));

    // Relaxed evaluation: every seller's records come back, ranked.
    options.relax = RelaxMode::Relaxed;
    let relaxed = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    println!("approximate matches: {}\n", relaxed.answers.len());

    // Mean score per schema.
    let mut sums: HashMap<&str, (f64, usize)> = HashMap::new();
    for a in &relaxed.answers {
        let schema = doc.attribute(a.root, "schema").unwrap_or("?");
        let e = sums.entry(schema).or_insert((0.0, 0));
        e.0 += a.score.value();
        e.1 += 1;
    }
    let mut rows: Vec<(&str, f64, usize)> = sums
        .into_iter()
        .map(|(s, (sum, n))| (s, sum / n as f64, n))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("{:<12} {:>8} {:>12}", "schema", "records", "mean score");
    for (schema, mean, n) in &rows {
        println!("{schema:<12} {n:>8} {mean:>12.4}");
    }

    // Schemas rank by distance from the query's layout.
    let order: Vec<&str> = rows.iter().map(|r| r.0).collect();
    assert_eq!(order[0], "canonical", "canonical schema scores best");
    assert_eq!(
        *order.last().unwrap(),
        "minimal",
        "minimal schema scores worst"
    );
    println!("\nok: ranking follows structural fidelity to the query");
}
