//! Explore the relaxation space of a tree-pattern query (paper §2).
//!
//! Shows the single-step relaxations of a query, the size of the full
//! relaxation closure (the paper's argument for encoding relaxations in
//! the plan rather than rewriting: the closure is exponential), and the
//! fully relaxed form the engine's candidate universe corresponds to.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example relaxation_explorer ["//item[./a/b]"]
//! ```

use whirlpool_pattern::parse_pattern;
use whirlpool_pattern::relax::{applicable, apply, enumerate, fully_relaxed, Relaxation};

fn main() {
    let query_src = std::env::args()
        .nth(1)
        .unwrap_or_else(|| whirlpool_xmark::queries::Q2.to_string());
    let query = match parse_pattern(&query_src) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse {query_src:?}: {e}");
            std::process::exit(1);
        }
    };

    println!("query:           {query}");
    println!("nodes:           {}", query.len());

    println!("\nsingle-step relaxations:");
    for r in applicable(&query) {
        let relaxed = apply(&query, r).expect("applicable relaxation applies");
        let label = match r {
            Relaxation::EdgeGeneralization(q) => {
                format!("edge generalization at {}", query.node(q).tag)
            }
            Relaxation::LeafDeletion(q) => format!("leaf deletion of {}", query.node(q).tag),
            Relaxation::SubtreePromotion(q) => {
                format!("subtree promotion of {}", query.node(q).tag)
            }
        };
        println!("  {label:<38} -> {relaxed}");
    }

    let limit = 100_000;
    let closure = enumerate(&query, limit);
    if closure.len() >= limit {
        println!("\nrelaxation closure: > {limit} distinct queries (truncated)");
    } else {
        println!("\nrelaxation closure: {} distinct queries", closure.len());
    }
    println!("(the engine never materializes these: relaxations are encoded");
    println!(" in one outer-join plan via conditional predicate sequences)");

    println!("\nfully relaxed:   {}", fully_relaxed(&query));
}
