//! Quickstart: parse a document, ask for the top-k answers to an XPath
//! tree-pattern query, and inspect scores and work counters.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example quickstart
//! ```

use whirlpool_core::{evaluate, Algorithm, EvalOptions};
use whirlpool_index::TagIndex;
use whirlpool_pattern::parse_pattern;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xml::{parse_document, write_node, WriteOptions};

fn main() {
    // A small library with heterogeneous book records: some have a title
    // and isbn as direct children, some bury the title deeper, one has
    // no isbn at all.
    let doc = parse_document(
        r#"<library>
             <book id="b1"><title>the code book</title><isbn>0385495323</isbn><price>16</price></book>
             <book id="b2"><title>gödel escher bach</title><isbn>0465026567</isbn></book>
             <book id="b3"><meta><title>the art of computer programming</title></meta><isbn>0201896834</isbn></book>
             <book id="b4"><title>a pattern language</title></book>
             <book id="b5"><review>uninteresting record</review></book>
           </library>"#,
    )
    .expect("well-formed XML");

    // Index once; reusable across queries.
    let index = TagIndex::build(&doc);

    // Top-3 books with a title, an isbn and a price, all as children —
    // approximate matches admitted through relaxation.
    let query = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
    println!("query:  {query}");

    // Scores: tf*idf over the query's component predicates, with the
    // per-predicate ("sparse") normalization.
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);

    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(3),
    );

    println!("\ntop-{} answers:", result.answers.len());
    for (rank, answer) in result.answers.iter().enumerate() {
        let id = doc.attribute(answer.root, "id").unwrap_or("?");
        let xml = write_node(&doc, answer.root, &WriteOptions::default());
        let preview: String = xml.chars().take(60).collect();
        println!(
            "  #{} score {:.4}  book {id}  {preview}…",
            rank + 1,
            answer.score.value()
        );
    }

    println!("\nwork: {:?}", result.metrics);
    println!("elapsed: {:?}", result.elapsed);
}
