//! Threshold queries: "all answers scoring at least τ" — the evaluation
//! mode of the paper's predecessor (EDBT'02), contrasted with top-k in
//! §3, implemented here on the same adaptive machinery.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example threshold_search [tau]
//! ```

use whirlpool_core::{run_threshold, ContextOptions, QueryContext, RoutingStrategy};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, Score, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

fn main() {
    let tau: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);
    let doc = generate(&GeneratorConfig::items(400));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);

    println!("query:     {query}");
    println!("threshold: {tau} (max possible score: 5.0 with sparse weights)\n");

    let ctx = QueryContext::new(&doc, &index, &query, &model, ContextOptions::default());
    let answers = run_threshold(&ctx, &RoutingStrategy::MinAlive, Score::new(tau));
    let metrics = ctx.metrics.snapshot();

    println!("answers clearing the threshold: {}", answers.len());
    for (i, a) in answers.iter().take(10).enumerate() {
        let id = doc.attribute(a.root, "id").unwrap_or("?");
        println!("  #{:<3} score {:.4}  item {id}", i + 1, a.score.value());
    }
    if answers.len() > 10 {
        println!("  … and {} more", answers.len() - 10);
    }
    println!(
        "\nwork: {} server ops, {} matches created, {} pruned (branch-and-bound against τ)",
        metrics.server_ops, metrics.partials_created, metrics.pruned
    );
}
