//! The paper's running example (§2, Figures 1 and 2): querying a
//! structurally heterogeneous book collection with the query
//! `/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']`.
//!
//! * Book (a) matches the query exactly.
//! * Book (b) keeps its publisher outside `info` — only a *subtree
//!   promotion* relaxation matches it.
//! * Book (c) hides the title under `reviews` and has no publisher at
//!   all — *edge generalization* and *leaf deletion* are needed.
//!
//! The example shows that exact evaluation returns only book (a), while
//! relaxed evaluation ranks all three, exact matches first.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example book_search
//! ```

use whirlpool_core::{evaluate, Algorithm, EvalOptions, RelaxMode};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{books, queries};
use whirlpool_xml::{write_node, WriteOptions};

fn main() {
    let doc = books::heterogeneous_collection();
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::FIG2A);
    println!("query:  {query}\n");

    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);

    // Exact evaluation: book (a) only.
    let mut options = EvalOptions::top_k(3);
    options.relax = RelaxMode::Exact;
    let exact = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    println!("exact matches: {}", exact.answers.len());
    for a in &exact.answers {
        println!("  score {:.4}  {}", a.score.value(), preview(&doc, a.root));
    }

    // Relaxed evaluation: all three books, ranked by structural
    // similarity to the query.
    options.relax = RelaxMode::Relaxed;
    let relaxed = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    println!("\napproximate matches (relaxed): {}", relaxed.answers.len());
    for (rank, a) in relaxed.answers.iter().enumerate() {
        println!(
            "  #{} score {:.4}  {}",
            rank + 1,
            a.score.value(),
            preview(&doc, a.root)
        );
    }

    assert_eq!(exact.answers.len(), 1, "only book (a) matches exactly");
    assert_eq!(
        relaxed.answers.len(),
        3,
        "relaxation admits all three books"
    );
    assert_eq!(
        relaxed.answers[0].root, exact.answers[0].root,
        "the exact match ranks first among approximate answers"
    );
    println!("\nok: exact matches keep the best scores under relaxation");
}

fn preview(doc: &whirlpool_xml::Document, root: whirlpool_xml::NodeId) -> String {
    let xml = write_node(doc, root, &WriteOptions::default());
    let mut s: String = xml.chars().take(72).collect();
    if s.len() < xml.len() {
        s.push('…');
    }
    s
}
