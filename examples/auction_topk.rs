//! Top-k querying of an XMark-like auction site: the paper's benchmark
//! workload in miniature. Generates a synthetic document, runs the
//! three benchmark queries (Q1–Q3, §6.2.1) through all four engines,
//! and compares answers and work.
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example auction_topk [size_mb]
//! ```

use whirlpool_core::{answers_equivalent, evaluate, Algorithm, EvalOptions, EvalResult};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};
use whirlpool_xml::DocumentStats;

fn main() {
    let size_mb: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let k = 15;

    eprintln!("generating ~{size_mb} Mb document…");
    let doc = generate(&GeneratorConfig::megabytes(size_mb));
    let stats = DocumentStats::compute(&doc);
    println!(
        "document: {} elements, {:.1} Mb serialized, {} items",
        stats.element_count,
        stats.serialized_bytes as f64 / 1e6,
        stats.count_for(&doc, "item"),
    );

    let index = TagIndex::build(&doc);

    for (name, query) in queries::benchmark_queries() {
        println!("\n=== {name}: {query}");
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let options = EvalOptions::top_k(k);

        let mut reference: Option<EvalResult> = None;
        for algorithm in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let result = evaluate(&doc, &index, &query, &model, &algorithm, &options);
            println!(
                "  {:<16} {:>8.1} ms   {:>9} server ops   {:>9} matches created   top score {:.4}",
                algorithm.name(),
                result.elapsed.as_secs_f64() * 1e3,
                result.metrics.server_ops,
                result.metrics.partials_created,
                result.answers.first().map_or(0.0, |a| a.score.value()),
            );
            match &reference {
                None => reference = Some(result),
                Some(r) => assert!(
                    answers_equivalent(&result.answers, &r.answers, 1e-9),
                    "engines disagree on {name}"
                ),
            }
        }
        let top = reference.expect("at least one engine ran");
        println!("  top-{k} answers (first 5):");
        for a in top.answers.iter().take(5) {
            let id = top
                .answers
                .first()
                .map(|_| doc.attribute(a.root, "id").unwrap_or("?"))
                .unwrap_or("?");
            println!("    score {:.4}  item {id}", a.score.value());
        }
    }
    println!("\nok: all engines returned equivalent top-k sets");
}
