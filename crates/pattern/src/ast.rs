//! The tree-pattern query model.

use std::fmt;

/// Index of a query node within its [`TreePattern`]. Node 0 is always
/// the pattern root — the returned node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QNodeId(pub u8);

impl QNodeId {
    /// The pattern root (the returned node).
    pub const ROOT: QNodeId = QNodeId(0);

    /// The raw index, usable as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this the pattern root?
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An XPath axis labelling a pattern edge: `pc` (parent-child) or `ad`
/// (ancestor-descendant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `pc`: `/` in XPath.
    Child,
    /// `ad`: `//` in XPath.
    Descendant,
}

impl Axis {
    /// The XPath spelling of the axis.
    pub fn xpath(&self) -> &'static str {
        match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
        }
    }
}

/// The wildcard node test: matches any element tag. Spelled `*` in
/// queries.
pub const WILDCARD: &str = "*";

/// An attribute predicate on a pattern node: `[@name]` (presence) or
/// `[@name = 'value']` (equality).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrTest {
    /// Attribute name.
    pub name: String,
    /// Required value; `None` = presence test only.
    pub value: Option<String>,
}

impl AttrTest {
    /// Applies the test to an element's attribute lookup result.
    pub fn matches(&self, attribute_value: Option<&str>) -> bool {
        match (&self.value, attribute_value) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(want), Some(got)) => want == got,
        }
    }
}

/// A content predicate on a pattern leaf (tag *and value*, as in the
/// paper's Figure 2 leaves such as `title (wodehouse)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueTest {
    /// Element's direct text equals the value (whitespace-trimmed).
    Eq(String),
    /// Element's direct text contains the value as a substring.
    Contains(String),
}

impl ValueTest {
    /// Applies the test to an element's direct text content.
    pub fn matches(&self, text: Option<&str>) -> bool {
        match (self, text) {
            (ValueTest::Eq(v), Some(t)) => t == v,
            (ValueTest::Contains(v), Some(t)) => t.contains(v.as_str()),
            (_, None) => false,
        }
    }
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternNode {
    /// Element tag this node must match ([`WILDCARD`] matches any).
    pub tag: String,
    /// Optional content predicate.
    pub value: Option<ValueTest>,
    /// Attribute predicates (all must hold).
    pub attrs: Vec<AttrTest>,
    /// Parent query node; `None` only for the root.
    pub parent: Option<QNodeId>,
    /// Axis of the edge from the parent (for the root: the axis from the
    /// synthetic document root, i.e. `/a` vs `//a`).
    pub axis: Axis,
    /// Children in insertion order.
    pub children: Vec<QNodeId>,
}

/// A tree-pattern query: "an expressive subset of XPath" (paper §2).
///
/// The root (node 0) is the returned node. Every other node constrains
/// the answer through the axis path connecting it to the root.
#[derive(Clone, PartialEq, Eq)]
pub struct TreePattern {
    nodes: Vec<PatternNode>,
}

impl TreePattern {
    /// Creates a pattern containing only a root node.
    ///
    /// `root_axis` is the axis from the synthetic document root:
    /// [`Axis::Child`] for `/tag`, [`Axis::Descendant`] for `//tag`.
    pub fn new(root_tag: impl Into<String>, root_axis: Axis) -> Self {
        TreePattern {
            nodes: vec![PatternNode {
                tag: root_tag.into(),
                value: None,
                attrs: Vec::new(),
                parent: None,
                axis: root_axis,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a node under `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if the pattern already has 64 nodes (the engine packs
    /// per-match visited-server sets into a `u64` bitmask) or if
    /// `parent` is out of range.
    pub fn add_node(
        &mut self,
        parent: QNodeId,
        axis: Axis,
        tag: impl Into<String>,
        value: Option<ValueTest>,
    ) -> QNodeId {
        assert!(
            self.nodes.len() < 64,
            "tree patterns are limited to 64 nodes"
        );
        assert!(parent.index() < self.nodes.len(), "parent out of range");
        let id = QNodeId(self.nodes.len() as u8);
        self.nodes.push(PatternNode {
            tag: tag.into(),
            value,
            attrs: Vec::new(),
            parent: Some(parent),
            axis,
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Adds an attribute predicate to `node`.
    pub fn add_attr_test(&mut self, node: QNodeId, test: AttrTest) {
        self.nodes[node.index()].attrs.push(test);
    }

    /// Does `tag` satisfy this node's tag test (named tag or wildcard)?
    pub fn tag_matches(&self, node: QNodeId, tag: &str) -> bool {
        let t = &self.nodes[node.index()].tag;
        t == WILDCARD || t == tag
    }

    /// The returned node.
    pub fn root(&self) -> QNodeId {
        QNodeId::ROOT
    }

    /// Number of query nodes (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a pattern has at least its root node.
    pub fn is_empty(&self) -> bool {
        false // a pattern always has a root
    }

    /// Borrows a node.
    pub fn node(&self, id: QNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// All node ids, root first, in insertion (pre-order-compatible) order.
    pub fn node_ids(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.nodes.len() as u8).map(QNodeId)
    }

    /// Non-root node ids — one evaluation *server* per entry (paper §5.1:
    /// "servers, one for each node in the XPath tree pattern" besides the
    /// root generator).
    pub fn server_ids(&self) -> impl Iterator<Item = QNodeId> {
        (1..self.nodes.len() as u8).map(QNodeId)
    }

    /// True iff `anc` is a proper ancestor of `desc` in the pattern.
    pub fn is_pattern_ancestor(&self, anc: QNodeId, desc: QNodeId) -> bool {
        let mut cur = self.nodes[desc.index()].parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.nodes[p.index()].parent;
        }
        false
    }

    /// The path of `(axis, node)` steps from `from` down to `to`,
    /// assuming `from` is an ancestor of `to` (or `to` itself, giving an
    /// empty path). Returns `None` if `from` is not an ancestor-or-self
    /// of `to`.
    pub fn path_between(&self, from: QNodeId, to: QNodeId) -> Option<Vec<(Axis, QNodeId)>> {
        let mut rev = Vec::new();
        let mut cur = to;
        while cur != from {
            let node = &self.nodes[cur.index()];
            rev.push((node.axis, cur));
            cur = node.parent?;
        }
        rev.reverse();
        Some(rev)
    }

    /// Depth of a node in the pattern (root = 0).
    pub fn depth(&self, id: QNodeId) -> usize {
        let mut d = 0;
        let mut cur = self.nodes[id.index()].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.nodes[p.index()].parent;
        }
        d
    }

    /// Leaves of the pattern (nodes with no children).
    pub fn leaves(&self) -> impl Iterator<Item = QNodeId> + '_ {
        self.node_ids()
            .filter(|id| self.nodes[id.index()].children.is_empty())
    }

    /// A canonical text form: children are serialized sorted, so two
    /// patterns equal up to sibling reordering canonicalize identically.
    /// Used to deduplicate the relaxation closure.
    pub fn canonical_form(&self) -> String {
        let mut s = String::new();
        self.canonicalize_into(QNodeId::ROOT, &mut s);
        s
    }

    fn canonicalize_into(&self, id: QNodeId, out: &mut String) {
        let node = &self.nodes[id.index()];
        out.push_str(node.axis.xpath());
        out.push_str(&node.tag);
        let mut attrs: Vec<String> = node
            .attrs
            .iter()
            .map(|a| match &a.value {
                Some(v) => format!("@{}='{}'", a.name, v),
                None => format!("@{}", a.name),
            })
            .collect();
        attrs.sort();
        for a in attrs {
            out.push('{');
            out.push_str(&a);
            out.push('}');
        }
        match &node.value {
            Some(ValueTest::Eq(v)) => {
                out.push_str("='");
                out.push_str(v);
                out.push('\'');
            }
            Some(ValueTest::Contains(v)) => {
                out.push_str("~'");
                out.push_str(v);
                out.push('\'');
            }
            None => {}
        }
        if !node.children.is_empty() {
            let mut parts: Vec<String> = node
                .children
                .iter()
                .map(|&c| {
                    let mut s = String::new();
                    self.canonicalize_into(c, &mut s);
                    s
                })
                .collect();
            parts.sort();
            out.push('[');
            out.push_str(&parts.join(" and "));
            out.push(']');
        }
    }
}

impl fmt::Debug for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TreePattern({})", self)
    }
}

impl fmt::Display for TreePattern {
    /// Renders the pattern in XPath-like syntax (children in insertion
    /// order, unlike [`TreePattern::canonical_form`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(p: &TreePattern, id: QNodeId, top: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let node = p.node(id);
            if top {
                write!(f, "{}{}", node.axis.xpath(), node.tag)?;
            } else {
                let dot = ".";
                write!(f, "{}{}{}", dot, node.axis.xpath(), node.tag)?;
            }
            for a in &node.attrs {
                match &a.value {
                    Some(v) => write!(f, "[@{} = '{}']", a.name, v)?,
                    None => write!(f, "[@{}]", a.name)?,
                }
            }
            if let Some(v) = &node.value {
                match v {
                    ValueTest::Eq(v) => write!(f, " = '{v}'")?,
                    ValueTest::Contains(v) => write!(f, " ~ '{v}'")?,
                }
            }
            if !node.children.is_empty() {
                write!(f, "[")?;
                for (i, &c) in node.children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    rec(p, c, false, f)?;
                }
                write!(f, "]")?;
            }
            Ok(())
        }
        rec(self, QNodeId::ROOT, true, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 2(a) query:
    /// `/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']`
    fn fig2a() -> TreePattern {
        let mut p = TreePattern::new("book", Axis::Child);
        p.add_node(
            p.root(),
            Axis::Child,
            "title",
            Some(ValueTest::Eq("wodehouse".into())),
        );
        let info = p.add_node(p.root(), Axis::Child, "info", None);
        let publisher = p.add_node(info, Axis::Child, "publisher", None);
        p.add_node(
            publisher,
            Axis::Child,
            "name",
            Some(ValueTest::Eq("psmith".into())),
        );
        p
    }

    #[test]
    fn structure_accessors() {
        let p = fig2a();
        assert_eq!(p.len(), 5);
        assert_eq!(p.node(QNodeId(0)).tag, "book");
        assert_eq!(p.node(QNodeId(1)).tag, "title");
        assert_eq!(p.server_ids().count(), 4);
        assert_eq!(p.depth(QNodeId(4)), 3);
        let leaves: Vec<_> = p.leaves().collect();
        assert_eq!(leaves, vec![QNodeId(1), QNodeId(4)]);
    }

    #[test]
    fn pattern_ancestry() {
        let p = fig2a();
        assert!(p.is_pattern_ancestor(QNodeId(0), QNodeId(4)));
        assert!(p.is_pattern_ancestor(QNodeId(2), QNodeId(3)));
        assert!(!p.is_pattern_ancestor(QNodeId(1), QNodeId(4)));
        assert!(!p.is_pattern_ancestor(QNodeId(4), QNodeId(0)));
    }

    #[test]
    fn path_between_composes_edges() {
        let p = fig2a();
        let path = p.path_between(QNodeId(0), QNodeId(4)).unwrap();
        let tags: Vec<_> = path
            .iter()
            .map(|(_, id)| p.node(*id).tag.as_str())
            .collect();
        assert_eq!(tags, vec!["info", "publisher", "name"]);
        assert!(p.path_between(QNodeId(1), QNodeId(4)).is_none());
        assert_eq!(p.path_between(QNodeId(2), QNodeId(2)).unwrap().len(), 0);
    }

    #[test]
    fn display_is_readable() {
        let p = fig2a();
        assert_eq!(
            p.to_string(),
            "/book[./title = 'wodehouse' and ./info[./publisher[./name = 'psmith']]]"
        );
    }

    #[test]
    fn canonical_form_ignores_sibling_order() {
        let mut a = TreePattern::new("r", Axis::Descendant);
        a.add_node(a.root(), Axis::Child, "x", None);
        a.add_node(a.root(), Axis::Descendant, "y", None);

        let mut b = TreePattern::new("r", Axis::Descendant);
        b.add_node(b.root(), Axis::Descendant, "y", None);
        b.add_node(b.root(), Axis::Child, "x", None);

        assert_eq!(a.canonical_form(), b.canonical_form());
        assert_ne!(a.to_string(), b.to_string());
    }

    #[test]
    fn value_tests() {
        assert!(ValueTest::Eq("x".into()).matches(Some("x")));
        assert!(!ValueTest::Eq("x".into()).matches(Some("xy")));
        assert!(!ValueTest::Eq("x".into()).matches(None));
        assert!(ValueTest::Contains("od".into()).matches(Some("wodehouse")));
        assert!(!ValueTest::Contains("zz".into()).matches(Some("wodehouse")));
    }
}
