//! Parser for the XPath subset the paper's queries use.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! Query    := ('/' | '//') Name Predicate?
//! Predicate:= '[' RelPath ('and' RelPath)* ']'
//! RelPath  := '.'? ('/' | '//') Name (('/' | '//') Name)* Predicate? ValueTest?
//! ValueTest:= '=' Literal
//! Literal  := '\'' chars '\'' | '"' chars '"'
//! ```
//!
//! This covers all queries in the paper, e.g.
//! `/book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']`
//! and `//item[./mailbox/mail/text[./bold and ./keyword] and ./name]`.
//!
//! The returned node is the single absolute step (the paper's tree
//! patterns are rooted at the returned node); multi-step absolute paths
//! are rejected with an explanatory error.

use crate::ast::{AttrTest, Axis, QNodeId, TreePattern, ValueTest};
use std::fmt;

/// Error produced by [`parse_pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the query string.
    pub offset: usize,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for PatternParseError {}

/// Parses an XPath-subset query into a [`TreePattern`].
///
/// # Example
/// ```
/// use whirlpool_pattern::parse_pattern;
/// let q = parse_pattern("//item[./description/parlist]").unwrap();
/// assert_eq!(q.len(), 3);
/// assert_eq!(q.node(q.root()).tag, "item");
/// ```
pub fn parse_pattern(input: &str) -> Result<TreePattern, PatternParseError> {
    let mut p = P { src: input, pos: 0 };
    p.skip_ws();
    let axis = p
        .parse_axis()?
        .ok_or_else(|| p.err("query must start with '/' or '//'"))?;
    let name = p.parse_name()?;
    let mut pattern = TreePattern::new(name, axis);
    p.skip_ws();
    // XPath allows chained predicate blocks: a[.x][.y] = a[.x and .y].
    while p.peek() == Some('[') {
        p.parse_predicate(&mut pattern, QNodeId::ROOT)?;
        p.skip_ws();
    }
    if p.peek() == Some('/') {
        return Err(p.err(
            "multi-step absolute paths are not supported: the tree-pattern root is the returned \
             node; express further steps as predicates, e.g. /a[./b] instead of /a/b",
        ));
    }
    if p.pos < p.src.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(pattern)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> PatternParseError {
        PatternParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Parses `/` or `//` if present.
    fn parse_axis(&mut self) -> Result<Option<Axis>, PatternParseError> {
        if self.eat("//") {
            Ok(Some(Axis::Descendant))
        } else if self.eat("/") {
            Ok(Some(Axis::Child))
        } else {
            Ok(None)
        }
    }

    fn parse_name(&mut self) -> Result<String, PatternParseError> {
        // The wildcard node test.
        if self.peek() == Some('*') {
            self.bump();
            return Ok(crate::ast::WILDCARD.to_string());
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == ':')
        {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected an element name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Parses `[ Item (and Item)* ]` where an item is a relative path
    /// or an attribute test (`@name`, `@name = 'v'`), attaching to
    /// `context`.
    fn parse_predicate(
        &mut self,
        pattern: &mut TreePattern,
        context: QNodeId,
    ) -> Result<(), PatternParseError> {
        assert_eq!(self.bump(), Some('['));
        loop {
            self.skip_ws();
            if self.peek() == Some('@') {
                self.parse_attr_test(pattern, context)?;
            } else {
                self.parse_rel_path(pattern, context)?;
            }
            self.skip_ws();
            if self.eat("and") {
                continue;
            }
            break;
        }
        self.skip_ws();
        if !self.eat("]") {
            return Err(self.err("expected ']' or 'and'"));
        }
        Ok(())
    }

    /// Parses `@name` or `@name = 'value'` as a test on `context`.
    fn parse_attr_test(
        &mut self,
        pattern: &mut TreePattern,
        context: QNodeId,
    ) -> Result<(), PatternParseError> {
        assert_eq!(self.bump(), Some('@'));
        let name = self.parse_name()?;
        if name == crate::ast::WILDCARD {
            return Err(self.err("attribute names cannot be wildcards"));
        }
        self.skip_ws();
        let value = if self.peek() == Some('=') {
            self.bump();
            self.skip_ws();
            Some(self.parse_literal()?)
        } else {
            None
        };
        pattern.add_attr_test(context, AttrTest { name, value });
        Ok(())
    }

    /// Parses one relative path inside a predicate, attaching its node
    /// chain under `context`.
    fn parse_rel_path(
        &mut self,
        pattern: &mut TreePattern,
        context: QNodeId,
    ) -> Result<(), PatternParseError> {
        // Optional leading '.' as in './a' and './/a'.
        if self.peek() == Some('.') {
            self.bump();
        }
        let mut current = context;
        let mut first = true;
        loop {
            let axis = match self.parse_axis()? {
                Some(a) => a,
                None if first => return Err(self.err("expected './', './/', '/' or '//'")),
                None => break,
            };
            first = false;
            let name = self.parse_name()?;
            current = pattern.add_node(current, axis, name, None);
            self.skip_ws();
            if self.peek() == Some('[') {
                while self.peek() == Some('[') {
                    self.parse_predicate(pattern, current)?;
                    self.skip_ws();
                }
                // Steps cannot continue after a nested predicate in this
                // subset.
                break;
            }
            self.skip_ws();
            if self.peek() == Some('=') {
                self.bump();
                self.skip_ws();
                let value = self.parse_literal()?;
                // Attach the value test to the node just created.
                // TreePattern doesn't expose node mutation; rebuild via
                // internal access below.
                set_value(pattern, current, ValueTest::Eq(value));
                break;
            }
            if !matches!(self.peek(), Some('/')) {
                break;
            }
        }
        Ok(())
    }

    fn parse_literal(&mut self) -> Result<String, PatternParseError> {
        let quote = match self.peek() {
            Some(q @ ('\'' | '"')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected a quoted literal")),
        };
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != quote) {
            self.bump();
        }
        if self.peek().is_none() {
            return Err(self.err("unterminated literal"));
        }
        let value = self.src[start..self.pos].to_string();
        self.bump(); // closing quote
        Ok(value)
    }
}

/// Sets a node's value test after construction (parser-internal helper).
fn set_value(pattern: &mut TreePattern, id: QNodeId, value: ValueTest) {
    // Rebuild the pattern with the value attached: patterns are tiny
    // (≤ 64 nodes), and keeping `TreePattern`'s public surface immutable
    // except for `add_node` preserves its invariants.
    let mut rebuilt = TreePattern::new(
        pattern.node(QNodeId::ROOT).tag.clone(),
        pattern.node(QNodeId::ROOT).axis,
    );
    if id == QNodeId::ROOT {
        set_root_value(&mut rebuilt, value.clone());
    }
    for qid in pattern.node_ids().skip(1) {
        let node = pattern.node(qid);
        let v = if qid == id {
            Some(value.clone())
        } else {
            node.value.clone()
        };
        let new_id = rebuilt.add_node(node.parent.unwrap(), node.axis, node.tag.clone(), v);
        debug_assert_eq!(new_id, qid);
    }
    *pattern = rebuilt;
}

fn set_root_value(pattern: &mut TreePattern, _value: ValueTest) {
    // Value tests on the returned node are not part of the paper's query
    // set; the parser grammar cannot produce them either ('=' only
    // appears inside predicates). Unreachable by construction.
    let _ = pattern;
    unreachable!("value test on the pattern root");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;

    #[test]
    fn parses_q1() {
        let q = parse_pattern("//item[./description/parlist]").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.node(QNodeId(0)).tag, "item");
        assert_eq!(q.node(QNodeId(0)).axis, Axis::Descendant);
        assert_eq!(q.node(QNodeId(1)).tag, "description");
        assert_eq!(q.node(QNodeId(1)).axis, Axis::Child);
        assert_eq!(q.node(QNodeId(2)).tag, "parlist");
        assert_eq!(q.node(QNodeId(2)).parent, Some(QNodeId(1)));
    }

    #[test]
    fn parses_q2() {
        let q = parse_pattern("//item[./description/parlist and ./mailbox/mail/text]").unwrap();
        assert_eq!(q.len(), 6);
        let tags: Vec<_> = q.node_ids().map(|id| q.node(id).tag.clone()).collect();
        assert_eq!(
            tags,
            vec!["item", "description", "parlist", "mailbox", "mail", "text"]
        );
    }

    #[test]
    fn parses_q3_with_nested_predicate() {
        let q = parse_pattern(
            "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
        )
        .unwrap();
        assert_eq!(q.len(), 8);
        // text has two children: bold and keyword.
        let text = q.node_ids().find(|&id| q.node(id).tag == "text").unwrap();
        let child_tags: Vec<_> = q
            .node(text)
            .children
            .iter()
            .map(|&c| q.node(c).tag.clone())
            .collect();
        assert_eq!(child_tags, vec!["bold", "keyword"]);
        // name and incategory hang off the root.
        let root_children: Vec<_> = q
            .node(q.root())
            .children
            .iter()
            .map(|&c| q.node(c).tag.clone())
            .collect();
        assert_eq!(root_children, vec!["mailbox", "name", "incategory"]);
    }

    #[test]
    fn parses_value_tests() {
        let q = parse_pattern("/book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']")
            .unwrap();
        assert_eq!(q.len(), 5);
        let title = q.node_ids().find(|&id| q.node(id).tag == "title").unwrap();
        assert_eq!(q.node(title).axis, Axis::Descendant);
        assert_eq!(q.node(title).value, Some(ValueTest::Eq("wodehouse".into())));
        let name = q.node_ids().find(|&id| q.node(id).tag == "name").unwrap();
        assert_eq!(q.node(name).value, Some(ValueTest::Eq("psmith".into())));
    }

    #[test]
    fn parses_double_quotes_and_whitespace() {
        let q = parse_pattern("  /a[ ./b = \"v w\" and .//c ]  ").unwrap();
        assert_eq!(q.len(), 3);
        let b = QNodeId(1);
        assert_eq!(q.node(b).value, Some(ValueTest::Eq("v w".into())));
    }

    #[test]
    fn roundtrips_through_display() {
        for src in [
            "//item[./description[./parlist]]",
            "/book[./title = 'wodehouse' and ./info[./publisher[./name = 'psmith']]]",
        ] {
            let q = parse_pattern(src).unwrap();
            let q2 = parse_pattern(&q.to_string()).unwrap();
            assert_eq!(q.canonical_form(), q2.canonical_form());
        }
    }

    #[test]
    fn rejects_multi_step_absolute_paths() {
        let err = parse_pattern("/a/b").unwrap_err();
        assert!(err.message.contains("multi-step"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("item").is_err());
        assert!(parse_pattern("//item[").is_err());
        assert!(parse_pattern("//item[./a").is_err());
        assert!(parse_pattern("//item[./a = 'x]").is_err());
        assert!(parse_pattern("//item]").is_err());
        assert!(parse_pattern("//item[and]").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_pattern("//item[./a ??]").unwrap_err();
        assert!(err.offset >= 10, "{err:?}");
    }
}
