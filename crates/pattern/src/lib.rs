#![deny(missing_docs)]

//! Tree-pattern queries, relaxations, and predicate compilation.
//!
//! This crate implements the query side of the paper:
//!
//! * [`TreePattern`] — the paper's query model: "a rooted tree where
//!   nodes are labeled by element tags, leaf nodes are labeled by tags
//!   and values and edges are XPath axes (`pc` for parent-child, `ad`
//!   for ancestor-descendant). The root of the tree represents the
//!   returned node."
//! * [`parse_pattern`] — a parser for the XPath subset the paper uses
//!   (`/`, `//`, nested `[...]` predicates, `and`, `./`, `.//`,
//!   `= 'value'`).
//! * [`relax`] — the three relaxations of §2 (edge generalization, leaf
//!   deletion, subtree promotion) and the closure of their compositions,
//!   used to validate that the engine's plan-encoded relaxation matches
//!   the rewriting-based definition.
//! * [`ComposedAxis`] — the axis-composition algebra behind the paper's
//!   *component predicates* (Definition 4.1) and *conditional predicate
//!   sequences* (Algorithm 1).
//! * [`compile_servers`] — Algorithm 1: the per-server predicate sets the
//!   engine evaluates.

mod ast;
mod axis;
mod compile;
mod parse;
mod plan;
pub mod relax;

pub use ast::{AttrTest, Axis, PatternNode, QNodeId, TreePattern, ValueTest, WILDCARD};
pub use axis::ComposedAxis;
pub use compile::{compile_servers, ConditionalPredicate, Direction, ServerSpec};
pub use parse::{parse_pattern, PatternParseError};
pub use plan::{permutations, StaticPlan};
