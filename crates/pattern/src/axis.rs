//! Axis composition algebra.
//!
//! The paper's component predicates (Definition 4.1) relate the returned
//! node to every other query node by *composing* the axes along the
//! pattern path between them: for
//! `/a[./c[.//d]]` the component predicate between `a` and `d` is
//! `a[.//d]` — `pc` composed with `ad` is `ad`. A chain of `pc` edges
//! composes to "descendant at exactly this depth", which Dewey
//! identifiers decide in O(depth).

use crate::ast::Axis;
use whirlpool_xml::Dewey;

/// The composition of a path of `pc`/`ad` axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComposedAxis {
    /// A chain of exactly `n ≥ 1` `pc` edges: descendant at exactly depth
    /// `n`. `ChildChain(1)` is plain `pc`.
    ChildChain(u32),
    /// At least one `ad` edge somewhere in the path: any proper
    /// descendant (conservatively, as in the paper's `a[.//d]` example).
    Descendant,
}

impl ComposedAxis {
    /// The identity-ish start of a composition: a single axis.
    pub fn from_axis(axis: Axis) -> Self {
        match axis {
            Axis::Child => ComposedAxis::ChildChain(1),
            Axis::Descendant => ComposedAxis::Descendant,
        }
    }

    /// Composes `self` (upper path segment) with one more `axis` step
    /// below it.
    pub fn then(self, axis: Axis) -> Self {
        match (self, axis) {
            (ComposedAxis::ChildChain(n), Axis::Child) => ComposedAxis::ChildChain(n + 1),
            _ => ComposedAxis::Descendant,
        }
    }

    /// Composes a whole path of axes. Empty paths are not meaningful for
    /// component predicates; `None` is returned for them.
    pub fn compose(path: &[Axis]) -> Option<Self> {
        let mut iter = path.iter();
        let first = ComposedAxis::from_axis(*iter.next()?);
        Some(iter.fold(first, |acc, &a| acc.then(a)))
    }

    /// The fully relaxed form (after edge generalization and subtree
    /// promotion every structural constraint weakens to
    /// ancestor-descendant).
    pub fn relaxed(self) -> Self {
        ComposedAxis::Descendant
    }

    /// True iff this is already the weakest form.
    pub fn is_relaxed(self) -> bool {
        matches!(self, ComposedAxis::Descendant)
    }

    /// Decides the predicate between two nodes given their Dewey
    /// identifiers: does `descendant` stand in this relation *under*
    /// `ancestor`?
    pub fn holds(self, ancestor: &Dewey, descendant: &Dewey) -> bool {
        match self {
            ComposedAxis::ChildChain(n) => ancestor.is_ancestor_at_depth(descendant, n as usize),
            ComposedAxis::Descendant => ancestor.is_ancestor_of(descendant),
        }
    }

    /// The number of `pc` steps, if this is a pure child chain.
    pub fn exact_depth(self) -> Option<u32> {
        match self {
            ComposedAxis::ChildChain(n) => Some(n),
            ComposedAxis::Descendant => None,
        }
    }

    /// XPath-like rendering: `/` for `pc`, `/*/` chains for deeper exact
    /// compositions, `//` for descendant.
    pub fn xpath(self) -> String {
        match self {
            ComposedAxis::ChildChain(1) => "/".to_string(),
            ComposedAxis::ChildChain(n) => {
                let mut s = String::new();
                for _ in 1..n {
                    s.push_str("/*");
                }
                s.push('/');
                s
            }
            ComposedAxis::Descendant => "//".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(c: &[u32]) -> Dewey {
        Dewey::from_components(c.to_vec())
    }

    #[test]
    fn composition_rules() {
        use Axis::*;
        assert_eq!(
            ComposedAxis::compose(&[Child]),
            Some(ComposedAxis::ChildChain(1))
        );
        assert_eq!(
            ComposedAxis::compose(&[Child, Child]),
            Some(ComposedAxis::ChildChain(2))
        );
        // The paper's example: pc ∘ ad = ad  (a[./c[.//d]] ⇒ a[.//d]).
        assert_eq!(
            ComposedAxis::compose(&[Child, Descendant]),
            Some(ComposedAxis::Descendant)
        );
        assert_eq!(
            ComposedAxis::compose(&[Descendant, Child]),
            Some(ComposedAxis::Descendant)
        );
        assert_eq!(ComposedAxis::compose(&[]), None);
    }

    #[test]
    fn holds_respects_exact_depth() {
        let a = d(&[0]);
        assert!(ComposedAxis::ChildChain(1).holds(&a, &d(&[0, 3])));
        assert!(!ComposedAxis::ChildChain(1).holds(&a, &d(&[0, 3, 1])));
        assert!(ComposedAxis::ChildChain(2).holds(&a, &d(&[0, 3, 1])));
        assert!(ComposedAxis::Descendant.holds(&a, &d(&[0, 3, 1])));
        assert!(!ComposedAxis::Descendant.holds(&a, &d(&[1])));
        assert!(!ComposedAxis::Descendant.holds(&a, &a));
    }

    #[test]
    fn exact_implies_relaxed() {
        // Whenever any exact composition holds, the relaxed form holds too.
        let pairs = [
            (d(&[0]), d(&[0, 1])),
            (d(&[2]), d(&[2, 0, 0])),
            (d(&[1, 1]), d(&[1, 1, 0, 2, 3])),
        ];
        for (a, b) in pairs {
            for axis in [
                ComposedAxis::ChildChain(1),
                ComposedAxis::ChildChain(2),
                ComposedAxis::ChildChain(3),
            ] {
                if axis.holds(&a, &b) {
                    assert!(axis.relaxed().holds(&a, &b));
                }
            }
        }
    }

    #[test]
    fn xpath_rendering() {
        assert_eq!(ComposedAxis::ChildChain(1).xpath(), "/");
        assert_eq!(ComposedAxis::ChildChain(3).xpath(), "/*/*/");
        assert_eq!(ComposedAxis::Descendant.xpath(), "//");
    }
}
