//! Query relaxations (paper §2, following Amer-Yahia/Cho/Srivastava).
//!
//! Three relaxations, closed under composition:
//!
//! * **edge generalization** — replace a `pc` edge with `ad`;
//! * **leaf deletion** — make a leaf node optional (in the rewriting
//!   view: delete the leaf);
//! * **subtree promotion** — move a subtree from its parent node to its
//!   grandparent (the edge to the grandparent becomes `ad`).
//!
//! "These relaxations capture approximate answers but still guarantee
//! that exact matches to the original query continue to be matches to
//! the relaxed query."
//!
//! The engine never materializes relaxed queries — it encodes them in
//! one outer-join plan (see [`crate::compile_servers`]). This module
//! provides the *rewriting-based* definition so tests can verify the
//! plan encoding agrees with it, and so callers can explore the
//! relaxation space (`examples/relaxation_explorer.rs`).

use crate::ast::{Axis, QNodeId, TreePattern};
use std::collections::{HashSet, VecDeque};

/// One applicable relaxation step at a specific query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relaxation {
    /// Replace the `pc` edge above `node` with `ad`.
    EdgeGeneralization(QNodeId),
    /// Delete the leaf `node`.
    LeafDeletion(QNodeId),
    /// Re-hang `node` (and its subtree) under its grandparent with `ad`.
    SubtreePromotion(QNodeId),
}

/// All single-step relaxations applicable to `pattern`.
pub fn applicable(pattern: &TreePattern) -> Vec<Relaxation> {
    let mut out = Vec::new();
    for id in pattern.node_ids().skip(1) {
        let node = pattern.node(id);
        if node.axis == Axis::Child {
            out.push(Relaxation::EdgeGeneralization(id));
        }
        if node.children.is_empty() {
            out.push(Relaxation::LeafDeletion(id));
        }
        if let Some(parent) = node.parent {
            if !parent.is_root() {
                out.push(Relaxation::SubtreePromotion(id));
            }
        }
    }
    out
}

/// Applies one relaxation, returning the relaxed pattern. Returns `None`
/// if the relaxation is not applicable (wrong axis, non-leaf deletion,
/// no grandparent, or deleting would leave the pattern without the
/// target node's subtree intact).
pub fn apply(pattern: &TreePattern, relaxation: Relaxation) -> Option<TreePattern> {
    match relaxation {
        Relaxation::EdgeGeneralization(id) => {
            if id.is_root() || pattern.node(id).axis != Axis::Child {
                return None;
            }
            let mut out = clone_nodes(pattern);
            out[id.index()].2 = Axis::Descendant;
            rebuild(pattern, &out, None)
        }
        Relaxation::LeafDeletion(id) => {
            if id.is_root() || !pattern.node(id).children.is_empty() {
                return None;
            }
            let out = clone_nodes(pattern);
            rebuild(pattern, &out, Some(id))
        }
        Relaxation::SubtreePromotion(id) => {
            let parent = pattern.node(id).parent?;
            if parent.is_root() {
                return None;
            }
            let grandparent = pattern.node(parent).parent?;
            let mut out = clone_nodes(pattern);
            out[id.index()].1 = Some(grandparent);
            out[id.index()].2 = Axis::Descendant;
            rebuild(pattern, &out, None)
        }
    }
}

/// `(tag, parent, axis, value, attrs)` working representation for
/// rewrites.
type WorkNode = (
    String,
    Option<QNodeId>,
    Axis,
    Option<crate::ast::ValueTest>,
    Vec<crate::ast::AttrTest>,
);

fn clone_nodes(pattern: &TreePattern) -> Vec<WorkNode> {
    pattern
        .node_ids()
        .map(|id| {
            let n = pattern.node(id);
            (
                n.tag.clone(),
                n.parent,
                n.axis,
                n.value.clone(),
                n.attrs.clone(),
            )
        })
        .collect()
}

/// Rebuilds a `TreePattern` from the working representation, optionally
/// skipping one (leaf) node. Returns `None` instead of panicking when
/// the working representation is inconsistent — a parentless non-root
/// node, or a child whose parent was not inserted first (possible only
/// if a rewrite corrupted the parent pointers).
fn rebuild(
    original: &TreePattern,
    nodes: &[WorkNode],
    skip: Option<QNodeId>,
) -> Option<TreePattern> {
    let mut out = TreePattern::new(nodes[0].0.clone(), nodes[0].2);
    for attr in &nodes[0].4 {
        out.add_attr_test(QNodeId::ROOT, attr.clone());
    }
    // Old id -> new id.
    let mut map: Vec<Option<QNodeId>> = vec![None; nodes.len()];
    map[0] = Some(QNodeId::ROOT);
    // Insert in an order where parents come first. Subtree promotion can
    // only move a node to an *ancestor*, so original insertion order
    // (parents before children) still works.
    for id in original.node_ids().skip(1) {
        if Some(id) == skip {
            continue;
        }
        let (tag, parent, axis, value, attrs) = &nodes[id.index()];
        let new_parent = map[(*parent)?.index()]?;
        let new_id = out.add_node(new_parent, *axis, tag.clone(), value.clone());
        for attr in attrs {
            out.add_attr_test(new_id, attr.clone());
        }
        map[id.index()] = Some(new_id);
    }
    Some(out)
}

/// Enumerates the closure of relaxations of `pattern` (including the
/// pattern itself), deduplicated by canonical form, up to `limit`
/// patterns. The paper cites the exponential size of this set as the
/// reason to prefer plan-encoded relaxation; the limit keeps exploration
/// bounded.
pub fn enumerate(pattern: &TreePattern, limit: usize) -> Vec<TreePattern> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(pattern.canonical_form());
    queue.push_back(pattern.clone());
    while let Some(p) = queue.pop_front() {
        out.push(p.clone());
        if out.len() >= limit {
            break;
        }
        for r in applicable(&p) {
            if let Some(relaxed) = apply(&p, r) {
                let key = relaxed.canonical_form();
                if seen.insert(key) {
                    queue.push_back(relaxed);
                }
            }
        }
    }
    out
}

/// The *fully relaxed* pattern: every node hangs directly under the root
/// with an `ad` edge, every node optional — the weakest query whose
/// exact matches are the engine's candidate universe. Returned here as
/// the flattened (non-optional) pattern; optionality is an evaluation
/// concern.
pub fn fully_relaxed(pattern: &TreePattern) -> TreePattern {
    let root = pattern.node(QNodeId::ROOT);
    let mut out = TreePattern::new(root.tag.clone(), root.axis);
    for attr in &root.attrs {
        out.add_attr_test(QNodeId::ROOT, attr.clone());
    }
    for id in pattern.node_ids().skip(1) {
        let n = pattern.node(id);
        let new_id = out.add_node(
            QNodeId::ROOT,
            Axis::Descendant,
            n.tag.clone(),
            n.value.clone(),
        );
        for attr in &n.attrs {
            out.add_attr_test(new_id, attr.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_pattern;

    /// Figure 2(a): /book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']
    fn fig2a() -> TreePattern {
        parse_pattern("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']").unwrap()
    }

    #[test]
    fn edge_generalization_produces_fig2b() {
        // Figure 2(b) = 2(a) with edge generalization on (book, title).
        let q = fig2a();
        let title = q.node_ids().find(|&id| q.node(id).tag == "title").unwrap();
        let relaxed = apply(&q, Relaxation::EdgeGeneralization(title)).unwrap();
        let expected =
            parse_pattern("/book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']")
                .unwrap();
        assert_eq!(relaxed.canonical_form(), expected.canonical_form());
    }

    #[test]
    fn fig2c_by_composition() {
        // Figure 2(c) = subtree promotion (publisher) ∘ leaf deletion
        // (info) ∘ edge generalization (book, title).
        let q = fig2a();
        let publisher = q
            .node_ids()
            .find(|&id| q.node(id).tag == "publisher")
            .unwrap();
        let step1 = apply(&q, Relaxation::SubtreePromotion(publisher)).unwrap();
        let info = step1
            .node_ids()
            .find(|&id| step1.node(id).tag == "info")
            .unwrap();
        let step2 = apply(&step1, Relaxation::LeafDeletion(info)).unwrap();
        let title = step2
            .node_ids()
            .find(|&id| step2.node(id).tag == "title")
            .unwrap();
        let step3 = apply(&step2, Relaxation::EdgeGeneralization(title)).unwrap();

        let expected =
            parse_pattern("/book[.//title = 'wodehouse' and .//publisher/name = 'psmith']")
                .unwrap();
        assert_eq!(step3.canonical_form(), expected.canonical_form());
    }

    #[test]
    fn fig2d_by_further_deletion() {
        // Figure 2(d) = 2(c) + leaf deletion on name then publisher.
        let fig2c = parse_pattern("/book[.//title = 'wodehouse' and .//publisher/name = 'psmith']")
            .unwrap();
        let name = fig2c
            .node_ids()
            .find(|&id| fig2c.node(id).tag == "name")
            .unwrap();
        let step1 = apply(&fig2c, Relaxation::LeafDeletion(name)).unwrap();
        let publisher = step1
            .node_ids()
            .find(|&id| step1.node(id).tag == "publisher")
            .unwrap();
        let step2 = apply(&step1, Relaxation::LeafDeletion(publisher)).unwrap();
        let expected = parse_pattern("/book[.//title = 'wodehouse']").unwrap();
        assert_eq!(step2.canonical_form(), expected.canonical_form());
    }

    #[test]
    fn leaf_deletion_requires_a_leaf() {
        let q = fig2a();
        let info = q.node_ids().find(|&id| q.node(id).tag == "info").unwrap();
        assert_eq!(apply(&q, Relaxation::LeafDeletion(info)), None);
    }

    #[test]
    fn edge_generalization_requires_pc() {
        let q = parse_pattern("//item[.//text]").unwrap();
        let text = QNodeId(1);
        assert_eq!(apply(&q, Relaxation::EdgeGeneralization(text)), None);
    }

    #[test]
    fn promotion_requires_grandparent() {
        let q = parse_pattern("//item[./name]").unwrap();
        let name = QNodeId(1);
        assert_eq!(apply(&q, Relaxation::SubtreePromotion(name)), None);
    }

    #[test]
    fn promotion_carries_subtree() {
        let q = parse_pattern("/a[./b/c[./d and ./e]]").unwrap();
        let c = q.node_ids().find(|&id| q.node(id).tag == "c").unwrap();
        let relaxed = apply(&q, Relaxation::SubtreePromotion(c)).unwrap();
        let expected = parse_pattern("/a[./b and .//c[./d and ./e]]").unwrap();
        assert_eq!(relaxed.canonical_form(), expected.canonical_form());
    }

    #[test]
    fn enumerate_dedups_and_includes_original() {
        let q = parse_pattern("//item[./description/parlist]").unwrap();
        let all = enumerate(&q, 1000);
        assert_eq!(all[0].canonical_form(), q.canonical_form());
        let forms: HashSet<_> = all.iter().map(|p| p.canonical_form()).collect();
        assert_eq!(forms.len(), all.len(), "no duplicates");
        // Q1 relaxations include the single-node //item pattern.
        assert!(forms.contains(&parse_pattern("//item").unwrap().canonical_form()));
    }

    #[test]
    fn closure_grows_quickly_with_query_size() {
        // The paper's motivation for plan-relaxation: "the exponential
        // number of relaxed queries".
        let q1 = enumerate(
            &parse_pattern("//item[./description/parlist]").unwrap(),
            10_000,
        );
        let q2 = enumerate(
            &parse_pattern("//item[./description/parlist and ./mailbox/mail/text]").unwrap(),
            10_000,
        );
        assert!(q2.len() > q1.len() * 3, "q1={} q2={}", q1.len(), q2.len());
    }

    #[test]
    fn fully_relaxed_flattens() {
        let q = fig2a();
        let flat = fully_relaxed(&q);
        assert_eq!(flat.len(), q.len());
        for id in flat.node_ids().skip(1) {
            assert_eq!(flat.node(id).parent, Some(QNodeId::ROOT));
            assert_eq!(flat.node(id).axis, Axis::Descendant);
        }
        // Value tests survive relaxation.
        let title = flat
            .node_ids()
            .find(|&id| flat.node(id).tag == "title")
            .unwrap();
        assert!(flat.node(title).value.is_some());
    }
}
