//! Static evaluation plans.
//!
//! A static plan fixes the order in which every partial match visits the
//! servers — the paper's baseline ("route each partial match through the
//! same sequence of servers"). Figures 6 and 7 sweep *all* permutations
//! of the default query's five servers (120 plans) and report
//! min/median/max.

use crate::ast::QNodeId;

/// A fixed server visiting order. Must mention each server exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPlan {
    order: Vec<QNodeId>,
}

impl StaticPlan {
    /// Builds a plan from an explicit order.
    ///
    /// # Panics
    /// Panics if the order contains the pattern root or duplicates.
    pub fn new(order: Vec<QNodeId>) -> Self {
        assert!(
            !order.iter().any(|q| q.is_root()),
            "plans order servers, not the root"
        );
        let mut seen = 0u64;
        for q in &order {
            assert!(seen & (1 << q.0) == 0, "duplicate server {q:?} in plan");
            seen |= 1 << q.0;
        }
        StaticPlan { order }
    }

    /// The document-order plan: servers in query-node id order (the
    /// natural left-deep plan of the paper's §2).
    pub fn in_id_order(server_count: usize) -> Self {
        StaticPlan {
            order: (1..=server_count as u8).map(QNodeId).collect(),
        }
    }

    /// The visiting order.
    pub fn order(&self) -> &[QNodeId] {
        &self.order
    }

    /// The next unvisited server under this plan, given a visited-set
    /// bitmask indexed by query-node id.
    pub fn next_server(&self, visited: u64) -> Option<QNodeId> {
        self.order
            .iter()
            .copied()
            .find(|q| visited & (1 << q.0) == 0)
    }
}

/// All permutations of `items`, in lexicographic-by-position order.
/// Sized for plan enumeration (5 servers → 120 plans), not for large n.
pub fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    permute(items, &mut used, &mut current, &mut out);
    out
}

fn permute<T: Clone>(items: &[T], used: &mut [bool], current: &mut Vec<T>, out: &mut Vec<Vec<T>>) {
    if current.len() == items.len() {
        out.push(current.clone());
        return;
    }
    for i in 0..items.len() {
        if !used[i] {
            used[i] = true;
            current.push(items[i].clone());
            permute(items, used, current, out);
            current.pop();
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        // The paper's Figure 6: "all (120) possible permutations" of Q2's
        // five servers.
        assert_eq!(permutations(&[1, 2, 3, 4, 5]).len(), 120);
    }

    #[test]
    fn permutations_are_distinct() {
        let perms = permutations(&[1, 2, 3, 4]);
        let set: std::collections::HashSet<_> = perms.iter().cloned().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn next_server_follows_order() {
        let plan = StaticPlan::new(vec![QNodeId(3), QNodeId(1), QNodeId(2)]);
        assert_eq!(plan.next_server(0), Some(QNodeId(3)));
        assert_eq!(plan.next_server(1 << 3), Some(QNodeId(1)));
        assert_eq!(plan.next_server((1 << 3) | (1 << 1)), Some(QNodeId(2)));
        assert_eq!(plan.next_server((1 << 3) | (1 << 1) | (1 << 2)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        let _ = StaticPlan::new(vec![QNodeId(1), QNodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn rejects_root() {
        let _ = StaticPlan::new(vec![QNodeId(0)]);
    }

    #[test]
    fn id_order_plan() {
        let plan = StaticPlan::in_id_order(3);
        assert_eq!(plan.order(), &[QNodeId(1), QNodeId(2), QNodeId(3)]);
    }
}
