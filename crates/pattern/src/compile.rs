//! Server predicate compilation — the paper's Algorithm 1.
//!
//! Each non-root query node becomes a *server*. For a partial match
//! arriving at a server, the server must check predicates relating its
//! candidate nodes to (a) the match's root node — always instantiated —
//! and (b) any other instantiated query node related to the server node
//! in the pattern. Because adaptive routing means "different partial
//! matches may have gone through different sets of server operations",
//! the predicates are compiled once per server as *conditional predicate
//! sequences*: checked only against bound nodes, exact form first, then
//! the relaxed form.

use crate::ast::{AttrTest, QNodeId, TreePattern, ValueTest};
use crate::axis::ComposedAxis;

/// Which way a conditional predicate points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The related query node is an ancestor of the server node in the
    /// pattern: `axis.holds(other, server_candidate)`.
    FromAncestor,
    /// The related query node is a descendant of the server node:
    /// `axis.holds(server_candidate, other)`.
    ToDescendant,
}

/// A predicate between the server's query node and one other query node,
/// checked only when the other node is instantiated in the partial
/// match. `exact` is the composition of the original pattern edges; its
/// relaxation (`ad`) is implied — the evaluation checks exact first,
/// then relaxed (the paper's "ordered list of predicates (e.g., if not
/// child, then descendant)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionalPredicate {
    /// The related query node.
    pub other: QNodeId,
    /// Whether `other` sits above or below the server node in the
    /// pattern.
    pub direction: Direction,
    /// The composition of the original pattern edges between them.
    pub exact: ComposedAxis,
}

/// Everything a server needs to process partial matches (Algorithm 1's
/// output for one server node).
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// The query node this server instantiates.
    pub qnode: QNodeId,
    /// The node's tag (candidates must carry it; `*` matches any).
    pub tag: String,
    /// The node's content predicate, if any.
    pub value: Option<ValueTest>,
    /// The node's attribute predicates (all must hold).
    pub attrs: Vec<AttrTest>,
    /// The *exact* composed axis from the pattern root to this node
    /// ("Relaxation_with_rootNode" before relaxation). Its relaxed form
    /// (`ad`) defines the candidate universe: with subtree promotion and
    /// edge generalization, any descendant of the root match with the
    /// right tag can extend the match.
    pub root_exact: ComposedAxis,
    /// Conditional predicates against every pattern ancestor/descendant
    /// of this node (Algorithm 1's loop over "each Node n' in Q").
    pub conditional: Vec<ConditionalPredicate>,
}

/// Compiles one [`ServerSpec`] per non-root query node (Algorithm 1 run
/// for every server).
pub fn compile_servers(pattern: &TreePattern) -> Vec<ServerSpec> {
    pattern
        .server_ids()
        .map(|id| compile_server(pattern, id))
        .collect()
}

fn compile_server(pattern: &TreePattern, server: QNodeId) -> ServerSpec {
    let node = pattern.node(server);

    // getComposition(n, rootNode(Q)): compose edges along root -> n.
    let root_exact = composition(pattern, QNodeId::ROOT, server)
        .expect("every query node is reachable from the root");

    let mut conditional = Vec::new();
    for other in pattern.node_ids() {
        if other == server {
            continue;
        }
        // if isDescendant(n', n): predicate from the server node down to n'.
        if pattern.is_pattern_ancestor(server, other) {
            let exact = composition(pattern, server, other)
                .expect("pattern ancestor has a path to its descendant");
            conditional.push(ConditionalPredicate {
                other,
                direction: Direction::ToDescendant,
                exact,
            });
        }
        // if isDescendant(n, n') AND notRoot(n'): predicate from n' down to
        // the server node (the root is covered by root_exact).
        if !other.is_root() && pattern.is_pattern_ancestor(other, server) {
            let exact = composition(pattern, other, server)
                .expect("pattern ancestor has a path to its descendant");
            conditional.push(ConditionalPredicate {
                other,
                direction: Direction::FromAncestor,
                exact,
            });
        }
    }

    ServerSpec {
        qnode: server,
        tag: node.tag.clone(),
        value: node.value.clone(),
        attrs: node.attrs.clone(),
        root_exact,
        conditional,
    }
}

/// Composes the pattern axes along the path `from -> to` (pattern
/// ancestor to descendant). `None` if `from` is not an ancestor of `to`.
pub fn composition(pattern: &TreePattern, from: QNodeId, to: QNodeId) -> Option<ComposedAxis> {
    let path = pattern.path_between(from, to)?;
    let axes: Vec<_> = path.iter().map(|(a, _)| *a).collect();
    ComposedAxis::compose(&axes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis;
    use crate::parse::parse_pattern;

    #[test]
    fn fig2a_publisher_server() {
        // The paper's running example (§5.2.1): "the server corresponding
        // to publisher needs to check predicates of the form
        // pc(info, publisher) and pc(publisher, name) for the exact
        // query. ... Allowing for subtree promotion ... would require
        // checking for the predicate ad(book, publisher)."
        let q = parse_pattern("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
            .unwrap();
        let servers = compile_servers(&q);
        let publisher = servers.iter().find(|s| s.tag == "publisher").unwrap();

        // Exact root predicate: book/*/publisher (pc ∘ pc); its relaxed
        // form is the ad(book, publisher) the paper mentions.
        assert_eq!(publisher.root_exact, ComposedAxis::ChildChain(2));
        assert_eq!(publisher.root_exact.relaxed(), ComposedAxis::Descendant);

        // Conditional predicates: from info (ancestor) and to name
        // (descendant), both pc.
        assert_eq!(publisher.conditional.len(), 2);
        let from_info = publisher
            .conditional
            .iter()
            .find(|c| c.direction == Direction::FromAncestor)
            .unwrap();
        assert_eq!(q.node(from_info.other).tag, "info");
        assert_eq!(from_info.exact, ComposedAxis::ChildChain(1));
        let to_name = publisher
            .conditional
            .iter()
            .find(|c| c.direction == Direction::ToDescendant)
            .unwrap();
        assert_eq!(q.node(to_name.other).tag, "name");
        assert_eq!(to_name.exact, ComposedAxis::ChildChain(1));
    }

    #[test]
    fn component_predicates_of_def_4_1() {
        // Definition 4.1's example uses sibling axes we don't model, but
        // the composition rule it illustrates — a[./c[.//d]] giving
        // a[.//d] — must hold.
        let q = parse_pattern("/a[./b and ./c[.//d]]").unwrap();
        let servers = compile_servers(&q);
        let d = servers.iter().find(|s| s.tag == "d").unwrap();
        assert_eq!(d.root_exact, ComposedAxis::Descendant);
        let b = servers.iter().find(|s| s.tag == "b").unwrap();
        assert_eq!(b.root_exact, ComposedAxis::ChildChain(1));
    }

    #[test]
    fn unrelated_nodes_have_no_conditional_predicates() {
        let q = parse_pattern("//item[./description/parlist and ./mailbox/mail/text]").unwrap();
        let servers = compile_servers(&q);
        let parlist = servers.iter().find(|s| s.tag == "parlist").unwrap();
        // parlist relates only to description (ancestor); mailbox/mail/
        // text are in a different branch.
        assert_eq!(parlist.conditional.len(), 1);
        assert_eq!(q.node(parlist.conditional[0].other).tag, "description");

        let mail = servers.iter().find(|s| s.tag == "mail").unwrap();
        let related: Vec<_> = mail
            .conditional
            .iter()
            .map(|c| q.node(c.other).tag.as_str())
            .collect();
        assert_eq!(related, vec!["mailbox", "text"]);
    }

    #[test]
    fn value_predicates_are_carried() {
        let q = parse_pattern("/book[.//title = 'wodehouse']").unwrap();
        let servers = compile_servers(&q);
        assert_eq!(servers[0].value, Some(ValueTest::Eq("wodehouse".into())));
        assert_eq!(servers[0].root_exact, ComposedAxis::Descendant);
    }

    #[test]
    fn every_server_has_root_axis_from_pattern() {
        let q = parse_pattern("//item[./mailbox/mail/text[./bold and ./keyword]]").unwrap();
        let servers = compile_servers(&q);
        let by_tag = |t: &str| servers.iter().find(|s| s.tag == t).unwrap();
        assert_eq!(by_tag("mailbox").root_exact, ComposedAxis::ChildChain(1));
        assert_eq!(by_tag("mail").root_exact, ComposedAxis::ChildChain(2));
        assert_eq!(by_tag("text").root_exact, ComposedAxis::ChildChain(3));
        assert_eq!(by_tag("bold").root_exact, ComposedAxis::ChildChain(4));
        let _ = Axis::Child; // silence unused-import lint in some cfgs
    }
}
