//! Property-based tests for the query model: parser/printer
//! round-trips, relaxation laws, and Algorithm-1 compilation
//! invariants.

use proptest::prelude::*;
use whirlpool_pattern::relax::{self, Relaxation};
use whirlpool_pattern::{
    compile_servers, parse_pattern, Axis, ComposedAxis, Direction, QNodeId, TreePattern,
};

const TAGS: [&str; 5] = ["item", "name", "text", "bold", "keyword"];

#[derive(Debug, Clone)]
struct QNode {
    tag: usize,
    axis: bool,
    children: Vec<QNode>,
}

fn query_strategy() -> impl Strategy<Value = QNode> {
    let leaf = (0usize..TAGS.len(), any::<bool>()).prop_map(|(tag, axis)| QNode {
        tag,
        axis,
        children: vec![],
    });
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            0usize..TAGS.len(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, children)| QNode {
                tag,
                axis,
                children,
            })
    })
}

fn build(q: &QNode) -> TreePattern {
    fn rec(q: &QNode, parent: QNodeId, p: &mut TreePattern) {
        let axis = if q.axis {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let id = p.add_node(parent, axis, TAGS[q.tag], None);
        for c in &q.children {
            rec(c, id, p);
        }
    }
    let mut p = TreePattern::new(
        TAGS[q.tag],
        if q.axis {
            Axis::Descendant
        } else {
            Axis::Child
        },
    );
    for c in &q.children {
        rec(c, QNodeId::ROOT, &mut p);
    }
    p
}

proptest! {
    /// Display → parse preserves the canonical form for any pattern.
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let pattern = build(&q);
        let printed = pattern.to_string();
        let reparsed = parse_pattern(&printed)
            .unwrap_or_else(|e| panic!("cannot reparse {printed:?}: {e}"));
        prop_assert_eq!(pattern.canonical_form(), reparsed.canonical_form());
    }

    /// Every applicable relaxation applies, changes the canonical form,
    /// and never grows the pattern.
    #[test]
    fn applicable_relaxations_apply(q in query_strategy()) {
        let pattern = build(&q);
        for r in relax::applicable(&pattern) {
            let relaxed = relax::apply(&pattern, r);
            prop_assert!(relaxed.is_some(), "applicable {r:?} did not apply");
            let relaxed = relaxed.unwrap();
            prop_assert!(relaxed.len() <= pattern.len());
            prop_assert_ne!(relaxed.canonical_form(), pattern.canonical_form());
            match r {
                Relaxation::LeafDeletion(_) => {
                    prop_assert_eq!(relaxed.len(), pattern.len() - 1)
                }
                _ => prop_assert_eq!(relaxed.len(), pattern.len()),
            }
        }
    }

    /// Relaxation weakens: once fully relaxed, every edge is an
    /// ancestor-descendant edge from the root, and repeated relaxation
    /// of edges reaches that fixpoint for edge generalization.
    #[test]
    fn fully_relaxed_is_a_fixpoint(q in query_strategy()) {
        let pattern = build(&q);
        let flat = relax::fully_relaxed(&pattern);
        // No edge generalization or subtree promotion applies to the
        // flattened pattern (all edges are already root-level ad).
        for r in relax::applicable(&flat) {
            prop_assert!(
                matches!(r, Relaxation::LeafDeletion(_)),
                "non-deletion relaxation {r:?} still applicable to {flat}"
            );
        }
    }

    /// Algorithm 1 invariants: every server's root predicate composes
    /// the axes along the pattern path (Descendant iff any edge on the
    /// path is Descendant, exact depth otherwise), and conditional
    /// predicates pair up: if server j lists i as an ancestor, server i
    /// lists j as a descendant with the same composed axis.
    #[test]
    fn compiled_servers_are_consistent(q in query_strategy()) {
        let pattern = build(&q);
        let servers = compile_servers(&pattern);
        prop_assert_eq!(servers.len(), pattern.len() - 1);

        for spec in &servers {
            // Root predicate vs a manual composition.
            let path = pattern.path_between(QNodeId::ROOT, spec.qnode).unwrap();
            let any_descendant = path.iter().any(|(a, _)| *a == Axis::Descendant);
            match spec.root_exact {
                ComposedAxis::Descendant => prop_assert!(any_descendant),
                ComposedAxis::ChildChain(n) => {
                    prop_assert!(!any_descendant);
                    prop_assert_eq!(n as usize, path.len());
                }
            }

            // Pairing of conditional predicates.
            for cp in &spec.conditional {
                if cp.other.is_root() {
                    prop_assert_eq!(cp.direction, Direction::FromAncestor);
                    continue;
                }
                let other_spec =
                    servers.iter().find(|s| s.qnode == cp.other).expect("server exists");
                let mirrored = other_spec
                    .conditional
                    .iter()
                    .find(|mc| mc.other == spec.qnode)
                    .expect("conditional predicates pair up");
                prop_assert_ne!(mirrored.direction, cp.direction);
                prop_assert_eq!(mirrored.exact, cp.exact);
            }
        }
    }

    /// The canonical form is invariant under shuffling sibling order at
    /// build time.
    #[test]
    fn canonical_form_is_order_invariant(q in query_strategy()) {
        let pattern = build(&q);
        let mut reversed = q.clone();
        fn rev(n: &mut QNode) {
            n.children.reverse();
            for c in &mut n.children {
                rev(c);
            }
        }
        rev(&mut reversed);
        let pattern_rev = build(&reversed);
        prop_assert_eq!(pattern.canonical_form(), pattern_rev.canonical_form());
    }
}

proptest! {
    /// The query parser never panics: any input either parses or
    /// returns a positioned error.
    #[test]
    fn parser_never_panics(input in ".{0,60}") {
        let _ = parse_pattern(&input);
    }

    /// Inputs built from query-language fragments stress the grammar
    /// corners harder than uniform strings.
    #[test]
    fn parser_never_panics_on_fragment_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "/", "//", "[", "]", ".", "./", ".//", "and", "item", "*",
                "@", "@id", "=", "'v'", "\"w\"", " ", "a", "-", ":",
            ]),
            0..14,
        )
    ) {
        let input: String = parts.concat();
        let _ = parse_pattern(&input);
    }
}
