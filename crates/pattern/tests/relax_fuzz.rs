//! Fuzz the relaxation rewriter: random relaxation sequences applied to
//! random tree patterns must never panic, and every accepted step must
//! produce a structurally sound pattern.

use proptest::prelude::*;
use whirlpool_pattern::relax::{applicable, apply, Relaxation};
use whirlpool_pattern::{parse_pattern, QNodeId, TreePattern};

/// A small pool of structurally varied queries to start from.
const QUERIES: &[&str] = &[
    "//item",
    "//item[./name]",
    "//item[./description/parlist]",
    "//item[./description/parlist and ./mailbox/mail/text]",
    "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']",
    "/a[./b/c[./d and ./e]]",
    "//item[@id = 'item3' and ./incategory[@category]]",
    "//item[./*/parlist]",
    "/r[.//x and ./y[./z]]",
];

fn sanity_check(p: &TreePattern) {
    // Parent pointers are consistent and acyclic (ids only decrease
    // toward the root), and node 0 is the only root.
    for id in p.node_ids() {
        let node = p.node(id);
        match node.parent {
            None => assert!(id.is_root(), "non-root {id:?} lost its parent"),
            Some(parent) => {
                assert!(parent.index() < id.index(), "parent after child");
                assert!(
                    p.node(parent).children.contains(&id),
                    "parent {parent:?} does not list {id:?} as a child"
                );
            }
        }
    }
    // The canonical form is printable (walks the whole structure).
    let _ = p.canonical_form();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Applying any sequence of relaxation steps — chosen from the
    /// applicable set by random index — never panics, and each result
    /// stays structurally sound.
    #[test]
    fn random_relaxation_sequences_never_panic(
        query_idx in 0..QUERIES.len(),
        picks in prop::collection::vec(any::<u16>(), 0..12),
    ) {
        let mut p = parse_pattern(QUERIES[query_idx]).unwrap();
        for pick in picks {
            let options = applicable(&p);
            if options.is_empty() {
                break;
            }
            let r = options[pick as usize % options.len()];
            if let Some(next) = apply(&p, r) {
                sanity_check(&next);
                p = next;
            }
        }
    }

    /// `apply` with arbitrary (possibly inapplicable) relaxations on
    /// arbitrary node ids returns `None` rather than panicking, as long
    /// as the id is in range.
    #[test]
    fn arbitrary_relaxations_are_rejected_not_panicked(
        query_idx in 0..QUERIES.len(),
        kind in 0..3u8,
        raw_id in any::<u8>(),
    ) {
        let p = parse_pattern(QUERIES[query_idx]).unwrap();
        let id = QNodeId(raw_id % p.len() as u8);
        let r = match kind {
            0 => Relaxation::EdgeGeneralization(id),
            1 => Relaxation::LeafDeletion(id),
            _ => Relaxation::SubtreePromotion(id),
        };
        if let Some(next) = apply(&p, r) {
            sanity_check(&next);
        }
    }
}
