//! Property tests: [`StructuralColumns`] must agree with the
//! Dewey-derived structural relations on arbitrary documents.
//!
//! The columns are the engines' hot-path replacement for Dewey prefix
//! comparisons, so every relation they answer — parent, depth,
//! containment, and the compiled [`ComposedAxis`] predicates — is
//! checked pairwise against the [`Document`]'s Dewey-backed oracle, on
//! both randomized element trees and seeded XMark-like documents.

use proptest::prelude::*;
use whirlpool_index::TagIndex;
use whirlpool_pattern::ComposedAxis;
use whirlpool_xmark::{generate, GeneratorConfig};
use whirlpool_xml::{Document, DocumentBuilder};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone)]
struct RandTree {
    tag: usize,
    children: Vec<RandTree>,
}

fn tree_strategy() -> impl Strategy<Value = RandTree> {
    let leaf = (0usize..TAGS.len()).prop_map(|tag| RandTree {
        tag,
        children: vec![],
    });
    leaf.prop_recursive(5, 48, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| RandTree { tag, children })
    })
}

fn build_doc(trees: &[RandTree]) -> Document {
    fn rec(t: &RandTree, b: &mut DocumentBuilder) {
        b.open(TAGS[t.tag]);
        for c in &t.children {
            rec(c, b);
        }
        b.close();
    }
    let mut b = DocumentBuilder::new();
    for t in trees {
        rec(t, &mut b);
    }
    b.finish()
}

/// Pairwise agreement between the columns and the Dewey oracle.
fn assert_columns_agree(doc: &Document) {
    let index = TagIndex::build(doc);
    let columns = index.columns();
    let axes = [
        ComposedAxis::ChildChain(1),
        ComposedAxis::ChildChain(2),
        ComposedAxis::ChildChain(3),
        ComposedAxis::Descendant,
    ];
    for n in doc.all_nodes() {
        assert_eq!(columns.parent_of(n), doc.parent(n), "parent of {n:?}");
        assert_eq!(columns.depth_of(n), doc.depth(n), "depth of {n:?}");
        for m in doc.all_nodes() {
            assert_eq!(
                columns.contains(n, m),
                doc.is_ancestor(n, m),
                "containment {n:?} -> {m:?}"
            );
            for axis in axes {
                assert_eq!(
                    columns.holds(axis, n, m),
                    axis.holds(doc.dewey(n), doc.dewey(m)),
                    "{axis:?} {n:?} -> {m:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columns_agree_with_dewey_on_random_trees(
        trees in prop::collection::vec(tree_strategy(), 1..4),
    ) {
        assert_columns_agree(&build_doc(&trees));
    }

    #[test]
    fn columns_agree_with_dewey_on_xmark_documents(seed in 0u64..1000) {
        let doc = generate(&GeneratorConfig {
            target_bytes: 4_000,
            seed,
            max_items: None,
        });
        assert_columns_agree(&doc);
    }
}
