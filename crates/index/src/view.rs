//! Borrowed views over document + index state: one accessor layer,
//! two backings.
//!
//! Everything the engines read at query time — postings, structural
//! columns, tag table, text and attribute payloads — is exposed here
//! through [`DocView`] and [`TagIndexView`], each an enum over
//!
//! * the **owned** backing ([`Document`] / [`TagIndex`], built by
//!   parsing XML), and
//! * the **mapped** backing ([`MappedDoc`] / [`MappedIndex`], raw
//!   little-endian flat arrays borrowed straight out of a memory-mapped
//!   version-2 snapshot file from `whirlpool-store`).
//!
//! The views are `Copy` (a handful of slice pointers) and every
//! accessor returns data with the *backing's* lifetime, so a query
//! context holding views runs the identical batch kernels over either
//! backing — attaching to a prebuilt corpus costs a header read, not a
//! rebuild.
//!
//! The mapped structs do **no** validation: they trust the slices they
//! are constructed over. `whirlpool-store` checksums and structurally
//! validates a snapshot *before* assembling views, which is what keeps
//! the accessors' plain indexing panic-free.

use crate::columns::ColumnsView;
use crate::tagindex::TagIndex;
use crate::RangeCursor;
use whirlpool_xml::{Document, NodeId, TagId, WriteOptions};

/// `u32`s per value-posting group in a mapped index: tag id, value
/// offset, value length, ids offset, ids length.
pub const VALUE_GROUP_STRIDE: usize = 5;

/// `u32`s per attribute entry in a mapped document: name tag id, value
/// offset, value length.
pub const ATTR_ENTRY_STRIDE: usize = 3;

// -------------------------------------------------------------------
// Mapped document payload
// -------------------------------------------------------------------

/// Document-level payload borrowed from a mapped snapshot: tag table,
/// per-node tags, direct-text values, and attributes — everything
/// answer serialization and value predicates need, without a node
/// arena.
#[derive(Clone, Copy)]
pub struct MappedDoc<'a> {
    columns: ColumnsView<'a>,
    /// `tag_offsets[t]..tag_offsets[t+1]` brackets tag `t`'s name in
    /// `tag_blob` (`tag_count + 1` entries).
    tag_offsets: &'a [u32],
    tag_blob: &'a str,
    /// `tag_of[n]` = raw tag id of node `n`.
    tag_of: &'a [u32],
    /// `text_offsets[n]..text_offsets[n+1]` brackets node `n`'s direct
    /// text in `text_blob`; an empty range means "no text" (parsing
    /// trims, so no element ever carries empty text).
    text_offsets: &'a [u32],
    text_blob: &'a str,
    /// `attr_offsets[n]..attr_offsets[n+1]` brackets node `n`'s
    /// attribute *entries* (each [`ATTR_ENTRY_STRIDE`] `u32`s in
    /// `attr_entries`, values in `attr_blob`).
    attr_offsets: &'a [u32],
    attr_entries: &'a [u32],
    attr_blob: &'a str,
}

impl<'a> MappedDoc<'a> {
    /// Assembles a mapped document view over pre-validated slices (see
    /// the module docs for who validates).
    ///
    /// # Panics
    /// Panics on gross shape mismatches (offset-table lengths); the
    /// finer invariants are the validator's job.
    #[allow(clippy::too_many_arguments)] // one slice per snapshot section
    pub fn from_raw(
        columns: ColumnsView<'a>,
        tag_offsets: &'a [u32],
        tag_blob: &'a str,
        tag_of: &'a [u32],
        text_offsets: &'a [u32],
        text_blob: &'a str,
        attr_offsets: &'a [u32],
        attr_entries: &'a [u32],
        attr_blob: &'a str,
    ) -> Self {
        let n = columns.len();
        assert_eq!(tag_of.len(), n);
        assert_eq!(text_offsets.len(), n + 1);
        assert_eq!(attr_offsets.len(), n + 1);
        assert!(!tag_offsets.is_empty());
        assert_eq!(attr_entries.len() % ATTR_ENTRY_STRIDE, 0);
        MappedDoc {
            columns,
            tag_offsets,
            tag_blob,
            tag_of,
            text_offsets,
            text_blob,
            attr_offsets,
            attr_entries,
            attr_blob,
        }
    }

    /// Total nodes, synthetic root included.
    #[inline]
    pub fn len(&self) -> usize {
        self.tag_of.len()
    }

    /// True when only the synthetic root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Distinct tags in the tag table.
    #[inline]
    pub fn tag_count(&self) -> usize {
        self.tag_offsets.len() - 1
    }

    /// The structural columns the payload was mapped alongside.
    #[inline]
    pub fn columns(&self) -> ColumnsView<'a> {
        self.columns
    }

    /// The node's interned tag.
    #[inline]
    pub fn tag(&self, n: NodeId) -> TagId {
        TagId::from_index(self.tag_of[n.index()] as usize)
    }

    /// The tag string for an id.
    #[inline]
    pub fn tag_name(&self, tag: TagId) -> &'a str {
        let t = tag.index();
        let lo = self.tag_offsets[t] as usize;
        let hi = self.tag_offsets[t + 1] as usize;
        self.tag_blob.get(lo..hi).unwrap_or("")
    }

    /// The node's tag as a string.
    #[inline]
    pub fn tag_str(&self, n: NodeId) -> &'a str {
        self.tag_name(self.tag(n))
    }

    /// Resolves a tag name to its id — a linear scan over the (small)
    /// tag table, mirroring the owned interner's lookup. Callers on hot
    /// paths resolve once per query, not per node.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        (0..self.tag_count())
            .find(|&t| self.tag_name(TagId::from_index(t)) == name)
            .map(TagId::from_index)
    }

    /// The node's direct text value, if any.
    #[inline]
    pub fn text(&self, n: NodeId) -> Option<&'a str> {
        let i = n.index();
        let lo = self.text_offsets[i] as usize;
        let hi = self.text_offsets[i + 1] as usize;
        match self.text_blob.get(lo..hi) {
            Some("") | None => None,
            some => some,
        }
    }

    /// The value of attribute `name` on `n`, if present.
    pub fn attribute(&self, n: NodeId, name: &str) -> Option<&'a str> {
        let want = self.tag_id(name)?.index() as u32;
        let i = n.index();
        let lo = self.attr_offsets[i] as usize * ATTR_ENTRY_STRIDE;
        let hi = self.attr_offsets[i + 1] as usize * ATTR_ENTRY_STRIDE;
        let entries = self.attr_entries.get(lo..hi)?;
        entries.chunks_exact(ATTR_ENTRY_STRIDE).find_map(|e| {
            if e[0] == want {
                self.attr_blob.get(e[1] as usize..(e[1] + e[2]) as usize)
            } else {
                None
            }
        })
    }

    /// The attributes of `n` as `(name, value)` pairs, in source order.
    pub fn attributes(&self, n: NodeId) -> impl Iterator<Item = (&'a str, &'a str)> + '_ {
        let i = n.index();
        let lo = self.attr_offsets[i] as usize * ATTR_ENTRY_STRIDE;
        let hi = self.attr_offsets[i + 1] as usize * ATTR_ENTRY_STRIDE;
        self.attr_entries[lo..hi]
            .chunks_exact(ATTR_ENTRY_STRIDE)
            .map(|e| {
                let name = self.tag_name(TagId::from_index(e[0] as usize));
                let value = self
                    .attr_blob
                    .get(e[1] as usize..(e[1] + e[2]) as usize)
                    .unwrap_or("");
                (name, value)
            })
    }
}

// -------------------------------------------------------------------
// Mapped index payload
// -------------------------------------------------------------------

/// Index payload borrowed from a mapped snapshot: per-tag postings,
/// per-`(tag, value)` postings, and the structural columns.
#[derive(Clone, Copy)]
pub struct MappedIndex<'a> {
    columns: ColumnsView<'a>,
    /// `post_offsets[t]..post_offsets[t+1]` brackets tag `t`'s postings
    /// in `post_ids` (`tag_count + 1` entries).
    post_offsets: &'a [u32],
    post_ids: &'a [u32],
    /// Value-posting groups, [`VALUE_GROUP_STRIDE`] `u32`s each, sorted
    /// by `(tag id, value bytes)` for binary search.
    value_groups: &'a [u32],
    value_blob: &'a str,
    value_ids: &'a [u32],
}

impl<'a> MappedIndex<'a> {
    /// Assembles a mapped index view over pre-validated slices.
    ///
    /// # Panics
    /// Panics on gross shape mismatches; finer invariants (sortedness,
    /// ids in range) are the snapshot validator's job.
    pub fn from_raw(
        columns: ColumnsView<'a>,
        post_offsets: &'a [u32],
        post_ids: &'a [u32],
        value_groups: &'a [u32],
        value_blob: &'a str,
        value_ids: &'a [u32],
    ) -> Self {
        assert!(!post_offsets.is_empty());
        assert_eq!(*post_offsets.last().unwrap() as usize, post_ids.len());
        assert_eq!(value_groups.len() % VALUE_GROUP_STRIDE, 0);
        MappedIndex {
            columns,
            post_offsets,
            post_ids,
            value_groups,
            value_blob,
            value_ids,
        }
    }

    /// The structural columns.
    #[inline]
    pub fn columns(&self) -> ColumnsView<'a> {
        self.columns
    }

    /// All nodes with `tag`, in document order — a zero-copy slice of
    /// the mapped file.
    pub fn nodes_with_tag(&self, tag: TagId) -> &'a [NodeId] {
        let t = tag.index();
        if t + 1 >= self.post_offsets.len() {
            return &[];
        }
        let lo = self.post_offsets[t] as usize;
        let hi = self.post_offsets[t + 1] as usize;
        match self.post_ids.get(lo..hi) {
            Some(raw) => NodeId::slice_from_raw(raw),
            None => &[],
        }
    }

    /// Number of value-posting groups.
    #[inline]
    fn group_count(&self) -> usize {
        self.value_groups.len() / VALUE_GROUP_STRIDE
    }

    /// The `(tag, value)` key of group `g`.
    #[inline]
    fn group_key(&self, g: usize) -> (u32, &'a str) {
        let e = &self.value_groups[g * VALUE_GROUP_STRIDE..(g + 1) * VALUE_GROUP_STRIDE];
        let value = self
            .value_blob
            .get(e[1] as usize..(e[1] + e[2]) as usize)
            .unwrap_or("");
        (e[0], value)
    }

    /// All nodes with `tag` whose direct text equals `value` — binary
    /// search over the sorted group table, then a zero-copy id slice.
    pub fn nodes_with_tag_value(&self, tag: TagId, value: &str) -> &'a [NodeId] {
        let want = (tag.index() as u32, value);
        let (mut lo, mut hi) = (0usize, self.group_count());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.group_key(mid) < want {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= self.group_count() || self.group_key(lo) != want {
            return &[];
        }
        let e = &self.value_groups[lo * VALUE_GROUP_STRIDE..(lo + 1) * VALUE_GROUP_STRIDE];
        match self.value_ids.get(e[3] as usize..(e[3] + e[4]) as usize) {
            Some(raw) => NodeId::slice_from_raw(raw),
            None => &[],
        }
    }
}

// -------------------------------------------------------------------
// The unified views
// -------------------------------------------------------------------

/// A borrowed document: owned arena or mapped snapshot payload behind
/// one accessor surface. `Copy`, so contexts and kernels pass it by
/// value.
#[derive(Clone, Copy)]
pub enum DocView<'a> {
    /// Backed by a parsed [`Document`].
    Owned(&'a Document),
    /// Backed by a mapped snapshot's flat arrays.
    Mapped(MappedDoc<'a>),
}

impl<'a> From<&'a Document> for DocView<'a> {
    fn from(doc: &'a Document) -> Self {
        DocView::Owned(doc)
    }
}

impl<'a> DocView<'a> {
    /// Total nodes, synthetic root included.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            DocView::Owned(d) => d.len(),
            DocView::Mapped(m) => m.len(),
        }
    }

    /// True when only the synthetic root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The synthetic document root (always node 0).
    #[inline]
    pub fn document_root(&self) -> NodeId {
        NodeId::from_index(0)
    }

    /// All *element* ids (everything but the synthetic root) in
    /// document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> {
        (1..self.len()).map(NodeId::from_index)
    }

    /// The node's interned tag.
    #[inline]
    pub fn tag(&self, n: NodeId) -> TagId {
        match self {
            DocView::Owned(d) => d.tag(n),
            DocView::Mapped(m) => m.tag(n),
        }
    }

    /// The node's tag as a string.
    #[inline]
    pub fn tag_str(&self, n: NodeId) -> &'a str {
        match self {
            DocView::Owned(d) => d.tag_str(n),
            DocView::Mapped(m) => m.tag_str(n),
        }
    }

    /// Resolves a tag name to its id, if the document uses it.
    #[inline]
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        match self {
            DocView::Owned(d) => d.tag_id(name),
            DocView::Mapped(m) => m.tag_id(name),
        }
    }

    /// The tag string for an id.
    #[inline]
    pub fn tag_name(&self, tag: TagId) -> &'a str {
        match self {
            DocView::Owned(d) => d.tag_name(tag),
            DocView::Mapped(m) => m.tag_name(tag),
        }
    }

    /// The node's direct text value, if any.
    #[inline]
    pub fn text(&self, n: NodeId) -> Option<&'a str> {
        match self {
            DocView::Owned(d) => d.text(n),
            DocView::Mapped(m) => m.text(n),
        }
    }

    /// The value of attribute `name` on `n`, if present.
    #[inline]
    pub fn attribute(&self, n: NodeId, name: &str) -> Option<&'a str> {
        match self {
            DocView::Owned(d) => d.attribute(n, name),
            DocView::Mapped(m) => m.attribute(n, name),
        }
    }

    /// Depth of a node; the document root has depth 0.
    #[inline]
    pub fn depth(&self, n: NodeId) -> usize {
        match self {
            DocView::Owned(d) => d.depth(n),
            DocView::Mapped(m) => m.columns().depth_of(n),
        }
    }

    /// The owned [`Document`], when this view has one. Paths that need
    /// the arena (Dewey reference oracle) gate on this.
    #[inline]
    pub fn as_document(&self) -> Option<&'a Document> {
        match self {
            DocView::Owned(d) => Some(d),
            DocView::Mapped(_) => None,
        }
    }

    /// Serializes the subtree rooted at `node`, over either backing —
    /// same output as [`whirlpool_xml::write_node`] on the owned
    /// document.
    pub fn write_node(&self, node: NodeId, opts: &WriteOptions) -> String {
        match self {
            DocView::Owned(d) => whirlpool_xml::write_node(d, node, opts),
            DocView::Mapped(m) => {
                let mut out = String::new();
                write_mapped_node(m, node, opts, 0, &mut out);
                out
            }
        }
    }
}

/// The mapped-backing arm of [`DocView::write_node`]: recursion over
/// subtree extents (child of `n` = next unconsumed id before `n`'s
/// subtree end) instead of arena child lists.
fn write_mapped_node(
    doc: &MappedDoc<'_>,
    node: NodeId,
    opts: &WriteOptions,
    depth: usize,
    out: &mut String,
) {
    use std::fmt::Write as _;
    let columns = doc.columns();
    let tag = doc.tag_str(node);
    if let Some(indent) = opts.indent {
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.extend(std::iter::repeat(' ').take(indent * depth));
    }
    out.push('<');
    out.push_str(tag);
    for (name, value) in doc.attributes(node) {
        let _ = write!(out, " {name}=\"");
        escape_into(value, true, out);
        out.push('"');
    }
    let end = columns.subtree_end_raw(node) as usize;
    let mut child = node.index() + 1;
    let has_children = child < end;
    let text = doc.text(node);
    if !has_children && text.is_none() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(text) = text {
        escape_into(text, false, out);
    }
    while child < end {
        let c = NodeId::from_index(child);
        write_mapped_node(doc, c, opts, depth + 1, out);
        child = columns.subtree_end_raw(c) as usize;
    }
    if let Some(indent) = opts.indent {
        if has_children {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(indent * depth));
        }
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

/// XML special-character escaping, matching the owned writer's rules.
fn escape_into(text: &str, in_attribute: bool, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// A borrowed tag index: owned [`TagIndex`] or mapped snapshot payload
/// behind one accessor surface. `Copy`, so contexts and kernels pass it
/// by value.
#[derive(Clone, Copy)]
pub enum TagIndexView<'a> {
    /// Backed by a [`TagIndex`] built in memory.
    Owned(&'a TagIndex),
    /// Backed by a mapped snapshot's flat arrays.
    Mapped(MappedIndex<'a>),
}

impl<'a> From<&'a TagIndex> for TagIndexView<'a> {
    fn from(index: &'a TagIndex) -> Self {
        TagIndexView::Owned(index)
    }
}

/// The `[lo, hi)` sub-slice of a sorted posting list falling inside the
/// id interval `(ancestor, end)` — the shared descendant-range scan.
fn range_slice(list: &[NodeId], ancestor: NodeId, end: u32) -> &[NodeId] {
    let lo = list.partition_point(|&n| n <= ancestor);
    let hi = list.partition_point(|&n| (n.index() as u32) < end);
    &list[lo..hi]
}

impl<'a> TagIndexView<'a> {
    /// The document's structural columns.
    #[inline]
    pub fn columns(&self) -> ColumnsView<'a> {
        match self {
            TagIndexView::Owned(i) => i.columns().view(),
            TagIndexView::Mapped(m) => m.columns(),
        }
    }

    /// All nodes with `tag`, in document order.
    #[inline]
    pub fn nodes_with_tag(&self, tag: TagId) -> &'a [NodeId] {
        match self {
            TagIndexView::Owned(i) => i.nodes_with_tag(tag),
            TagIndexView::Mapped(m) => m.nodes_with_tag(tag),
        }
    }

    /// All nodes with `tag` whose direct text equals `value`.
    #[inline]
    pub fn nodes_with_tag_value(&self, tag: TagId, value: &str) -> &'a [NodeId] {
        match self {
            TagIndexView::Owned(i) => i.nodes_with_tag_value(tag, value),
            TagIndexView::Mapped(m) => m.nodes_with_tag_value(tag, value),
        }
    }

    /// Raw subtree extent of `node`.
    #[inline]
    fn extent(&self, node: NodeId) -> u32 {
        self.columns().subtree_end_raw(node)
    }

    /// One past the last descendant of `node` in id order.
    #[inline]
    pub fn subtree_end(&self, node: NodeId) -> NodeId {
        NodeId::from_index(self.extent(node) as usize)
    }

    /// All proper descendants of `ancestor` (any tag), as the
    /// contiguous node-id range `(ancestor, subtree_end)`.
    pub fn descendants_any(&self, ancestor: NodeId) -> impl Iterator<Item = NodeId> {
        let start = ancestor.index() as u32 + 1;
        let end = self.extent(ancestor);
        (start..end).map(|i| NodeId::from_index(i as usize))
    }

    /// Number of proper descendants of `ancestor`.
    #[inline]
    pub fn count_descendants_any(&self, ancestor: NodeId) -> usize {
        (self.extent(ancestor) as usize).saturating_sub(ancestor.index() + 1)
    }

    /// Nodes with `tag` that are proper descendants of `ancestor`.
    pub fn descendants_with_tag(&self, ancestor: NodeId, tag: TagId) -> &'a [NodeId] {
        range_slice(self.nodes_with_tag(tag), ancestor, self.extent(ancestor))
    }

    /// Nodes with `tag` and direct text `value` that are proper
    /// descendants of `ancestor`.
    pub fn descendants_with_tag_value(
        &self,
        ancestor: NodeId,
        tag: TagId,
        value: &str,
    ) -> &'a [NodeId] {
        range_slice(
            self.nodes_with_tag_value(tag, value),
            ancestor,
            self.extent(ancestor),
        )
    }

    /// Number of `tag` descendants of `ancestor`.
    #[inline]
    pub fn count_descendants_with_tag(&self, ancestor: NodeId, tag: TagId) -> usize {
        self.descendants_with_tag(ancestor, tag).len()
    }

    /// A [`RangeCursor`] over the postings of `tag`.
    pub fn tag_cursor(&self, tag: TagId) -> RangeCursor<'a> {
        RangeCursor::new(self.nodes_with_tag(tag))
    }

    /// A [`RangeCursor`] over the `(tag, value)` postings.
    pub fn tag_value_cursor(&self, tag: TagId, value: &str) -> RangeCursor<'a> {
        RangeCursor::new(self.nodes_with_tag_value(tag, value))
    }

    /// The owned [`TagIndex`], when this view has one.
    #[inline]
    pub fn as_index(&self) -> Option<&'a TagIndex> {
        match self {
            TagIndexView::Owned(i) => Some(i),
            TagIndexView::Mapped(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    #[test]
    fn owned_views_mirror_their_backing() {
        let doc = parse_document("<r><t a=\"1\">x</t><t>y</t><s><t>x</t></s></r>").unwrap();
        let index = TagIndex::build(&doc);
        let dv = DocView::from(&doc);
        let iv = TagIndexView::from(&index);

        assert_eq!(dv.len(), doc.len());
        let t = doc.tag_id("t").unwrap();
        assert_eq!(iv.nodes_with_tag(t), index.nodes_with_tag(t));
        assert_eq!(
            iv.nodes_with_tag_value(t, "x"),
            index.nodes_with_tag_value(t, "x")
        );
        for n in doc.elements() {
            assert_eq!(dv.tag(n), doc.tag(n));
            assert_eq!(dv.tag_str(n), doc.tag_str(n));
            assert_eq!(dv.text(n), doc.text(n));
            assert_eq!(dv.attribute(n, "a"), doc.attribute(n, "a"));
            assert_eq!(dv.depth(n), doc.depth(n));
            assert_eq!(iv.subtree_end(n), index.subtree_end(n));
            assert_eq!(
                iv.descendants_with_tag(n, t),
                index.descendants_with_tag(n, t)
            );
        }
        assert!(dv.as_document().is_some());
        assert!(iv.as_index().is_some());
    }
}
