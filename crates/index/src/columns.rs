//! Flat per-node structural columns.
//!
//! The scoring model only ever needs *root-relative* structural facts
//! about a candidate — parent-of, depth delta, containment (paper
//! Definitions 4.1–4.4). All three are O(1) lookups against flat
//! arrays indexed by [`NodeId`], so the server-op hot loop never has
//! to materialize and prefix-compare Dewey paths (an O(depth) walk per
//! candidate). Dewey encodings remain the answer-serialization format;
//! these columns are the evaluation format.

use whirlpool_pattern::ComposedAxis;
use whirlpool_xml::{Document, NodeId};

/// Sentinel parent value for the synthetic document root.
const NO_PARENT: u32 = u32::MAX;

/// Fixed lane width of the branch-free batch sweeps: candidate ids are
/// processed in chunks of this many elements, each chunk a straight-
/// line loop with no data-dependent branches, so the compiler can
/// autovectorize the compares against the flat columns.
pub const KERNEL_LANE: usize = 16;

/// Lanes needed to sweep `n` candidates (the unit of the
/// `kernel_lanes` metric): `ceil(n / KERNEL_LANE)`.
#[inline]
pub fn lanes_for(n: usize) -> u64 {
    n.div_ceil(KERNEL_LANE) as u64
}

/// Number of set entries in a 0/1 byte mask.
#[inline]
pub fn mask_count(mask: &[u8]) -> u64 {
    mask.iter().map(|&b| b as u64).sum()
}

/// Applies `f` to every candidate id, writing a 0/1 byte per element:
/// full [`KERNEL_LANE`]-wide chunks run as fixed-width inner loops, the
/// tail element-wise. Returns the lanes swept.
#[inline]
fn sweep_map(cands: &[u32], out: &mut [u8], f: impl Fn(u32) -> u8) -> u64 {
    debug_assert_eq!(cands.len(), out.len());
    let mut cs = cands.chunks_exact(KERNEL_LANE);
    let mut os = out.chunks_exact_mut(KERNEL_LANE);
    for (c, o) in (&mut cs).zip(&mut os) {
        for i in 0..KERNEL_LANE {
            o[i] = f(c[i]);
        }
    }
    for (c, o) in cs.remainder().iter().zip(os.into_remainder()) {
        *o = f(*c);
    }
    lanes_for(cands.len())
}

/// [`sweep_map`], but ANDing into an existing alive mask
/// (`alive[i] &= f(cands[i])`). Returns the lanes swept.
#[inline]
fn sweep_refine(cands: &[u32], alive: &mut [u8], f: impl Fn(u32) -> u8) -> u64 {
    debug_assert_eq!(cands.len(), alive.len());
    let mut cs = cands.chunks_exact(KERNEL_LANE);
    let mut os = alive.chunks_exact_mut(KERNEL_LANE);
    for (c, o) in (&mut cs).zip(&mut os) {
        for i in 0..KERNEL_LANE {
            o[i] &= f(c[i]);
        }
    }
    for (c, o) in cs.remainder().iter().zip(os.into_remainder()) {
        *o &= f(*c);
    }
    lanes_for(cands.len())
}

/// Flat structural columns for one document: `parent`, `depth`, and
/// `subtree_end`, all indexed by raw node id.
///
/// Built in the same pass as [`TagIndex::build`](crate::TagIndex::build)
/// and exposed through [`TagIndex::columns`](crate::TagIndex::columns).
/// Because node ids are assigned in pre-order, containment is the pure
/// integer test `a < b && b < subtree_end[a]`, and the composed
/// structural predicates of the compiled plan reduce to one or two
/// integer comparisons (see [`ColumnsView::holds`]).
///
/// This is the *owned* backing; every predicate and sweep lives on the
/// borrowed [`ColumnsView`], so the same kernels run unchanged over
/// columns built in memory or memory-mapped from a snapshot file.
pub struct StructuralColumns {
    /// `parent[n]` = raw id of `n`'s parent; `u32::MAX` for the root.
    parent: Vec<u32>,
    /// `depth[n]` = depth of `n` (document root is 0).
    depth: Vec<u16>,
    /// `subtree_end[n]` = one past the last descendant of `n`.
    subtree_end: Vec<u32>,
}

impl StructuralColumns {
    /// Builds the columns in one forward pass (parent, depth) and one
    /// reverse pass (subtree extents) over the node arena — no
    /// intermediate allocation.
    pub fn build(doc: &Document) -> Self {
        let n = doc.len();
        let mut parent = vec![NO_PARENT; n];
        let mut depth = vec![0u16; n];
        for id in doc.elements() {
            let p = doc
                .parent(id)
                .expect("non-root node without a parent")
                .index();
            parent[id.index()] = p as u32;
            depth[id.index()] = depth[p]
                .checked_add(1)
                .expect("document deeper than u16::MAX");
        }

        // Subtree extents: ids are pre-order, so every descendant of a
        // node has a larger id and (walking ids in reverse) is final
        // before its parent is visited — fold each node's extent into
        // its parent's.
        let mut subtree_end: Vec<u32> = (1..=n as u32).collect();
        for id in (1..n).rev() {
            let p = parent[id] as usize;
            if subtree_end[id] > subtree_end[p] {
                subtree_end[p] = subtree_end[id];
            }
        }

        StructuralColumns {
            parent,
            depth,
            subtree_end,
        }
    }

    /// The borrowed view all predicates and sweeps are defined on.
    #[inline]
    pub fn view(&self) -> ColumnsView<'_> {
        ColumnsView {
            parent: &self.parent,
            depth: &self.depth,
            subtree_end: &self.subtree_end,
        }
    }

    /// The parent of `n`, `None` for the document root.
    #[inline]
    pub fn parent_of(&self, n: NodeId) -> Option<NodeId> {
        self.view().parent_of(n)
    }

    /// The depth of `n`; the document root has depth 0.
    #[inline]
    pub fn depth_of(&self, n: NodeId) -> usize {
        self.view().depth_of(n)
    }

    /// One past the last descendant of `n`, as a raw id.
    #[inline]
    pub fn subtree_end_raw(&self, n: NodeId) -> u32 {
        self.view().subtree_end_raw(n)
    }

    /// The raw `subtree_end` column (shared with
    /// [`TagIndex`](crate::TagIndex)'s range scans).
    #[inline]
    pub(crate) fn subtree_end_column(&self) -> &[u32] {
        &self.subtree_end
    }

    /// True iff `ancestor` is a *proper* ancestor of `descendant`.
    #[inline]
    pub fn contains(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        self.view().contains(ancestor, descendant)
    }

    /// True iff `parent` is the parent of `child`.
    #[inline]
    pub fn is_parent(&self, parent: NodeId, child: NodeId) -> bool {
        self.view().is_parent(parent, child)
    }

    /// See [`ColumnsView::holds`].
    #[inline]
    pub fn holds(&self, axis: ComposedAxis, ancestor: NodeId, descendant: NodeId) -> bool {
        self.view().holds(axis, ancestor, descendant)
    }

    /// See [`ColumnsView::holds_in_range`].
    #[inline]
    pub fn holds_in_range(&self, axis: ComposedAxis, ancestor: NodeId, descendant: NodeId) -> bool {
        self.view().holds_in_range(axis, ancestor, descendant)
    }

    /// See [`ColumnsView::sweep_in_range`].
    pub fn sweep_in_range(
        &self,
        axis: ComposedAxis,
        ancestor: NodeId,
        cands: &[u32],
        out: &mut [u8],
    ) -> u64 {
        self.view().sweep_in_range(axis, ancestor, cands, out)
    }

    /// See [`ColumnsView::sweep_refine_from_ancestor`].
    pub fn sweep_refine_from_ancestor(
        &self,
        axis: ComposedAxis,
        ancestor: NodeId,
        cands: &[u32],
        alive: &mut [u8],
    ) -> u64 {
        self.view()
            .sweep_refine_from_ancestor(axis, ancestor, cands, alive)
    }

    /// See [`ColumnsView::sweep_refine_to_descendant`].
    pub fn sweep_refine_to_descendant(
        &self,
        axis: ComposedAxis,
        descendant: NodeId,
        cands: &[u32],
        alive: &mut [u8],
    ) -> u64 {
        self.view()
            .sweep_refine_to_descendant(axis, descendant, cands, alive)
    }
}

/// Borrowed structural columns: the slice triple every structural
/// predicate and batch sweep is defined on.
///
/// Obtained from an owned [`StructuralColumns`] via
/// [`StructuralColumns::view`], or assembled directly over the flat
/// arrays of a memory-mapped snapshot ([`ColumnsView::from_raw`]) — the
/// engines cannot tell the difference, which is what makes snapshot
/// attach zero-copy.
#[derive(Clone, Copy)]
pub struct ColumnsView<'a> {
    parent: &'a [u32],
    depth: &'a [u16],
    subtree_end: &'a [u32],
}

impl<'a> ColumnsView<'a> {
    /// Assembles a view over raw column slices (all indexed by raw node
    /// id, all the same length). The caller is responsible for the
    /// structural invariants — snapshot attach validates them before
    /// ever constructing a view.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree.
    pub fn from_raw(parent: &'a [u32], depth: &'a [u16], subtree_end: &'a [u32]) -> Self {
        assert_eq!(parent.len(), depth.len());
        assert_eq!(parent.len(), subtree_end.len());
        ColumnsView {
            parent,
            depth,
            subtree_end,
        }
    }

    /// Number of nodes covered (including the synthetic root).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// The raw parent column (snapshot writers flatten this to disk).
    #[inline]
    pub fn parent_slice(&self) -> &'a [u32] {
        self.parent
    }

    /// The raw depth column.
    #[inline]
    pub fn depth_slice(&self) -> &'a [u16] {
        self.depth
    }

    /// The raw subtree-extent column.
    #[inline]
    pub fn subtree_end_slice(&self) -> &'a [u32] {
        self.subtree_end
    }

    /// True when the columns cover no nodes at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of `n`, `None` for the document root.
    #[inline]
    pub fn parent_of(&self, n: NodeId) -> Option<NodeId> {
        match self.parent[n.index()] {
            NO_PARENT => None,
            p => Some(NodeId::from_index(p as usize)),
        }
    }

    /// The depth of `n`; the document root has depth 0.
    #[inline]
    pub fn depth_of(&self, n: NodeId) -> usize {
        self.depth[n.index()] as usize
    }

    /// One past the last descendant of `n`, as a raw id.
    #[inline]
    pub fn subtree_end_raw(&self, n: NodeId) -> u32 {
        self.subtree_end[n.index()]
    }

    /// True iff `ancestor` is a *proper* ancestor of `descendant`:
    /// with pre-order ids, `a < d && d < subtree_end[a]`.
    #[inline]
    pub fn contains(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        ancestor < descendant && (descendant.index() as u32) < self.subtree_end[ancestor.index()]
    }

    /// True iff `parent` is the parent of `child`.
    #[inline]
    pub fn is_parent(&self, parent: NodeId, child: NodeId) -> bool {
        self.parent[child.index()] == parent.index() as u32
    }

    /// Does the composed structural predicate hold between two
    /// arbitrary nodes? The columnar equivalent of
    /// [`ComposedAxis::holds`] on Dewey paths:
    ///
    /// * `ChildChain(1)` (pc) — one parent lookup;
    /// * `ChildChain(n)` — containment plus a depth delta;
    /// * `Descendant` (ad) — containment.
    #[inline]
    pub fn holds(&self, axis: ComposedAxis, ancestor: NodeId, descendant: NodeId) -> bool {
        match axis {
            ComposedAxis::ChildChain(1) => self.is_parent(ancestor, descendant),
            ComposedAxis::ChildChain(n) => {
                self.contains(ancestor, descendant)
                    && self.depth[descendant.index()] as u32
                        == self.depth[ancestor.index()] as u32 + n
            }
            ComposedAxis::Descendant => self.contains(ancestor, descendant),
        }
    }

    /// [`holds`](Self::holds) for a `descendant` already known to be a
    /// proper descendant of `ancestor` (the range-scan invariant of the
    /// server-op candidate loop): containment needs no re-check, so
    /// `Descendant` is free and `ChildChain(n)` is one depth compare.
    #[inline]
    pub fn holds_in_range(&self, axis: ComposedAxis, ancestor: NodeId, descendant: NodeId) -> bool {
        debug_assert!(self.contains(ancestor, descendant));
        match axis {
            ComposedAxis::ChildChain(1) => self.is_parent(ancestor, descendant),
            ComposedAxis::ChildChain(n) => {
                self.depth[descendant.index()] as u32 == self.depth[ancestor.index()] as u32 + n
            }
            ComposedAxis::Descendant => true,
        }
    }

    /// Batch form of [`holds_in_range`](Self::holds_in_range): writes
    /// `out[i] = holds_in_range(axis, ancestor, cands[i])` as 0/1
    /// bytes, one branch-free [`KERNEL_LANE`]-chunked sweep per axis
    /// shape (the axis dispatch is hoisted out of the loop). Every
    /// `cands[i]` must already lie in `ancestor`'s subtree range.
    /// Returns the lanes swept.
    pub fn sweep_in_range(
        &self,
        axis: ComposedAxis,
        ancestor: NodeId,
        cands: &[u32],
        out: &mut [u8],
    ) -> u64 {
        match axis {
            ComposedAxis::ChildChain(1) => {
                let p = ancestor.index() as u32;
                sweep_map(cands, out, |c| (self.parent[c as usize] == p) as u8)
            }
            ComposedAxis::ChildChain(n) => {
                let want = self.depth[ancestor.index()] as u32 + n;
                sweep_map(cands, out, |c| {
                    (self.depth[c as usize] as u32 == want) as u8
                })
            }
            ComposedAxis::Descendant => {
                out.fill(1);
                lanes_for(cands.len())
            }
        }
    }

    /// Batch conditional-predicate sweep, ancestor fixed: ANDs
    /// `holds(axis, ancestor, cands[i])` into `alive[i]` for every
    /// candidate (no range precondition — containment is re-checked
    /// branch-free). Returns the lanes swept.
    pub fn sweep_refine_from_ancestor(
        &self,
        axis: ComposedAxis,
        ancestor: NodeId,
        cands: &[u32],
        alive: &mut [u8],
    ) -> u64 {
        let a = ancestor.index() as u32;
        match axis {
            ComposedAxis::ChildChain(1) => {
                sweep_refine(cands, alive, |c| (self.parent[c as usize] == a) as u8)
            }
            ComposedAxis::ChildChain(n) => {
                let end = self.subtree_end[a as usize];
                let want = self.depth[a as usize] as u32 + n;
                sweep_refine(cands, alive, |c| {
                    ((a < c) & (c < end) & (self.depth[c as usize] as u32 == want)) as u8
                })
            }
            ComposedAxis::Descendant => {
                let end = self.subtree_end[a as usize];
                sweep_refine(cands, alive, |c| ((a < c) & (c < end)) as u8)
            }
        }
    }

    /// Batch conditional-predicate sweep, descendant fixed: ANDs
    /// `holds(axis, cands[i], descendant)` into `alive[i]` for every
    /// candidate. Returns the lanes swept.
    pub fn sweep_refine_to_descendant(
        &self,
        axis: ComposedAxis,
        descendant: NodeId,
        cands: &[u32],
        alive: &mut [u8],
    ) -> u64 {
        let d = descendant.index() as u32;
        match axis {
            ComposedAxis::ChildChain(1) => {
                let p = self.parent[d as usize];
                sweep_refine(cands, alive, |c| (c == p) as u8)
            }
            ComposedAxis::ChildChain(n) => {
                let d_depth = self.depth[d as usize] as u32;
                sweep_refine(cands, alive, |c| {
                    ((c < d)
                        & (d < self.subtree_end[c as usize])
                        & (d_depth == self.depth[c as usize] as u32 + n)) as u8
                })
            }
            ComposedAxis::Descendant => sweep_refine(cands, alive, |c| {
                ((c < d) & (d < self.subtree_end[c as usize])) as u8
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn columns(src: &str) -> (whirlpool_xml::Document, StructuralColumns) {
        let doc = parse_document(src).unwrap();
        let cols = StructuralColumns::build(&doc);
        (doc, cols)
    }

    #[test]
    fn parent_and_depth_match_document() {
        let (doc, cols) = columns("<a><b><c/><d/></b><e/></a>");
        for id in doc.all_nodes() {
            assert_eq!(cols.parent_of(id), doc.parent(id), "{id:?}");
            assert_eq!(cols.depth_of(id), doc.depth(id), "{id:?}");
        }
        assert_eq!(cols.parent_of(doc.document_root()), None);
    }

    #[test]
    fn containment_matches_dewey() {
        let (doc, cols) = columns("<a><b><c/><d/></b><e/></a><a><b/></a>");
        for x in doc.all_nodes() {
            for y in doc.all_nodes() {
                assert_eq!(cols.contains(x, y), doc.is_ancestor(x, y), "{x:?} {y:?}");
                assert_eq!(cols.is_parent(x, y), doc.is_parent(x, y), "{x:?} {y:?}");
            }
        }
    }

    #[test]
    fn lane_sweeps_match_scalar_predicates() {
        // Deep + wide enough to cross the KERNEL_LANE chunk boundary.
        let mut src = String::from("<a><b>");
        for _ in 0..(3 * KERNEL_LANE) {
            src.push_str("<c><d/></c>");
        }
        src.push_str("</b><c/></a>");
        let (doc, cols) = columns(&src);
        let axes = [
            ComposedAxis::ChildChain(1),
            ComposedAxis::ChildChain(2),
            ComposedAxis::ChildChain(3),
            ComposedAxis::Descendant,
        ];
        for fixed in doc.all_nodes() {
            // In-range sweep: candidates are `fixed`'s proper subtree.
            let lo = fixed.index() as u32 + 1;
            let hi = cols.subtree_end_raw(fixed);
            let in_range: Vec<u32> = (lo..hi).collect();
            let every: Vec<u32> = doc.all_nodes().map(|n| n.index() as u32).collect();
            for axis in axes {
                let mut mask = vec![0u8; in_range.len()];
                let lanes = cols.sweep_in_range(axis, fixed, &in_range, &mut mask);
                assert_eq!(lanes, lanes_for(in_range.len()));
                for (i, &c) in in_range.iter().enumerate() {
                    let cand = NodeId::from_index(c as usize);
                    assert_eq!(
                        mask[i] != 0,
                        cols.holds_in_range(axis, fixed, cand),
                        "in-range {axis:?} {fixed:?} {cand:?}"
                    );
                }

                let mut alive = vec![1u8; every.len()];
                cols.sweep_refine_from_ancestor(axis, fixed, &every, &mut alive);
                for (i, &c) in every.iter().enumerate() {
                    let cand = NodeId::from_index(c as usize);
                    assert_eq!(
                        alive[i] != 0,
                        cols.holds(axis, fixed, cand),
                        "from-ancestor {axis:?} {fixed:?} {cand:?}"
                    );
                }

                let mut alive = vec![1u8; every.len()];
                cols.sweep_refine_to_descendant(axis, fixed, &every, &mut alive);
                for (i, &c) in every.iter().enumerate() {
                    let cand = NodeId::from_index(c as usize);
                    assert_eq!(
                        alive[i] != 0,
                        cols.holds(axis, cand, fixed),
                        "to-descendant {axis:?} {cand:?} {fixed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn refine_sweeps_only_clear_bits() {
        let (doc, cols) = columns("<a><b><c/></b><b/></a>");
        let every: Vec<u32> = doc.all_nodes().map(|n| n.index() as u32).collect();
        let root = doc.all_nodes().next().unwrap();
        let mut alive = vec![0u8; every.len()];
        cols.sweep_refine_from_ancestor(ComposedAxis::Descendant, root, &every, &mut alive);
        assert!(alive.iter().all(|&b| b == 0), "refine set a dead bit");
        assert_eq!(mask_count(&alive), 0);
    }

    #[test]
    fn composed_axes_match_dewey_holds() {
        let (doc, cols) = columns("<a><b><c><d/></c></b><c/></a>");
        for axis in [
            ComposedAxis::ChildChain(1),
            ComposedAxis::ChildChain(2),
            ComposedAxis::ChildChain(3),
            ComposedAxis::Descendant,
        ] {
            for x in doc.all_nodes() {
                for y in doc.all_nodes() {
                    let by_dewey = axis.holds(doc.dewey(x), doc.dewey(y));
                    assert_eq!(cols.holds(axis, x, y), by_dewey, "{axis:?} {x:?} {y:?}");
                    if cols.contains(x, y) {
                        assert_eq!(
                            cols.holds_in_range(axis, x, y),
                            by_dewey,
                            "in-range {axis:?} {x:?} {y:?}"
                        );
                    }
                }
            }
        }
    }
}
