//! Bounded strong-dataguide path synopsis.
//!
//! [`ShardSynopsis`](crate::ShardSynopsis) prunes a shard only when a
//! query tag is *entirely absent* from it, which on homogeneous corpora
//! (every shard carries every tag) prunes nothing. A [`PathSynopsis`]
//! records the distinct **root-to-node tag paths** of a shard — a
//! strong dataguide in the Lore sense, annotated with per-path node
//! counts and the maximum same-path sibling multiplicity — so the
//! collection driver can ask the sharper question: *can this query
//! node's root-to-node pattern path bind anything in this shard at
//! all?* A shard whose tags all exist, but never in the arrangement the
//! query requires, is pruned before it is even attached.
//!
//! The synopsis is bounded on two axes so it stays cheap to store and
//! peek: paths deeper than [`PATH_DEPTH_CAP`] and beyond the first
//! [`PATH_COUNT_CAP`] distinct paths are dropped and the synopsis is
//! marked *truncated*. A truncated synopsis makes no negative claims —
//! [`PathSynopsis::is_definitive`] is false and callers must fall back
//! to tag-count ceilings — so the bounds can never turn into unsound
//! pruning (see DESIGN.md §12).

use std::collections::HashMap;
use whirlpool_xml::Document;

/// Maximum stored path depth (document element = depth 1). Deeper nodes
/// mark the synopsis truncated.
pub const PATH_DEPTH_CAP: usize = 16;

/// Maximum number of distinct stored paths. Further paths mark the
/// synopsis truncated.
pub const PATH_COUNT_CAP: usize = 1024;

/// How one query path step relates to its predecessor: direct child or
/// any-depth descendant. Mirrors the pattern crate's `Axis` without
/// depending on it (the index crate sits below the pattern crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAxis {
    /// The step's tag must appear exactly one level below the previous
    /// match (or at the document element for the first step).
    Child,
    /// The step's tag may appear any number of levels below.
    Descendant,
}

/// One distinct root-to-node tag path with its annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    /// Tag ids (into [`PathSynopsis::tag_names`]) from the document
    /// element down to the node.
    pub steps: Vec<u32>,
    /// Nodes in the shard carrying exactly this path.
    pub count: u64,
    /// Maximum number of same-path siblings under one parent — an upper
    /// bound on any per-parent term frequency along this path.
    pub max_tf: u64,
}

/// A bounded strong dataguide: every distinct root-to-node tag path of
/// a shard (up to the depth/size caps), with per-path counts and the
/// maximum same-parent multiplicity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathSynopsis {
    /// Local tag interner: ids in [`PathEntry::steps`] index this list.
    tags: Vec<Box<str>>,
    /// Distinct paths, sorted by their step sequences.
    paths: Vec<PathEntry>,
    depth_cap: u32,
    truncated: bool,
}

impl PathSynopsis {
    /// Builds the synopsis in one pre-order pass over `doc` using the
    /// default caps.
    pub fn build(doc: &Document) -> PathSynopsis {
        PathSynopsis::build_capped(doc, PATH_DEPTH_CAP, PATH_COUNT_CAP)
    }

    /// [`build`](PathSynopsis::build) with explicit caps (tests shrink
    /// them to exercise truncation).
    pub fn build_capped(doc: &Document, depth_cap: usize, count_cap: usize) -> PathSynopsis {
        let mut interner: HashMap<Box<str>, u32> = HashMap::new();
        let mut tags: Vec<Box<str>> = Vec::new();
        let mut table: HashMap<Vec<u32>, (u64, u64)> = HashMap::new();
        let mut truncated = false;

        // Pre-order walk carrying the open ancestor chain; NodeIds are
        // pre-order, so popping until the top of the stack is the
        // node's parent reconstructs each path without recursion.
        let mut stack: Vec<(whirlpool_xml::NodeId, u32)> = Vec::new(); // (node, tag id)
                                                                       // sibling_counts[i] counts tags among the children of
                                                                       // stack[i-1] (of the document root for i = 0) seen so far.
        let mut sibling_counts: Vec<HashMap<u32, u64>> = vec![HashMap::new()];
        for n in doc.elements() {
            let parent = doc.parent(n).expect("elements have parents");
            while let Some(&(pid, _)) = stack.last() {
                if pid == parent {
                    break;
                }
                stack.pop();
                sibling_counts.pop();
            }
            let tag_id = {
                let name = doc.tag_str(n);
                match interner.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = tags.len() as u32;
                        interner.insert(Box::from(name), id);
                        tags.push(Box::from(name));
                        id
                    }
                }
            };
            let depth = stack.len() + 1;
            // Same-path sibling multiplicity under the current parent.
            let tf = {
                let counts = sibling_counts.last_mut().expect("root level exists");
                let c = counts.entry(tag_id).or_insert(0);
                *c += 1;
                *c
            };
            if depth > depth_cap {
                truncated = true;
            } else {
                let path: Vec<u32> = stack
                    .iter()
                    .map(|&(_, t)| t)
                    .chain(std::iter::once(tag_id))
                    .collect();
                if let Some(entry) = table.get_mut(&path) {
                    entry.0 += 1;
                    entry.1 = entry.1.max(tf);
                } else if table.len() < count_cap {
                    table.insert(path, (1, tf));
                } else {
                    truncated = true;
                }
            }
            stack.push((n, tag_id));
            sibling_counts.push(HashMap::new());
        }

        let mut paths: Vec<PathEntry> = table
            .into_iter()
            .map(|(steps, (count, max_tf))| PathEntry {
                steps,
                count,
                max_tf,
            })
            .collect();
        paths.sort_by(|a, b| a.steps.cmp(&b.steps));
        PathSynopsis {
            tags,
            paths,
            depth_cap: depth_cap as u32,
            truncated,
        }
    }

    /// Reassembles a synopsis from stored parts (the snapshot-attach
    /// path). `tags` ids in `paths` must index `tags`; callers validate
    /// before constructing.
    pub fn from_parts(
        tags: Vec<Box<str>>,
        mut paths: Vec<PathEntry>,
        depth_cap: u32,
        truncated: bool,
    ) -> PathSynopsis {
        paths.sort_by(|a, b| a.steps.cmp(&b.steps));
        PathSynopsis {
            tags,
            paths,
            depth_cap,
            truncated,
        }
    }

    /// Local tag table (ids in [`PathEntry::steps`] index this).
    pub fn tag_names(&self) -> &[Box<str>] {
        &self.tags
    }

    /// The stored paths, sorted by step sequence.
    pub fn entries(&self) -> &[PathEntry] {
        &self.paths
    }

    /// Number of distinct stored paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// No stored paths?
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The depth cap this synopsis was built with.
    pub fn depth_cap(&self) -> u32 {
        self.depth_cap
    }

    /// Did the document exceed a cap? A truncated synopsis must not be
    /// used to rule anything out.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Can the synopsis be trusted for *negative* answers ("no node
    /// matches this path")? False when truncated.
    pub fn is_definitive(&self) -> bool {
        !self.truncated
    }

    /// Renders one entry's path as `/a/b/c` for display.
    pub fn render(&self, entry: &PathEntry) -> String {
        let mut s = String::new();
        for &t in &entry.steps {
            s.push('/');
            s.push_str(&self.tags[t as usize]);
        }
        s
    }

    /// Does any stored path match the query path `steps` (a
    /// root-to-node chain of `(axis, tag)` steps, `"*"` = wildcard),
    /// anchored at both ends? The first step's axis relates to the
    /// document root: `Child` pins it to the document element.
    ///
    /// This is the *reachability* question behind path-level ceilings:
    /// `false` (on a [definitive](PathSynopsis::is_definitive) synopsis)
    /// proves no node in the shard can bind the query node. Callers
    /// must treat `false` on a truncated synopsis as "unknown".
    pub fn matches_query_path(&self, steps: &[(PathAxis, &str)]) -> bool {
        if steps.is_empty() {
            return false;
        }
        // A query tag absent from every stored path can never match
        // (wildcards aside) — cheap pre-filter.
        let resolved: Vec<Option<u32>> = steps
            .iter()
            .map(|&(_, tag)| {
                if tag == "*" {
                    None // wildcard: matches any tag
                } else {
                    self.tags.iter().position(|t| &**t == tag).map(|i| i as u32)
                }
            })
            .collect();
        for (r, &(_, tag)) in resolved.iter().zip(steps) {
            if tag != "*" && r.is_none() {
                return false;
            }
        }
        self.paths
            .iter()
            .filter(|p| p.count > 0)
            .any(|p| path_matches(&p.steps, steps, &resolved))
    }

    /// Total node count over stored paths whose full path matches the
    /// query path — an upper bound on how many nodes can bind the query
    /// node (on a definitive synopsis).
    pub fn matching_count(&self, steps: &[(PathAxis, &str)]) -> u64 {
        let resolved: Vec<Option<u32>> = steps
            .iter()
            .map(|&(_, tag)| {
                if tag == "*" {
                    None
                } else {
                    self.tags.iter().position(|t| &**t == tag).map(|i| i as u32)
                }
            })
            .collect();
        self.paths
            .iter()
            .filter(|p| path_matches(&p.steps, steps, &resolved))
            .map(|p| p.count)
            .sum()
    }
}

/// Anchored regex-style match of a query path against one stored path.
/// `resolved[i]` is the stored-tag id of `steps[i]`'s tag (`None` =
/// wildcard). Child consumes exactly the next position; Descendant
/// skips zero or more.
fn path_matches(path: &[u32], steps: &[(PathAxis, &str)], resolved: &[Option<u32>]) -> bool {
    if steps.is_empty() || path.is_empty() {
        return false;
    }
    // frontier[j] = true when the first `i` steps can end at stored
    // position j-1 (j = 0 is the virtual pre-root position).
    let l = path.len();
    let mut frontier = vec![false; l + 1];
    frontier[0] = true;
    for (i, &(axis, _)) in steps.iter().enumerate() {
        let want = resolved[i];
        let mut next = vec![false; l + 1];
        for j in 0..l {
            let tag_ok = match want {
                Some(w) => path[j] == w,
                None => true,
            };
            if !tag_ok {
                continue;
            }
            let reach = match axis {
                PathAxis::Child => frontier[j],
                PathAxis::Descendant => frontier[..=j].iter().any(|&b| b),
            };
            if reach {
                next[j + 1] = true;
            }
        }
        frontier = next;
        if !frontier.iter().any(|&b| b) {
            return false;
        }
    }
    // Anchored at the end: the last step must land on the path's last
    // position (stored paths are exact root-to-node chains).
    frontier[l]
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn syn(src: &str) -> PathSynopsis {
        PathSynopsis::build(&parse_document(src).unwrap())
    }

    #[test]
    fn collects_distinct_paths_with_counts() {
        let s = syn("<shelf><book><title>a</title></book><book><title>b</title>\
                     <title>c</title></book><cd><title>x</title></cd></shelf>");
        assert!(s.is_definitive());
        assert_eq!(s.len(), 5); // /shelf, /shelf/book, /shelf/book/title, /shelf/cd, /shelf/cd/title
        let book_title: Vec<_> = s
            .entries()
            .iter()
            .filter(|e| s.render(e) == "/shelf/book/title")
            .collect();
        assert_eq!(book_title.len(), 1);
        assert_eq!(book_title[0].count, 3);
        assert_eq!(book_title[0].max_tf, 2, "two titles under one book");
    }

    #[test]
    fn matches_child_and_descendant_axes() {
        let s = syn("<site><regions><europe><item><name>x</name></item></europe></regions></site>");
        use PathAxis::*;
        // //item
        assert!(s.matches_query_path(&[(Descendant, "item")]));
        // /site/regions
        assert!(s.matches_query_path(&[(Child, "site"), (Child, "regions")]));
        // //item/name
        assert!(s.matches_query_path(&[(Descendant, "item"), (Child, "name")]));
        // //regions//name
        assert!(s.matches_query_path(&[(Descendant, "regions"), (Descendant, "name")]));
        // /item — anchored to the document element, which is <site>.
        assert!(!s.matches_query_path(&[(Child, "item")]));
        // //item/regions — the arrangement never occurs.
        assert!(!s.matches_query_path(&[(Descendant, "item"), (Child, "regions")]));
        // //name/item — child below a leaf.
        assert!(!s.matches_query_path(&[(Descendant, "name"), (Child, "item")]));
        // Tag absent entirely.
        assert!(!s.matches_query_path(&[(Descendant, "nosuch")]));
    }

    #[test]
    fn wildcards_match_any_tag() {
        let s = syn("<a><b><c/></b></a>");
        use PathAxis::*;
        assert!(s.matches_query_path(&[(Descendant, "*")]));
        assert!(s.matches_query_path(&[(Child, "*"), (Child, "*"), (Child, "*")]));
        assert!(!s.matches_query_path(&[(Child, "*"), (Child, "*"), (Child, "*"), (Child, "*")]));
        assert!(s.matches_query_path(&[(Descendant, "b"), (Child, "*")]));
    }

    #[test]
    fn tag_presence_is_not_path_reachability() {
        // Both shards hold the tags {shelf, book, isbn}; only one holds
        // the arrangement book-with-isbn-child. This is exactly the
        // homogeneous-corpus case tag synopses cannot prune.
        let with = syn("<shelf><book><isbn>1</isbn></book></shelf>");
        let without = syn("<shelf><book/><archive><isbn>9</isbn></archive></shelf>");
        use PathAxis::*;
        let q = [(Descendant, "book"), (Child, "isbn")];
        assert!(with.matches_query_path(&q));
        assert!(!without.matches_query_path(&q));
    }

    #[test]
    fn depth_cap_truncates() {
        let doc = parse_document("<a><b><c><d><e/></d></c></b></a>").unwrap();
        let s = PathSynopsis::build_capped(&doc, 3, PATH_COUNT_CAP);
        assert!(s.truncated());
        assert!(!s.is_definitive());
        assert_eq!(s.len(), 3, "paths above the cap are kept");
        let full = PathSynopsis::build(&doc);
        assert!(full.is_definitive());
        assert_eq!(full.len(), 5);
    }

    #[test]
    fn count_cap_truncates() {
        let mut src = String::from("<r>");
        for i in 0..20 {
            src.push_str(&format!("<t{i}/>"));
        }
        src.push_str("</r>");
        let doc = parse_document(&src).unwrap();
        let s = PathSynopsis::build_capped(&doc, PATH_DEPTH_CAP, 8);
        assert!(s.truncated());
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn matching_count_sums_matching_paths() {
        let s = syn(
            "<shelf><book><title>a</title></book><book><title>b</title></book>\
                     <cd><title>x</title></cd></shelf>",
        );
        use PathAxis::*;
        assert_eq!(s.matching_count(&[(Descendant, "title")]), 3);
        assert_eq!(
            s.matching_count(&[(Descendant, "book"), (Child, "title")]),
            2
        );
        assert_eq!(s.matching_count(&[(Descendant, "book")]), 2);
    }

    #[test]
    fn round_trips_through_parts() {
        let s = syn("<shelf><book><title>a</title></book></shelf>");
        let rebuilt = PathSynopsis::from_parts(
            s.tag_names().to_vec(),
            s.entries().to_vec(),
            s.depth_cap(),
            s.truncated(),
        );
        assert_eq!(s, rebuilt);
    }
}
