//! Sampled per-server selectivity statistics.
//!
//! The paper's size-based routing strategy
//! (`min_alive_partial_matches`, §6.1.4) needs "estimates of the number
//! of extensions computed by the server for a partial match", and the
//! score-based strategies need estimates of the score a server will
//! contribute. Both reduce to two structural quantities per server,
//! estimated here by sampling root candidates:
//!
//! * the mean number of candidate nodes (the relaxed universe: any
//!   descendant of the root match with the server's tag/value), and
//! * the fraction of those candidates that satisfy the server's *exact*
//!   root predicate (and hence would score at the exact level).

use crate::tagindex::TagIndex;
use crate::view::{DocView, TagIndexView};
use whirlpool_pattern::{ServerSpec, ValueTest};
use whirlpool_xml::{Document, NodeId};

/// Selectivity estimates for one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSelectivity {
    /// Mean number of candidates per root match (outer-join fanout;
    /// never below 1.0 in effect because a server with zero candidates
    /// still emits one null-extended match).
    pub mean_candidates: f64,
    /// Fraction of candidates satisfying the exact root predicate.
    pub exact_fraction: f64,
    /// Fraction of sampled root matches with *no* candidates at all
    /// (these take the leaf-deletion path).
    pub empty_fraction: f64,
}

impl ServerSelectivity {
    /// Conservative default when no sample is available (no root
    /// candidates in the document).
    pub fn unknown() -> Self {
        ServerSelectivity {
            mean_candidates: 1.0,
            exact_fraction: 1.0,
            empty_fraction: 0.0,
        }
    }
}

/// Estimates selectivity for each server by sampling up to
/// `sample_limit` root candidates (evenly spaced over the candidate
/// list, so the sample spans the document).
pub fn estimate_selectivity(
    doc: &Document,
    index: &TagIndex,
    roots: &[NodeId],
    servers: &[ServerSpec],
    sample_limit: usize,
) -> Vec<ServerSelectivity> {
    estimate_selectivity_view(
        DocView::from(doc),
        TagIndexView::from(index),
        roots,
        servers,
        sample_limit,
    )
}

/// [`estimate_selectivity`] over borrowed views — the entry point for
/// snapshot-backed (mapped) state. Exact-predicate checks resolve
/// through the structural columns rather than Dewey paths, so the
/// estimate never touches the node arena.
pub fn estimate_selectivity_view(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    roots: &[NodeId],
    servers: &[ServerSpec],
    sample_limit: usize,
) -> Vec<ServerSelectivity> {
    if roots.is_empty() || sample_limit == 0 {
        return servers
            .iter()
            .map(|_| ServerSelectivity::unknown())
            .collect();
    }
    let step = (roots.len() / sample_limit).max(1);
    let sample: Vec<NodeId> = roots
        .iter()
        .copied()
        .step_by(step)
        .take(sample_limit)
        .collect();

    servers
        .iter()
        .map(|server| {
            let wildcard = server.tag == whirlpool_pattern::WILDCARD;
            let tag = doc.tag_id(&server.tag);
            if !wildcard && tag.is_none() {
                // Tag absent from the document: every root match takes
                // the null path.
                return ServerSelectivity {
                    mean_candidates: 0.0,
                    exact_fraction: 0.0,
                    empty_fraction: 1.0,
                };
            }
            let mut total = 0usize;
            let mut exact = 0usize;
            let mut empty = 0usize;
            let mut wildcard_buf = Vec::new();
            for &root in &sample {
                let candidates: &[NodeId] = if wildcard {
                    wildcard_buf.clear();
                    wildcard_buf.extend(index.descendants_any(root));
                    &wildcard_buf
                } else {
                    let tag = tag.expect("checked above");
                    match &server.value {
                        Some(ValueTest::Eq(v)) => index.descendants_with_tag_value(root, tag, v),
                        _ => index.descendants_with_tag(root, tag),
                    }
                };
                // `Contains` and attribute filtering are approximated by
                // the unfiltered count; it only loosens the estimate.
                if candidates.is_empty() {
                    empty += 1;
                }
                total += candidates.len();
                let columns = index.columns();
                exact += candidates
                    .iter()
                    .filter(|&&c| columns.holds(server.root_exact, root, c))
                    .count();
            }
            let n = sample.len() as f64;
            ServerSelectivity {
                mean_candidates: total as f64 / n,
                exact_fraction: if total == 0 {
                    0.0
                } else {
                    exact as f64 / total as f64
                },
                empty_fraction: empty as f64 / n,
            }
        })
        .collect()
}

/// A pre-admission cost estimate for one query over one document,
/// derived from the same sampled [`ServerSelectivity`] statistics the
/// adaptive router uses. Serving layers compare
/// [`estimated_server_ops`](QueryCostEstimate::estimated_server_ops)
/// against their capacity before committing an engine to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCostEstimate {
    /// Root candidates seeding the evaluation.
    pub root_matches: f64,
    /// Expected server operations (partial matches processed), summed
    /// over a best-case (`min_alive`, ascending-fanout) routing order
    /// with no pruning — an upper-bound-flavored planning estimate,
    /// not a promise.
    pub estimated_server_ops: f64,
    /// Expected partial matches created, root matches included.
    pub estimated_partials: f64,
}

/// Estimates the evaluation cost of a query from its root-candidate
/// count and per-server selectivity sample (relaxed, outer-join
/// semantics: a server with no candidate still emits one null
/// extension, so its effective fanout never drops below its
/// empty fraction's worth of null paths).
///
/// The model walks servers in ascending effective fanout — the order
/// `min_alive` routing converges to — charging one operation per alive
/// match at each server and multiplying the alive population by the
/// fanout. Pruning makes real runs cheaper; admission control wants
/// the pessimistic figure.
pub fn estimate_query_cost(
    root_matches: usize,
    selectivity: &[ServerSelectivity],
) -> QueryCostEstimate {
    let roots = root_matches as f64;
    let mut fanouts: Vec<f64> = selectivity
        .iter()
        .map(|s| (s.mean_candidates + s.empty_fraction).max(f64::MIN_POSITIVE))
        .collect();
    fanouts.sort_unstable_by(|a, b| a.partial_cmp(b).expect("fanouts are finite"));
    let mut alive = roots;
    let mut ops = 0.0;
    let mut partials = roots;
    for fanout in fanouts {
        ops += alive;
        alive *= fanout;
        partials += alive;
    }
    QueryCostEstimate {
        root_matches: roots,
        estimated_server_ops: ops,
        estimated_partials: partials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::{compile_servers, parse_pattern};
    use whirlpool_xml::parse_document;

    fn setup(src: &str, query: &str) -> (Document, TagIndex, Vec<NodeId>, Vec<ServerSpec>) {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(query).unwrap();
        let servers = compile_servers(&pattern);
        let root_tag = doc.tag_id(&pattern.node(pattern.root()).tag).unwrap();
        let roots = index.nodes_with_tag(root_tag).to_vec();
        (doc, index, roots, servers)
    }

    #[test]
    fn counts_exact_vs_relaxed() {
        // Two items: one with a direct parlist child of description, one
        // with a nested (descendant-only) parlist.
        let src = "<site>\
            <item><description><parlist/></description></item>\
            <item><description><x><parlist/></x></description></item>\
            </site>";
        let (doc, index, roots, servers) = setup(src, "//item[./description/parlist]");
        let sel = estimate_selectivity(&doc, &index, &roots, &servers, 100);
        // servers: description (q1), parlist (q2).
        let parlist = &sel[1];
        assert_eq!(parlist.mean_candidates, 1.0);
        // One of the two parlists satisfies the exact item/*/parlist
        // (ChildChain(2)) predicate.
        assert!((parlist.exact_fraction - 0.5).abs() < 1e-9);
        assert_eq!(parlist.empty_fraction, 0.0);
    }

    #[test]
    fn missing_tag_reports_all_empty() {
        let (doc, index, roots, servers) =
            setup("<site><item><name/></item></site>", "//item[./nosuchtag]");
        let sel = estimate_selectivity(&doc, &index, &roots, &servers, 10);
        assert_eq!(sel[0].mean_candidates, 0.0);
        assert_eq!(sel[0].empty_fraction, 1.0);
    }

    #[test]
    fn empty_fraction_counts_null_paths() {
        let src = "<site>\
            <item><name/></item>\
            <item/>\
            <item><name/></item>\
            <item/>\
            </site>";
        let (doc, index, roots, servers) = setup(src, "//item[./name]");
        let sel = estimate_selectivity(&doc, &index, &roots, &servers, 10);
        assert!((sel[0].empty_fraction - 0.5).abs() < 1e-9);
        assert!((sel[0].mean_candidates - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_roots_gives_unknown() {
        let doc = parse_document("<site><other/></site>").unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//item[./name]").unwrap();
        let servers = compile_servers(&pattern);
        let sel = estimate_selectivity(&doc, &index, &[], &servers, 10);
        assert_eq!(sel[0], ServerSelectivity::unknown());
    }

    #[test]
    fn sampling_caps_work() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(200));
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(whirlpool_xmark::queries::Q2).unwrap();
        let servers = compile_servers(&pattern);
        let roots = index.nodes_with_tag(doc.tag_id("item").unwrap()).to_vec();
        let sel_full = estimate_selectivity(&doc, &index, &roots, &servers, usize::MAX);
        let sel_sampled = estimate_selectivity(&doc, &index, &roots, &servers, 50);
        // The sampled estimate should be in the neighborhood of the full
        // one (same order of magnitude).
        for (f, s) in sel_full.iter().zip(&sel_sampled) {
            if f.mean_candidates > 0.0 {
                let ratio = s.mean_candidates / f.mean_candidates;
                assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn query_cost_walks_servers_in_ascending_fanout() {
        let sel = vec![
            ServerSelectivity {
                mean_candidates: 4.0,
                exact_fraction: 1.0,
                empty_fraction: 0.0,
            },
            ServerSelectivity {
                mean_candidates: 2.0,
                exact_fraction: 1.0,
                empty_fraction: 0.0,
            },
        ];
        let est = estimate_query_cost(10, &sel);
        // Ascending order: 10 ops at fanout 2, then 20 ops at fanout 4.
        assert_eq!(est.root_matches, 10.0);
        assert!((est.estimated_server_ops - 30.0).abs() < 1e-9);
        assert!((est.estimated_partials - (10.0 + 20.0 + 80.0)).abs() < 1e-9);
    }

    #[test]
    fn query_cost_keeps_null_paths_alive() {
        // A server whose tag is absent everywhere (fanout = its null
        // paths) must not zero out the downstream population.
        let sel = vec![
            ServerSelectivity {
                mean_candidates: 0.0,
                exact_fraction: 0.0,
                empty_fraction: 1.0,
            },
            ServerSelectivity {
                mean_candidates: 3.0,
                exact_fraction: 0.5,
                empty_fraction: 0.0,
            },
        ];
        let est = estimate_query_cost(8, &sel);
        // 8 ops at the empty server (fanout 1.0), then 8 at fanout 3.
        assert!((est.estimated_server_ops - 16.0).abs() < 1e-9);
    }

    #[test]
    fn query_cost_of_an_empty_document_is_zero() {
        let est = estimate_query_cost(0, &[ServerSelectivity::unknown()]);
        assert_eq!(est.estimated_server_ops, 0.0);
        assert_eq!(est.estimated_partials, 0.0);
    }

    #[test]
    fn query_cost_tracks_real_workload_order_of_magnitude() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(100));
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(whirlpool_xmark::queries::Q2).unwrap();
        let servers = compile_servers(&pattern);
        let roots = index.nodes_with_tag(doc.tag_id("item").unwrap()).to_vec();
        let sel = estimate_selectivity(&doc, &index, &roots, &servers, 32);
        let est = estimate_query_cost(roots.len(), &sel);
        // A no-pruning evaluation must at least touch every root once
        // per server in the worst case; the estimate should land in a
        // sane band rather than collapse to zero or explode.
        assert!(est.estimated_server_ops >= roots.len() as f64);
        assert!(est.estimated_server_ops.is_finite());
    }

    #[test]
    fn value_constrained_servers_use_value_postings() {
        let src = "<shelf>\
            <book><title>wodehouse</title></book>\
            <book><title>other</title></book>\
            </shelf>";
        let (doc, index, roots, servers) = setup(src, "//book[./title = 'wodehouse']");
        let sel = estimate_selectivity(&doc, &index, &roots, &servers, 10);
        assert!((sel[0].mean_candidates - 0.5).abs() < 1e-9);
        assert!((sel[0].empty_fraction - 0.5).abs() < 1e-9);
    }
}
