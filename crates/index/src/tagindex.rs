//! Tag and tag+value postings with subtree range scans.

use crate::columns::StructuralColumns;
use std::collections::HashMap;
use whirlpool_xml::{Document, NodeId, TagId};

/// Postings for every tag (and every `(tag, text value)` pair) of a
/// document, in document order, plus subtree extents for range scans.
///
/// Because [`NodeId`]s are assigned in pre-order, the descendants of a
/// node `n` are exactly the ids in the half-open interval
/// `(n, subtree_end(n))`; intersecting that interval with a sorted
/// posting list is two binary searches.
pub struct TagIndex {
    /// `postings[tag]` = node ids with that tag, ascending.
    postings: Vec<Vec<NodeId>>,
    /// Per-tag, per-direct-text postings for value-equality predicates.
    /// Nested (rather than keyed by `(TagId, Box<str>)`) so lookups can
    /// borrow the query string instead of boxing it.
    value_postings: HashMap<TagId, HashMap<Box<str>, Vec<NodeId>>>,
    /// Flat parent/depth/subtree-extent columns, built alongside the
    /// postings. The `subtree_end` range scans below read its extent
    /// column.
    columns: StructuralColumns,
}

impl TagIndex {
    /// Builds the index in two passes over the document: one forward
    /// pass filling the postings and the parent/depth columns, one
    /// reverse pass over raw node ids for the subtree extents (both
    /// inside [`StructuralColumns::build`]; no intermediate id vector
    /// is materialized).
    pub fn build(doc: &Document) -> Self {
        let mut postings: Vec<Vec<NodeId>> = vec![Vec::new(); doc.tags().len()];
        let mut value_postings: HashMap<TagId, HashMap<Box<str>, Vec<NodeId>>> = HashMap::new();
        for id in doc.elements() {
            let node = doc.node(id);
            postings[node.tag.index()].push(id);
            if let Some(text) = &node.text {
                value_postings
                    .entry(node.tag)
                    .or_default()
                    .entry(text.clone())
                    .or_default()
                    .push(id);
            }
        }

        TagIndex {
            postings,
            value_postings,
            columns: StructuralColumns::build(doc),
        }
    }

    /// The document's flat structural columns (parent, depth, subtree
    /// extents) — the O(1) predicate tables behind the server-op
    /// kernels.
    pub fn columns(&self) -> &StructuralColumns {
        &self.columns
    }

    /// This index as a borrowed [`TagIndexView`](crate::TagIndexView) —
    /// the backing-agnostic surface the engines evaluate against.
    pub fn view(&self) -> crate::TagIndexView<'_> {
        crate::TagIndexView::Owned(self)
    }

    /// Iterates every `(tag, value, ids)` value-posting group, tags
    /// ascending and values ascending within a tag — the order the
    /// snapshot writer flattens them in (binary-searchable when mapped
    /// back).
    pub fn value_posting_groups(&self) -> Vec<(TagId, &str, &[NodeId])> {
        let mut groups: Vec<(TagId, &str, &[NodeId])> = self
            .value_postings
            .iter()
            .flat_map(|(&tag, by_value)| {
                by_value
                    .iter()
                    .map(move |(value, ids)| (tag, value.as_ref(), ids.as_slice()))
            })
            .collect();
        groups.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        groups
    }

    /// All nodes with `tag`, in document order.
    pub fn nodes_with_tag(&self, tag: TagId) -> &[NodeId] {
        self.postings.get(tag.index()).map_or(&[], Vec::as_slice)
    }

    /// All nodes with `tag` whose direct text equals `value`.
    pub fn nodes_with_tag_value(&self, tag: TagId, value: &str) -> &[NodeId] {
        self.value_postings
            .get(&tag)
            .and_then(|by_value| by_value.get(value))
            .map_or(&[], Vec::as_slice)
    }

    /// One past the last descendant of `node` in id order.
    pub fn subtree_end(&self, node: NodeId) -> NodeId {
        NodeId::from_index(self.extent(node) as usize)
    }

    /// Raw subtree extent of `node` from the shared column.
    #[inline]
    fn extent(&self, node: NodeId) -> u32 {
        self.columns.subtree_end_column()[node.index()]
    }

    /// All proper descendants of `ancestor` (any tag), as the
    /// contiguous node-id range `(ancestor, subtree_end)`. Wildcard
    /// node tests scan this directly.
    pub fn descendants_any(&self, ancestor: NodeId) -> impl Iterator<Item = NodeId> {
        let start = ancestor.index() as u32 + 1;
        let end = self.extent(ancestor);
        (start..end).map(|i| NodeId::from_index(i as usize))
    }

    /// Number of proper descendants of `ancestor`.
    pub fn count_descendants_any(&self, ancestor: NodeId) -> usize {
        (self.extent(ancestor) as usize).saturating_sub(ancestor.index() + 1)
    }

    /// Nodes with `tag` that are proper descendants of `ancestor`
    /// — a contiguous slice of the tag's postings.
    pub fn descendants_with_tag(&self, ancestor: NodeId, tag: TagId) -> &[NodeId] {
        let list = self.nodes_with_tag(tag);
        let lo = list.partition_point(|&n| n <= ancestor);
        let end = self.extent(ancestor);
        let hi = list.partition_point(|&n| (n.index() as u32) < end);
        &list[lo..hi]
    }

    /// Nodes with `tag` and direct text `value` that are proper
    /// descendants of `ancestor`.
    pub fn descendants_with_tag_value(
        &self,
        ancestor: NodeId,
        tag: TagId,
        value: &str,
    ) -> &[NodeId] {
        let list = self.nodes_with_tag_value(tag, value);
        let lo = list.partition_point(|&n| n <= ancestor);
        let end = self.extent(ancestor);
        let hi = list.partition_point(|&n| (n.index() as u32) < end);
        &list[lo..hi]
    }

    /// Number of `tag` descendants of `ancestor` (no slice materialized
    /// beyond the two binary searches).
    pub fn count_descendants_with_tag(&self, ancestor: NodeId, tag: TagId) -> usize {
        self.descendants_with_tag(ancestor, tag).len()
    }

    /// A [`RangeCursor`](crate::RangeCursor) over the postings of `tag`,
    /// for amortized merge passes over many ancestors.
    pub fn tag_cursor(&self, tag: TagId) -> crate::RangeCursor<'_> {
        crate::RangeCursor::new(self.nodes_with_tag(tag))
    }

    /// A [`RangeCursor`](crate::RangeCursor) over the `(tag, value)`
    /// postings.
    pub fn tag_value_cursor(&self, tag: TagId, value: &str) -> crate::RangeCursor<'_> {
        crate::RangeCursor::new(self.nodes_with_tag_value(tag, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn doc_and_index(src: &str) -> (Document, TagIndex) {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        (doc, index)
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let (doc, index) = doc_and_index("<a><b/><c><b/><b/></c></a>");
        let b = doc.tag_id("b").unwrap();
        let bs = index.nodes_with_tag(b);
        assert_eq!(bs.len(), 3);
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn descendant_scan_matches_naive() {
        let (doc, index) = doc_and_index("<a><b/><c><b/><d><b/></d></c></a><a><b/></a>");
        let a_tag = doc.tag_id("a").unwrap();
        let b_tag = doc.tag_id("b").unwrap();
        for a in doc.elements().filter(|&n| doc.tag(n) == a_tag) {
            let scanned: Vec<_> = index.descendants_with_tag(a, b_tag).to_vec();
            let naive: Vec<_> = doc
                .descendants_or_self(a)
                .skip(1)
                .filter(|&n| doc.tag(n) == b_tag)
                .collect();
            assert_eq!(scanned, naive);
        }
    }

    #[test]
    fn self_is_not_its_own_descendant() {
        let (doc, index) = doc_and_index("<a><a/></a>");
        let a_tag = doc.tag_id("a").unwrap();
        let outer = doc.children(doc.document_root()).next().unwrap();
        let inner: Vec<_> = index.descendants_with_tag(outer, a_tag).to_vec();
        assert_eq!(inner.len(), 1);
        assert_ne!(inner[0], outer);
    }

    #[test]
    fn value_postings() {
        let (doc, index) = doc_and_index("<r><t>x</t><t>y</t><s><t>x</t></s></r>");
        let t = doc.tag_id("t").unwrap();
        assert_eq!(index.nodes_with_tag_value(t, "x").len(), 2);
        assert_eq!(index.nodes_with_tag_value(t, "y").len(), 1);
        assert_eq!(index.nodes_with_tag_value(t, "z").len(), 0);
        let s = doc.elements().find(|&n| doc.tag_str(n) == "s").unwrap();
        assert_eq!(index.descendants_with_tag_value(s, t, "x").len(), 1);
    }

    #[test]
    fn subtree_end_brackets_descendants() {
        let (doc, index) = doc_and_index("<a><b><c/><d/></b><e/></a>");
        let a = doc.children(doc.document_root()).next().unwrap();
        let b = doc.children(a).next().unwrap();
        // b's subtree = {b, c, d}; e is outside.
        let end = index.subtree_end(b);
        let e = doc.children(a).nth(1).unwrap();
        assert_eq!(end, e);
        for n in doc.descendants_or_self(b) {
            assert!(n < end);
        }
    }

    #[test]
    fn unknown_tag_is_empty() {
        let (doc, index) = doc_and_index("<a/>");
        let a = doc.children(doc.document_root()).next().unwrap();
        // Interning a tag the index was not built with would be a logic
        // error; the public API takes TagIds so this can't happen, but
        // empty postings for an in-range tag must work:
        let a_tag = doc.tag_id("a").unwrap();
        assert!(index.descendants_with_tag(a, a_tag).is_empty());
    }

    #[test]
    fn large_document_scan_consistency() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(100));
        let index = TagIndex::build(&doc);
        let item = doc.tag_id("item").unwrap();
        let parlist = doc.tag_id("parlist").unwrap();
        for n in index.nodes_with_tag(item).iter().copied().take(25) {
            let scanned = index.descendants_with_tag(n, parlist).len();
            let naive = doc
                .descendants_or_self(n)
                .skip(1)
                .filter(|&x| doc.tag(x) == parlist)
                .count();
            assert_eq!(scanned, naive);
        }
    }
}
