//! Per-shard synopses for collection-level pruning.
//!
//! A collection visits shards most-promising-first and skips any shard
//! whose score ceiling cannot beat the global k-th answer. Computing
//! that ceiling must cost far less than evaluating the shard, so it
//! runs on a [`ShardSynopsis`]: a flat tag-name → element-count table
//! built once per shard, next to its [`TagIndex`](crate::TagIndex).
//! Tag *names* (not per-document `TagId`s) key the table because tag
//! interning is per-document — a synopsis has to answer questions posed
//! by a query compiled against a different shard's interner.

use std::collections::HashMap;
use whirlpool_xml::Document;

/// Cheap per-shard summary: element counts per tag name.
///
/// The collection driver derives a shard's *max-score ceiling* from
/// this: a query node whose tag has no element in the shard can only
/// bind to the outer-join null (contributing zero), so its per-server
/// maximum weight drops out of the ceiling. The synopsis never
/// under-reports a tag (it counts every element), which keeps the
/// ceiling an upper bound — the invariant shard pruning relies on.
#[derive(Debug, Clone, Default)]
pub struct ShardSynopsis {
    tag_counts: HashMap<Box<str>, u64>,
    elements: u64,
}

impl ShardSynopsis {
    /// Builds the synopsis with one pass over the document's elements.
    pub fn build(doc: &Document) -> ShardSynopsis {
        let mut tag_counts: HashMap<Box<str>, u64> = HashMap::new();
        let mut elements = 0u64;
        for n in doc.elements() {
            elements += 1;
            *tag_counts.entry(doc.tag_str(n).into()).or_insert(0) += 1;
        }
        ShardSynopsis {
            tag_counts,
            elements,
        }
    }

    /// Rebuilds a synopsis from `(tag, count)` pairs plus the total
    /// element count — the snapshot-attach path, where the counts were
    /// flattened into the file at build time. The table is tiny (one
    /// entry per distinct tag), so this stays O(tags), not O(corpus).
    pub fn from_counts(counts: impl IntoIterator<Item = (Box<str>, u64)>, elements: u64) -> Self {
        ShardSynopsis {
            tag_counts: counts.into_iter().collect(),
            elements,
        }
    }

    /// Elements carrying `tag` in the shard (0 for unknown tags).
    pub fn tag_count(&self, tag: &str) -> u64 {
        self.tag_counts.get(tag).copied().unwrap_or(0)
    }

    /// Does any element in the shard carry `tag`?
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tag_count(tag) > 0
    }

    /// Total element count of the shard.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Distinct tag names in the shard.
    pub fn distinct_tags(&self) -> usize {
        self.tag_counts.len()
    }

    /// Iterates `(tag, count)` pairs in arbitrary order.
    pub fn tags(&self) -> impl Iterator<Item = (&str, u64)> {
        self.tag_counts.iter().map(|(t, &c)| (t.as_ref(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    #[test]
    fn counts_match_the_document() {
        let doc = parse_document(
            "<shelf><book><title>t</title></book><book/><cd><title>x</title></cd></shelf>",
        )
        .unwrap();
        let s = ShardSynopsis::build(&doc);
        assert_eq!(s.tag_count("book"), 2);
        assert_eq!(s.tag_count("title"), 2);
        assert_eq!(s.tag_count("cd"), 1);
        assert_eq!(s.tag_count("shelf"), 1);
        assert_eq!(s.tag_count("nosuch"), 0);
        assert!(s.has_tag("book"));
        assert!(!s.has_tag("nosuch"));
        assert_eq!(s.elements(), 6);
        assert_eq!(s.distinct_tags(), 4);
        assert_eq!(s.tags().map(|(_, c)| c).sum::<u64>(), s.elements());
    }

    #[test]
    fn empty_document_is_empty() {
        let doc = parse_document("<r/>").unwrap();
        let s = ShardSynopsis::build(&doc);
        assert_eq!(s.elements(), 1);
        assert_eq!(s.tag_count("r"), 1);
    }
}
