//! Amortized descendant-range scans over sorted posting lists.
//!
//! [`TagIndex::descendants_with_tag`](crate::TagIndex::descendants_with_tag)
//! answers each query with two binary searches over the full posting
//! list. When a caller scans *many* ancestors in ascending document
//! order — exactly what happens when a query context resolves every
//! root candidate against a server's postings — the binary searches
//! re-cover the same prefix over and over. A [`RangeCursor`] remembers
//! where the previous range ended and *gallops* (exponential search)
//! forward from there, so a full merge pass over `r` ancestors and an
//! `n`-element posting list costs `O(n + r)` amortized instead of
//! `O(r log n)`. Non-monotone queries are still answered correctly via
//! a binary-search fallback.

use whirlpool_xml::NodeId;

/// A stateful scanner over one sorted posting list (see module docs).
///
/// The cursor never mutates the list; it only caches the lower bound of
/// the previous query as a galloping start point.
pub struct RangeCursor<'a> {
    list: &'a [NodeId],
    /// Lower bound returned by the previous `bounds` call; every id
    /// before it was `<=` that call's ancestor.
    pos: usize,
}

impl<'a> RangeCursor<'a> {
    /// A cursor over `list`, which must be sorted ascending (posting
    /// lists from [`TagIndex`](crate::TagIndex) always are).
    pub fn new(list: &'a [NodeId]) -> Self {
        debug_assert!(
            list.windows(2).all(|w| w[0] < w[1]),
            "posting list not sorted"
        );
        RangeCursor { list, pos: 0 }
    }

    /// The `[lo, hi)` index range of ids in the half-open id interval
    /// `(ancestor, end)` — i.e. `ancestor`'s proper descendants when
    /// `end` is its subtree end. Galloping applies whenever `ancestor`
    /// is at or past the previous call's lower bound.
    pub fn bounds(&mut self, ancestor: NodeId, end: u32) -> (usize, usize) {
        let lo = if self.pos == 0 || self.list[self.pos - 1] <= ancestor {
            gallop_past(self.list, self.pos, |n| n <= ancestor)
        } else {
            self.list.partition_point(|&n| n <= ancestor)
        };
        let hi = gallop_past(self.list, lo, |n| (n.index() as u32) < end);
        self.pos = lo;
        (lo, hi)
    }

    /// The sub-slice of ids in `(ancestor, end)`.
    pub fn range(&mut self, ancestor: NodeId, end: u32) -> &'a [NodeId] {
        let (lo, hi) = self.bounds(ancestor, end);
        &self.list[lo..hi]
    }
}

/// First index `>= start` whose element fails `pred`, assuming `pred`
/// is monotone (true then false) over `list[start..]`: exponential
/// probe doubling outward from `start`, then a binary search inside the
/// bracketed window.
fn gallop_past(list: &[NodeId], start: usize, pred: impl Fn(NodeId) -> bool) -> usize {
    let mut step = 1usize;
    let mut lo = start;
    let mut probe = start;
    while probe < list.len() && pred(list[probe]) {
        lo = probe + 1;
        probe += step;
        step <<= 1;
    }
    let hi = probe.min(list.len());
    lo + list[lo..hi].partition_point(|&n| pred(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TagIndex;
    use whirlpool_xml::parse_document;

    fn ids(indices: &[usize]) -> Vec<NodeId> {
        indices.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    /// Reference implementation: the two binary searches.
    fn naive(list: &[NodeId], ancestor: NodeId, end: u32) -> (usize, usize) {
        let lo = list.partition_point(|&n| n <= ancestor);
        let hi = list.partition_point(|&n| (n.index() as u32) < end);
        (lo, hi)
    }

    #[test]
    fn ascending_queries_match_binary_search() {
        let list = ids(&[2, 3, 5, 8, 13, 21, 34, 55]);
        let mut cursor = RangeCursor::new(&list);
        for (anc, end) in [(1, 4), (3, 9), (3, 60), (20, 40), (55, 100), (90, 95)] {
            let a = NodeId::from_index(anc);
            assert_eq!(
                cursor.bounds(a, end),
                naive(&list, a, end),
                "anc {anc} end {end}"
            );
        }
    }

    #[test]
    fn regressing_queries_fall_back_correctly() {
        let list = ids(&[2, 3, 5, 8, 13, 21, 34, 55]);
        let mut cursor = RangeCursor::new(&list);
        for (anc, end) in [(30, 60), (1, 9), (20, 40), (0, 100), (55, 56)] {
            let a = NodeId::from_index(anc);
            assert_eq!(
                cursor.bounds(a, end),
                naive(&list, a, end),
                "anc {anc} end {end}"
            );
        }
    }

    #[test]
    fn empty_list_yields_empty_ranges() {
        let list: Vec<NodeId> = Vec::new();
        let mut cursor = RangeCursor::new(&list);
        assert_eq!(cursor.bounds(NodeId::from_index(3), 10), (0, 0));
        assert!(cursor.range(NodeId::from_index(4), 10).is_empty());
    }

    #[test]
    fn merge_pass_equals_descendant_scans() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(60));
        let index = TagIndex::build(&doc);
        let item = doc.tag_id("item").unwrap();
        for tag_name in ["parlist", "keyword", "quantity", "bold"] {
            let Some(tag) = doc.tag_id(tag_name) else {
                continue;
            };
            let mut cursor = RangeCursor::new(index.nodes_with_tag(tag));
            // Roots in document order: exactly the context's merge pass.
            for &root in index.nodes_with_tag(item) {
                let end = index.subtree_end(root).index() as u32;
                assert_eq!(
                    cursor.range(root, end),
                    index.descendants_with_tag(root, tag),
                    "tag {tag_name} root {root:?}"
                );
            }
        }
    }

    #[test]
    fn nested_ancestors_stay_consistent() {
        // Nested same-tag roots: the next ancestor can sit *inside* the
        // previous range; the gallop must still find the right bounds.
        let doc = parse_document("<r><a><b/><a><b/><b/></a><b/></a><a><b/></a></r>").unwrap();
        let index = TagIndex::build(&doc);
        let a = doc.tag_id("a").unwrap();
        let b = doc.tag_id("b").unwrap();
        let mut cursor = RangeCursor::new(index.nodes_with_tag(b));
        for &root in index.nodes_with_tag(a) {
            let end = index.subtree_end(root).index() as u32;
            assert_eq!(cursor.range(root, end), index.descendants_with_tag(root, b));
        }
    }
}
