#![deny(missing_docs)]

//! Node indexes for structural joins.
//!
//! "When a query is executed on an XML document, the document is parsed
//! and nodes involved in the query are stored in indexes along with
//! their Dewey encoding" (paper §6.2.1). This crate provides:
//!
//! * [`TagIndex`] — per-tag (and per tag+value) postings in document
//!   order, with O(log n) *descendant range scans*: all nodes with a
//!   given tag inside a subtree form a contiguous posting range because
//!   node ids are assigned in pre-order.
//! * [`RangeCursor`] — a reusable scanner over one posting list that
//!   answers ascending descendant-range queries by galloping forward
//!   from the previous answer, turning a per-root pair of binary
//!   searches into one amortized merge pass.
//! * [`StructuralColumns`] — flat per-node `parent`/`depth`/
//!   `subtree_end` columns built alongside the postings, turning the
//!   compiled structural predicates (pc, ad, depth-bounded chains) into
//!   one or two integer comparisons so the server-op hot loop never
//!   decodes Dewey paths.
//! * [`ServerSelectivity`] — sampled per-server statistics (candidate
//!   fanout, exact-match fraction) that the adaptive routing strategies
//!   use as their cost estimates ("such estimates could be obtained by
//!   using work on selectivity estimation for XML", §6.1.4).
//! * [`ShardSynopsis`] — a per-shard tag-count summary that lets a
//!   collection bound a shard's best possible score without touching
//!   its postings, enabling whole-shard pruning against the global
//!   top-k threshold.
//! * [`PathSynopsis`] — a bounded strong dataguide (distinct
//!   root-to-node tag paths with counts and max same-parent
//!   multiplicity) that sharpens those ceilings on homogeneous corpora
//!   where tag presence alone prunes nothing, and is compact enough to
//!   store inside a snapshot and read by `Snapshot::peek` without
//!   attaching the shard.

mod columns;
mod cursor;
mod paths;
mod selectivity;
mod synopsis;
mod tagindex;
mod view;

pub use columns::{lanes_for, mask_count, ColumnsView, StructuralColumns, KERNEL_LANE};
pub use cursor::RangeCursor;
pub use paths::{PathAxis, PathEntry, PathSynopsis, PATH_COUNT_CAP, PATH_DEPTH_CAP};
pub use selectivity::{
    estimate_query_cost, estimate_selectivity, estimate_selectivity_view, QueryCostEstimate,
    ServerSelectivity,
};
pub use synopsis::ShardSynopsis;
pub use tagindex::TagIndex;
pub use view::{
    DocView, MappedDoc, MappedIndex, TagIndexView, ATTR_ENTRY_STRIDE, VALUE_GROUP_STRIDE,
};
