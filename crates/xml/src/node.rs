//! Arena-backed document tree.

use crate::dewey::Dewey;
use crate::tags::{TagId, TagInterner};
use std::fmt;

/// Index of a node within its [`Document`]'s arena.
///
/// Nodes are allocated in document (pre-)order, so `NodeId` order
/// coincides with document order — a property the engine's indexes rely
/// on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena index, usable as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a `NodeId` from a raw index (e.g. a computed range
    /// endpoint). Only meaningful for indexes obtained from the same
    /// document.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Reinterprets a raw `u32` slice as node ids without copying.
    ///
    /// Sound because `NodeId` is `#[repr(transparent)]` over `u32`;
    /// this is what lets memory-mapped posting lists be served as
    /// `&[NodeId]` with zero copies. The ids are only meaningful
    /// against the document whose snapshot the slice came from.
    pub fn slice_from_raw(raw: &[u32]) -> &[NodeId] {
        // SAFETY: NodeId is repr(transparent) over u32, so the two
        // slice types have identical layout and validity.
        unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<NodeId>(), raw.len()) }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// Per-node storage.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Interned element tag. The synthetic document root carries the
    /// reserved tag [`Document::DOC_ROOT_TAG`].
    pub tag: TagId,
    /// Parent node; `None` only for the document root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Concatenation of the element's *direct* text children, trimmed.
    /// `None` when the element has no non-whitespace direct text. The
    /// relative order of text and element children is not preserved —
    /// the query model only ever tests an element's direct text value.
    pub text: Option<Box<str>>,
    /// Attributes as `(interned name, value)` pairs, in source order.
    pub attributes: Vec<(TagId, Box<str>)>,
    /// Dewey identifier (sibling-ordinal path from the root).
    pub dewey: Dewey,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Per-thread [`Document::dewey`] lookup counter backing the hot-path
    /// assertion in [`Document::dewey_reads_this_thread`].
    static DEWEY_READS_THIS_THREAD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// An XML document: a node-labelled tree rooted at a synthetic document
/// root whose children are the top-level elements (so a *forest*, as in
/// the paper's data model, is representable too).
pub struct Document {
    nodes: Vec<NodeData>,
    tags: TagInterner,
    /// Debug-build counter of [`Document::dewey`] lookups, backing the
    /// engines' "no Dewey materialization on the hot path" assertion.
    #[cfg(debug_assertions)]
    dewey_reads: std::sync::atomic::AtomicU64,
}

impl Document {
    /// Tag reserved for the synthetic document root. The paper's scoring
    /// function refers to it as `doc-root` (e.g. the component predicate
    /// `a[parent::doc-root]`).
    pub const DOC_ROOT_TAG: &'static str = "#doc-root";

    /// Creates an empty document containing only the synthetic root.
    pub fn new() -> Self {
        let mut tags = TagInterner::new();
        let root_tag = tags.intern(Self::DOC_ROOT_TAG);
        Document {
            nodes: vec![NodeData {
                tag: root_tag,
                parent: None,
                children: Vec::new(),
                text: None,
                attributes: Vec::new(),
                dewey: Dewey::root(),
            }],
            tags,
            #[cfg(debug_assertions)]
            dewey_reads: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The synthetic document root (depth 0). Top-level elements are its
    /// children.
    pub fn document_root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, including the synthetic root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds no elements (only the synthetic root).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node's storage.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// The node's interned tag.
    pub fn tag(&self, id: NodeId) -> TagId {
        self.nodes[id.index()].tag
    }

    /// The node's tag as a string.
    pub fn tag_str(&self, id: NodeId) -> &str {
        self.tags.name(self.nodes[id.index()].tag)
    }

    /// The node's direct text value, if any.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].text.as_deref()
    }

    /// The node's Dewey identifier.
    pub fn dewey(&self, id: NodeId) -> &Dewey {
        #[cfg(debug_assertions)]
        {
            self.dewey_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            DEWEY_READS_THIS_THREAD.with(|c| c.set(c.get() + 1));
        }
        &self.nodes[id.index()].dewey
    }

    /// Number of [`Document::dewey`] lookups since construction, across
    /// all threads. Debug builds only.
    #[cfg(debug_assertions)]
    pub fn dewey_reads(&self) -> u64 {
        self.dewey_reads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of [`Document::dewey`] lookups *this thread* has
    /// performed, over every document.
    ///
    /// Debug builds only. The server-op candidate loops
    /// `debug_assert!` that this counter does not move while they run:
    /// structural predicates must resolve through the columnar tables
    /// (`StructuralColumns` in `whirlpool-index`), with Dewey paths
    /// reserved for answer serialization. The check must be per-thread
    /// — a daemon serves concurrent queries over one shared document,
    /// and another request's legitimate Dewey reads (answer
    /// serialization) would trip a whole-document counter.
    #[cfg(debug_assertions)]
    pub fn dewey_reads_this_thread() -> u64 {
        DEWEY_READS_THIS_THREAD.with(|c| c.get())
    }

    /// The node's parent, `None` for the document root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The node's children in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()].children.iter().copied()
    }

    /// The value of attribute `name` on `id`, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        let name_id = self.tags.get(name)?;
        self.nodes[id.index()]
            .attributes
            .iter()
            .find(|(n, _)| *n == name_id)
            .map(|(_, v)| v.as_ref())
    }

    /// The interner mapping tags to ids.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Resolves a tag name to its id without interning.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.tags.get(name)
    }

    /// The tag string for an id.
    pub fn tag_name(&self, id: TagId) -> &str {
        self.tags.name(id)
    }

    /// Iterates over all node ids in document (pre-)order, including the
    /// synthetic root.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all *element* node ids (everything but the synthetic
    /// root) in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> {
        (1..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth of a node; the document root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id.index()].dewey.depth()
    }

    /// True iff `ancestor` is a proper ancestor of `descendant`.
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        self.dewey(ancestor).is_ancestor_of(self.dewey(descendant))
    }

    /// True iff `parent` is the parent of `child`.
    pub fn is_parent(&self, parent: NodeId, child: NodeId) -> bool {
        self.nodes[child.index()].parent == Some(parent)
    }

    /// Pre-order depth-first traversal of the subtree rooted at `id`
    /// (including `id` itself).
    pub fn descendants_or_self(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    // -- mutation (used by the parser and builder) ----------------------

    pub(crate) fn intern_tag(&mut self, name: &str) -> TagId {
        self.tags.intern(name)
    }

    /// Appends a fresh child element under `parent` and returns its id.
    pub(crate) fn push_child(&mut self, parent: NodeId, tag: TagId) -> NodeId {
        let ordinal = self.nodes[parent.index()].children.len() as u32;
        let dewey = self.nodes[parent.index()].dewey.child(ordinal);
        let id = NodeId(u32::try_from(self.nodes.len()).expect("more than u32::MAX nodes"));
        self.nodes.push(NodeData {
            tag,
            parent: Some(parent),
            children: Vec::new(),
            text: None,
            attributes: Vec::new(),
            dewey,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    pub(crate) fn append_text(&mut self, id: NodeId, text: &str) {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        let node = &mut self.nodes[id.index()];
        match &mut node.text {
            Some(existing) => {
                let mut s = String::with_capacity(existing.len() + 1 + trimmed.len());
                s.push_str(existing);
                s.push(' ');
                s.push_str(trimmed);
                node.text = Some(s.into_boxed_str());
            }
            None => node.text = Some(trimmed.into()),
        }
    }

    pub(crate) fn push_attribute(&mut self, id: NodeId, name: TagId, value: Box<str>) {
        self.nodes[id.index()].attributes.push((name, value));
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Document")
            .field("nodes", &self.nodes.len())
            .field("tags", &self.tags.len())
            .finish()
    }
}

/// Iterator returned by [`Document::descendants_or_self`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so the traversal is document order.
        let children = &self.doc.nodes[id.index()].children;
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        // <book><title>wodehouse</title><info/></book>
        let mut doc = Document::new();
        let book_tag = doc.intern_tag("book");
        let title_tag = doc.intern_tag("title");
        let info_tag = doc.intern_tag("info");
        let book = doc.push_child(doc.document_root(), book_tag);
        let title = doc.push_child(book, title_tag);
        doc.append_text(title, "wodehouse");
        let info = doc.push_child(book, info_tag);
        (doc, book, title, info)
    }

    #[test]
    fn structure_is_consistent() {
        let (doc, book, title, info) = sample();
        assert_eq!(doc.parent(book), Some(doc.document_root()));
        assert_eq!(doc.parent(title), Some(book));
        assert_eq!(doc.children(book).collect::<Vec<_>>(), vec![title, info]);
        assert_eq!(doc.tag_str(book), "book");
        assert_eq!(doc.text(title), Some("wodehouse"));
        assert_eq!(doc.text(info), None);
        assert_eq!(doc.len(), 4);
    }

    #[test]
    fn dewey_assignment_matches_structure() {
        let (doc, book, title, info) = sample();
        assert_eq!(doc.dewey(book).components(), &[0]);
        assert_eq!(doc.dewey(title).components(), &[0, 0]);
        assert_eq!(doc.dewey(info).components(), &[0, 1]);
        assert!(doc.is_parent(book, title));
        assert!(doc.is_ancestor(book, info));
        assert!(!doc.is_ancestor(title, info));
    }

    #[test]
    fn node_ids_are_preorder() {
        let (doc, book, title, info) = sample();
        assert!(book < title && title < info);
        let order: Vec<_> = doc.descendants_or_self(book).collect();
        assert_eq!(order, vec![book, title, info]);
    }

    #[test]
    fn text_accumulates_across_mixed_content() {
        let mut doc = Document::new();
        let t = doc.intern_tag("p");
        let p = doc.push_child(doc.document_root(), t);
        doc.append_text(p, "  hello ");
        doc.append_text(p, "\n\t ");
        doc.append_text(p, "world");
        assert_eq!(doc.text(p), Some("hello world"));
    }

    #[test]
    fn attributes_are_retrievable() {
        let mut doc = Document::new();
        let t = doc.intern_tag("item");
        let a = doc.intern_tag("id");
        let item = doc.push_child(doc.document_root(), t);
        doc.push_attribute(item, a, "item42".into());
        assert_eq!(doc.attribute(item, "id"), Some("item42"));
        assert_eq!(doc.attribute(item, "missing"), None);
    }
}
