#![warn(missing_docs)]

//! XML data model for the Whirlpool top-k query engine.
//!
//! This crate provides the storage substrate the rest of the system is
//! built on:
//!
//! * [`Document`] — an arena-backed, node-labelled tree (the paper's data
//!   model: "information is represented as a forest of node labeled
//!   trees"; a forest is modelled as the children of a synthetic document
//!   root).
//! * [`Dewey`] — Dewey order-based node identifiers, the encoding the
//!   paper uses for structural joins ("nodes involved in the query are
//!   stored in indexes along with their Dewey encoding").
//! * [`parse_document`] — a from-scratch, dependency-free XML parser with
//!   positioned errors.
//! * [`DocumentBuilder`] — programmatic construction (used by the
//!   synthetic data generators).
//! * [`write_document`] — serializer, used for size accounting and for
//!   round-trip testing of the parser.
//!
//! # Example
//!
//! ```
//! use whirlpool_xml::{parse_document, Document};
//!
//! let doc = parse_document("<book><title>wodehouse</title></book>").unwrap();
//! let root = doc.document_root();
//! let book = doc.children(root).next().unwrap();
//! assert_eq!(doc.tag_name(doc.node(book).tag), "book");
//! let title = doc.children(book).next().unwrap();
//! assert_eq!(doc.text(title), Some("wodehouse"));
//! ```

mod builder;
mod dewey;
mod error;
mod node;
mod parser;
mod stats;
mod tags;
mod writer;

pub use builder::DocumentBuilder;
pub use dewey::Dewey;
pub use error::{ParseError, ParseErrorKind, Position};
pub use node::{Document, NodeData, NodeId};
pub use parser::parse_document;
pub use stats::DocumentStats;
pub use tags::{TagId, TagInterner};
pub use writer::{write_document, write_node, WriteOptions};
