//! Programmatic document construction.

use crate::node::{Document, NodeId};

/// A push-style builder over [`Document`], used by the synthetic data
/// generators and by tests.
///
/// # Example
///
/// ```
/// use whirlpool_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// b.open("book");
/// b.open("title");
/// b.text("wodehouse");
/// b.close(); // title
/// b.close(); // book
/// let doc = b.finish();
/// assert_eq!(doc.len(), 3); // root + book + title
/// ```
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Creates a builder over a fresh, empty document.
    pub fn new() -> Self {
        DocumentBuilder {
            doc: Document::new(),
            stack: Vec::new(),
        }
    }

    /// Opens a new element under the current one (or under the document
    /// root) and makes it current. Returns its id.
    pub fn open(&mut self, tag: &str) -> NodeId {
        let tag = self.doc.intern_tag(tag);
        let parent = self
            .stack
            .last()
            .copied()
            .unwrap_or_else(|| self.doc.document_root());
        let id = self.doc.push_child(parent, tag);
        self.stack.push(id);
        id
    }

    /// Closes the current element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        self.stack.pop().expect("close() with no open element");
    }

    /// Appends text to the current element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn text(&mut self, text: &str) {
        let current = *self.stack.last().expect("text() with no open element");
        self.doc.append_text(current, text);
    }

    /// Adds an attribute to the current element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn attribute(&mut self, name: &str, value: &str) {
        let current = *self.stack.last().expect("attribute() with no open element");
        let name = self.doc.intern_tag(name);
        self.doc.push_attribute(current, name, value.into());
    }

    /// Convenience: `open(tag)`, `text(value)`, `close()`.
    pub fn leaf(&mut self, tag: &str, value: &str) -> NodeId {
        let id = self.open(tag);
        self.text(value);
        self.close();
        id
    }

    /// Convenience: an empty element.
    pub fn empty(&mut self, tag: &str) -> NodeId {
        let id = self.open(tag);
        self.close();
        id
    }

    /// Depth of the currently open element stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the build.
    ///
    /// # Panics
    /// Panics if elements are still open, which always indicates a bug in
    /// the generator driving the builder.
    pub fn finish(self) -> Document {
        assert!(
            self.stack.is_empty(),
            "finish() with {} unclosed element(s)",
            self.stack.len()
        );
        self.doc
    }
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::writer::{write_document, WriteOptions};

    #[test]
    fn builder_matches_parser() {
        let mut b = DocumentBuilder::new();
        b.open("book");
        b.attribute("id", "b1");
        b.leaf("title", "wodehouse");
        b.open("info");
        b.leaf("isbn", "1234");
        b.close();
        b.close();
        let built = b.finish();

        let parsed = parse_document(
            r#"<book id="b1"><title>wodehouse</title><info><isbn>1234</isbn></info></book>"#,
        )
        .unwrap();

        let opts = WriteOptions::default();
        assert_eq!(
            write_document(&built, &opts),
            write_document(&parsed, &opts)
        );
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut b = DocumentBuilder::new();
        b.open("a");
        let _ = b.finish();
    }

    #[test]
    fn empty_and_leaf_helpers() {
        let mut b = DocumentBuilder::new();
        b.open("r");
        let e = b.empty("x");
        let l = b.leaf("y", "v");
        b.close();
        let doc = b.finish();
        assert_eq!(doc.text(e), None);
        assert_eq!(doc.text(l), Some("v"));
    }
}
