//! Dewey order-based node identifiers.
//!
//! A Dewey identifier encodes the path of sibling ordinals from the
//! document root to a node: the root is `[]`, its first child `[0]`, the
//! third child of the first child `[0, 2]`, and so on. Dewey identifiers
//! make the structural XPath axes the engine joins on cheap to decide:
//!
//! * `parent-child(a, b)` ⇔ `b = a ++ [i]` for some `i`;
//! * `ancestor-descendant(a, b)` ⇔ `a` is a proper prefix of `b`;
//! * document order ⇔ lexicographic order of the component vectors
//!   (a node precedes its descendants).
//!
//! The engine's tag indexes keep postings sorted by Dewey identifier, so
//! "all descendants of `n` with tag `t`" is a binary-searched contiguous
//! range (see `whirlpool-index`).

use std::cmp::Ordering;
use std::fmt;

/// A Dewey identifier: the sibling-ordinal path from the root.
///
/// Cheap to clone for shallow documents; comparison is lexicographic and
/// therefore coincides with document (pre-)order.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey {
    components: Vec<u32>,
}

impl Dewey {
    /// The identifier of the (synthetic) document root: the empty path.
    pub fn root() -> Self {
        Dewey {
            components: Vec::new(),
        }
    }

    /// Builds an identifier from explicit components.
    pub fn from_components(components: Vec<u32>) -> Self {
        Dewey { components }
    }

    /// The sibling-ordinal components, root-first.
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Depth of the node; the root has depth 0.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// The identifier of this node's `ordinal`-th child.
    pub fn child(&self, ordinal: u32) -> Dewey {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(ordinal);
        Dewey { components }
    }

    /// The identifier of this node's parent, or `None` for the root.
    pub fn parent(&self) -> Option<Dewey> {
        if self.components.is_empty() {
            None
        } else {
            Some(Dewey {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// True iff `self` is a proper ancestor of `other`
    /// (the `ad` axis of the paper's tree patterns).
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` is the parent of `other`
    /// (the `pc` axis of the paper's tree patterns).
    pub fn is_parent_of(&self, other: &Dewey) -> bool {
        other.components.len() == self.components.len() + 1
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` is an ancestor of `other` at exactly `depth` levels
    /// above it. `depth == 1` is `is_parent_of`; this decides the composed
    /// axis of a chain of `pc` edges (see `whirlpool-pattern`).
    pub fn is_ancestor_at_depth(&self, other: &Dewey, depth: usize) -> bool {
        other.components.len() == self.components.len() + depth
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` and `other` are siblings (share a parent) and
    /// `self` precedes `other` in document order.
    pub fn is_preceding_sibling_of(&self, other: &Dewey) -> bool {
        self.components.len() == other.components.len()
            && !self.components.is_empty()
            && self.components[..self.components.len() - 1]
                == other.components[..self.components.len() - 1]
            && self.components[self.components.len() - 1]
                < other.components[other.components.len() - 1]
    }

    /// Length of the longest common prefix of the two identifiers — the
    /// depth of the nodes' lowest common ancestor.
    pub fn common_prefix_len(&self, other: &Dewey) -> usize {
        self.components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The exclusive upper bound of the descendant range of `self`: the
    /// smallest identifier (in document order) that is strictly after
    /// every descendant of `self`. All descendants `d` of `self` satisfy
    /// `self < d < self.descendant_upper_bound()` lexicographically.
    ///
    /// Returns `None` for ranges that are unbounded (only happens for a
    /// component at `u32::MAX`, which the builders never produce).
    pub fn descendant_upper_bound(&self) -> Option<Dewey> {
        let mut components = self.components.clone();
        let last = components.last_mut()?;
        *last = last.checked_add(1)?;
        Some(Dewey { components })
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Lexicographic order on components — exactly document (pre-)order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl fmt::Debug for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dewey({})", self)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "ε");
        }
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(components: &[u32]) -> Dewey {
        Dewey::from_components(components.to_vec())
    }

    #[test]
    fn root_has_no_parent() {
        assert_eq!(Dewey::root().parent(), None);
        assert_eq!(Dewey::root().depth(), 0);
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let n = d(&[0, 2, 5]);
        assert_eq!(n.child(3).parent(), Some(n.clone()));
        assert_eq!(n.child(3).components(), &[0, 2, 5, 3]);
    }

    #[test]
    fn ancestor_descendant() {
        assert!(d(&[0]).is_ancestor_of(&d(&[0, 1])));
        assert!(d(&[0]).is_ancestor_of(&d(&[0, 1, 2])));
        assert!(!d(&[0]).is_ancestor_of(&d(&[0])));
        assert!(!d(&[0, 1]).is_ancestor_of(&d(&[0])));
        assert!(!d(&[0, 1]).is_ancestor_of(&d(&[0, 2, 0])));
        assert!(Dewey::root().is_ancestor_of(&d(&[7])));
    }

    #[test]
    fn parent_child() {
        assert!(d(&[0]).is_parent_of(&d(&[0, 4])));
        assert!(!d(&[0]).is_parent_of(&d(&[0, 4, 1])));
        assert!(!d(&[0]).is_parent_of(&d(&[1, 4])));
        assert!(Dewey::root().is_parent_of(&d(&[3])));
    }

    #[test]
    fn ancestor_at_depth() {
        let a = d(&[1]);
        assert!(a.is_ancestor_at_depth(&d(&[1, 0]), 1));
        assert!(a.is_ancestor_at_depth(&d(&[1, 0, 9]), 2));
        assert!(!a.is_ancestor_at_depth(&d(&[1, 0, 9]), 1));
        assert!(!a.is_ancestor_at_depth(&d(&[2, 0]), 1));
    }

    #[test]
    fn preceding_sibling() {
        assert!(d(&[0, 1]).is_preceding_sibling_of(&d(&[0, 3])));
        assert!(!d(&[0, 3]).is_preceding_sibling_of(&d(&[0, 1])));
        assert!(!d(&[0, 1]).is_preceding_sibling_of(&d(&[1, 3])));
        assert!(!d(&[0, 1]).is_preceding_sibling_of(&d(&[0, 1])));
        // Roots are nobody's siblings.
        assert!(!Dewey::root().is_preceding_sibling_of(&Dewey::root()));
    }

    #[test]
    fn document_order_is_preorder() {
        // A node sorts before its descendants and after its preceding siblings.
        let mut ids = vec![d(&[1]), d(&[0, 0]), d(&[0]), d(&[0, 0, 0]), d(&[0, 1])];
        ids.sort();
        assert_eq!(
            ids,
            vec![d(&[0]), d(&[0, 0]), d(&[0, 0, 0]), d(&[0, 1]), d(&[1])]
        );
    }

    #[test]
    fn descendant_upper_bound_brackets_descendants() {
        let n = d(&[2, 1]);
        let ub = n.descendant_upper_bound().unwrap();
        assert_eq!(ub, d(&[2, 2]));
        assert!(n < d(&[2, 1, 0]) && d(&[2, 1, 0]) < ub);
        assert!(n < d(&[2, 1, 99, 5]) && d(&[2, 1, 99, 5]) < ub);
        assert!(d(&[2, 2]) >= ub);
        // The root's range is unbounded (no last component to bump).
        assert_eq!(Dewey::root().descendant_upper_bound(), None);
    }

    #[test]
    fn common_prefix() {
        assert_eq!(d(&[0, 1, 2]).common_prefix_len(&d(&[0, 1, 5, 6])), 2);
        assert_eq!(d(&[0]).common_prefix_len(&d(&[1])), 0);
        assert_eq!(d(&[3, 4]).common_prefix_len(&d(&[3, 4])), 2);
    }

    #[test]
    fn display_format() {
        assert_eq!(Dewey::root().to_string(), "ε");
        assert_eq!(d(&[0, 12, 3]).to_string(), "0.12.3");
    }
}
