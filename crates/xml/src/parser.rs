//! A from-scratch, dependency-free XML parser.
//!
//! Supports the subset of XML the evaluation data needs — elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions, an XML declaration, a (skipped) DOCTYPE, and the
//! predefined plus numeric character entities — with positioned errors.
//! Namespaces are not interpreted (prefixed names are kept verbatim),
//! and DTD-defined entities are not expanded.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::node::{Document, NodeId};

/// Parses `input` into a [`Document`].
///
/// Multiple top-level elements are accepted (they become siblings under
/// the synthetic document root), which lets a *forest* — the paper's data
/// model — be read from a single file.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    Parser::new(input).run()
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    doc: Document,
    /// Open element stack (synthetic root is implicit).
    stack: Vec<NodeId>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            doc: Document::new(),
            stack: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Document, ParseError> {
        loop {
            let text_start = self.pos;
            // Scan character data until the next markup.
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                    self.line_start = self.pos + 1;
                }
                self.pos += 1;
            }
            if self.pos > text_start {
                self.handle_text(text_start, self.pos)?;
            }
            if self.pos >= self.bytes.len() {
                break;
            }
            // At a '<'.
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                self.parse_cdata()?;
            } else if self.starts_with("<!") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("</") {
                self.parse_closing_tag()?;
            } else {
                self.parse_opening_tag()?;
            }
        }
        if !self.stack.is_empty() {
            let tags = self
                .stack
                .iter()
                .map(|&id| self.doc.tag_str(id).to_string())
                .collect::<Vec<_>>();
            return Err(self.error(ParseErrorKind::UnclosedElements { tags }));
        }
        Ok(self.doc)
    }

    // -- low-level cursor helpers ---------------------------------------

    fn position(&self) -> Position {
        let column = self.src[self.line_start..self.pos].chars().count() as u32 + 1;
        Position {
            line: self.line,
            column,
            offset: self.pos,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            kind,
            position: self.position(),
        }
    }

    fn eof_error(&self, context: &'static str) -> ParseError {
        self.error(ParseErrorKind::UnexpectedEof { context })
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Advances past `needle`, returning an error mentioning `context` if
    /// it never occurs.
    fn skip_until(&mut self, needle: &str, context: &'static str) -> Result<(), ParseError> {
        while self.pos < self.bytes.len() {
            if self.starts_with(needle) {
                for _ in 0..needle.len() {
                    self.bump();
                }
                return Ok(());
            }
            self.bump();
        }
        Err(self.eof_error(context))
    }

    // -- names, entities --------------------------------------------------

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self, what: &'static str) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.bump();
            }
            Some(b) => {
                return Err(self.error(ParseErrorKind::UnexpectedChar {
                    found: b as char,
                    expected: what,
                }))
            }
            None => return Err(self.eof_error(what)),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(&self.src[start..self.pos])
    }

    /// Decodes the text range `[start, end)` of the source, expanding
    /// entity references.
    fn decode_text(&self, start: usize, end: usize) -> Result<String, ParseError> {
        let raw = &self.src[start..end];
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            let semi = after.find(';').ok_or_else(|| {
                self.error(ParseErrorKind::InvalidEntity {
                    entity: truncate(after),
                })
            })?;
            let entity = &after[..semi];
            out.push(decode_entity(entity).ok_or_else(|| {
                self.error(ParseErrorKind::InvalidEntity {
                    entity: entity.to_string(),
                })
            })?);
            rest = &after[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    // -- constructs -------------------------------------------------------

    fn handle_text(&mut self, start: usize, end: usize) -> Result<(), ParseError> {
        let decoded = self.decode_text(start, end)?;
        match self.stack.last() {
            Some(&parent) => self.doc.append_text(parent, &decoded),
            None => {
                if !decoded.trim().is_empty() {
                    return Err(self.error(ParseErrorKind::TextOutsideRoot));
                }
            }
        }
        Ok(())
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.pos += 4; // "<!--"
        self.skip_until("-->", "comment")
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.pos += 2; // "<?"
        self.skip_until("?>", "processing instruction")
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // "<!DOCTYPE ...>" possibly with an internal subset in [ ... ].
        self.pos += 2; // "<!"
        let mut depth = 1usize; // counts '<' ... '>' nesting
        let mut in_subset = false;
        while let Some(b) = self.bump() {
            match b {
                b'[' => in_subset = true,
                b']' => in_subset = false,
                b'<' if !in_subset => depth += 1,
                b'>' if !in_subset => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        Err(self.eof_error("DOCTYPE declaration"))
    }

    fn parse_cdata(&mut self) -> Result<(), ParseError> {
        self.pos += 9; // "<![CDATA["
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.starts_with("]]>") {
            self.bump();
        }
        if self.pos >= self.bytes.len() {
            return Err(self.eof_error("CDATA section"));
        }
        let content = self.src[start..self.pos].to_string();
        self.pos += 3; // "]]>"
        match self.stack.last() {
            Some(&parent) => self.doc.append_text(parent, &content),
            None if content.trim().is_empty() => {}
            None => return Err(self.error(ParseErrorKind::TextOutsideRoot)),
        }
        Ok(())
    }

    fn parse_closing_tag(&mut self) -> Result<(), ParseError> {
        self.pos += 2; // "</"
        let name = self.parse_name("element name")?;
        self.skip_whitespace();
        match self.peek() {
            Some(b'>') => {
                self.bump();
            }
            Some(b) => {
                return Err(self.error(ParseErrorKind::UnexpectedChar {
                    found: b as char,
                    expected: "'>' closing the tag",
                }))
            }
            None => return Err(self.eof_error("closing tag")),
        }
        match self.stack.pop() {
            Some(open) => {
                let opened = self.doc.tag_str(open);
                if opened != name {
                    return Err(self.error(ParseErrorKind::MismatchedClosingTag {
                        opened: opened.to_string(),
                        closed: name.to_string(),
                    }));
                }
                Ok(())
            }
            None => Err(self.error(ParseErrorKind::UnmatchedClosingTag {
                tag: name.to_string(),
            })),
        }
    }

    fn parse_opening_tag(&mut self) -> Result<(), ParseError> {
        self.pos += 1; // "<"
        let name = self.parse_name("element name")?;
        let tag = self.doc.intern_tag(name);
        let parent = self
            .stack
            .last()
            .copied()
            .unwrap_or_else(|| self.doc.document_root());
        let node = self.doc.push_child(parent, tag);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    self.stack.push(node);
                    return Ok(());
                }
                Some(b'/') => {
                    self.bump();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            return Ok(()); // self-closing element
                        }
                        Some(b) => {
                            return Err(self.error(ParseErrorKind::UnexpectedChar {
                                found: b as char,
                                expected: "'>' after '/'",
                            }))
                        }
                        None => return Err(self.eof_error("element tag")),
                    }
                }
                Some(_) => {
                    let attr_name = self.parse_name("attribute name")?;
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                        }
                        Some(b) => {
                            return Err(self.error(ParseErrorKind::UnexpectedChar {
                                found: b as char,
                                expected: "'=' after attribute name",
                            }))
                        }
                        None => return Err(self.eof_error("attribute")),
                    }
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.bump();
                            q
                        }
                        Some(b) => {
                            return Err(self.error(ParseErrorKind::UnexpectedChar {
                                found: b as char,
                                expected: "quoted attribute value",
                            }))
                        }
                        None => return Err(self.eof_error("attribute value")),
                    };
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != quote) {
                        self.bump();
                    }
                    if self.peek().is_none() {
                        return Err(self.eof_error("attribute value"));
                    }
                    let value = self.decode_text(start, self.pos)?;
                    self.bump(); // closing quote
                    let attr_id = self.doc.intern_tag(attr_name);
                    if self
                        .doc
                        .node(node)
                        .attributes
                        .iter()
                        .any(|(n, _)| *n == attr_id)
                    {
                        return Err(self.error(ParseErrorKind::DuplicateAttribute {
                            name: attr_name.to_string(),
                        }));
                    }
                    self.doc
                        .push_attribute(node, attr_id, value.into_boxed_str());
                }
                None => return Err(self.eof_error("element tag")),
            }
        }
    }
}

fn decode_entity(entity: &str) -> Option<char> {
    match entity {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = entity.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

fn truncate(s: &str) -> String {
    s.chars().take(16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_document("<a><b><c/></b><b/></a>").unwrap();
        let a = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.tag_str(a), "a");
        let bs: Vec<_> = doc.children(a).collect();
        assert_eq!(bs.len(), 2);
        assert_eq!(doc.children(bs[0]).count(), 1);
        assert_eq!(doc.children(bs[1]).count(), 0);
    }

    #[test]
    fn parses_text_and_entities() {
        let doc = parse_document("<p>a &lt;b&gt; &amp; &#65;&#x42;</p>").unwrap();
        let p = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.text(p), Some("a <b> & AB"));
    }

    #[test]
    fn parses_attributes() {
        let doc = parse_document(r#"<item id="i1" class='x &amp; y'/>"#).unwrap();
        let item = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.attribute(item, "id"), Some("i1"));
        assert_eq!(doc.attribute(item, "class"), Some("x & y"));
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE site [ <!ELEMENT site (a)> ]>
<!-- a comment -->
<site><?pi data?><a><!-- inner --></a></site>"#;
        let doc = parse_document(src).unwrap();
        let site = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.tag_str(site), "site");
        assert_eq!(doc.children(site).count(), 1);
    }

    #[test]
    fn parses_cdata() {
        let doc = parse_document("<p><![CDATA[<raw> & text]]></p>").unwrap();
        let p = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.text(p), Some("<raw> & text"));
    }

    #[test]
    fn accepts_a_forest() {
        let doc = parse_document("<a/><b/><c/>").unwrap();
        assert_eq!(doc.children(doc.document_root()).count(), 3);
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::MismatchedClosingTag { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_unclosed_elements() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnclosedElements { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_unmatched_closing_tag() {
        let err = parse_document("<a/></b>").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnmatchedClosingTag { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_text_outside_root() {
        let err = parse_document("hello <a/>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TextOutsideRoot);
    }

    #[test]
    fn rejects_bad_entity() {
        let err = parse_document("<a>&nosuch;</a>").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::InvalidEntity { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = parse_document(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::DuplicateAttribute { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err = parse_document("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 2);
        assert!(err.position.column > 1);
    }

    #[test]
    fn dewey_ids_match_parsed_structure() {
        let doc = parse_document("<a><b/><b><c/></b></a>").unwrap();
        let a = doc.children(doc.document_root()).next().unwrap();
        let bs: Vec<_> = doc.children(a).collect();
        let c = doc.children(bs[1]).next().unwrap();
        assert_eq!(doc.dewey(a).components(), &[0]);
        assert_eq!(doc.dewey(bs[0]).components(), &[0, 0]);
        assert_eq!(doc.dewey(bs[1]).components(), &[0, 1]);
        assert_eq!(doc.dewey(c).components(), &[0, 1, 0]);
    }

    #[test]
    fn mixed_content_concatenates() {
        let doc = parse_document("<p>one <b>bold</b> two</p>").unwrap();
        let p = doc.children(doc.document_root()).next().unwrap();
        assert_eq!(doc.text(p), Some("one two"));
        let b = doc.children(p).next().unwrap();
        assert_eq!(doc.text(b), Some("bold"));
    }
}
