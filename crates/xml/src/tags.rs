//! Element-tag interning.
//!
//! Documents routinely contain millions of elements drawn from a few
//! dozen distinct tags; interning turns every structural comparison the
//! engine performs into a `u32` comparison and keeps per-node storage
//! fixed-size.

use std::collections::HashMap;
use std::fmt;

/// An interned element tag. Only meaningful relative to the
/// [`TagInterner`] (and hence [`crate::Document`]) that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub(crate) u32);

impl TagId {
    /// The raw interner index, usable as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a `TagId` from a raw index (e.g. read back from a
    /// snapshot's tag table). Only meaningful against the interner (or
    /// mapped tag table) it was originally produced by.
    pub fn from_index(index: usize) -> TagId {
        TagId(u32::try_from(index).expect("tag index exceeds u32"))
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagId({})", self.0)
    }
}

/// Bidirectional map between tag strings and dense [`TagId`]s.
#[derive(Clone, Default)]
pub struct TagInterner {
    by_name: HashMap<Box<str>, TagId>,
    names: Vec<Box<str>>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TagId(u32::try_from(self.names.len()).expect("more than u32::MAX distinct tags"));
        self.names.push(name.into());
        self.by_name.insert(name.into(), id);
        id
    }

    /// Looks up an already-interned tag without inserting.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.by_name.get(name).copied()
    }

    /// The tag string for `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this interner.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("book");
        let b = t.intern("title");
        assert_ne!(a, b);
        assert_eq!(t.intern("book"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut t = TagInterner::new();
        let id = t.intern("publisher");
        assert_eq!(t.name(id), "publisher");
        assert_eq!(t.get("publisher"), Some(id));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = TagInterner::new();
        for (i, tag) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(t.intern(tag).index(), i);
        }
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }
}
