//! Document statistics.
//!
//! Used by the data generator to hit target document sizes and by the
//! experiment harness to report workload characteristics.

use crate::node::Document;
use crate::tags::TagId;
use std::collections::HashMap;

/// Aggregate statistics over a [`Document`].
#[derive(Debug, Clone)]
pub struct DocumentStats {
    /// Element count (excludes the synthetic root).
    pub element_count: usize,
    /// Elements per tag.
    pub tag_counts: HashMap<TagId, usize>,
    /// Maximum element depth (document root = 0).
    pub max_depth: usize,
    /// Mean number of children over elements that have children.
    pub mean_fanout: f64,
    /// Total bytes of direct text content.
    pub text_bytes: usize,
    /// Serialized size in bytes (compact form).
    pub serialized_bytes: usize,
}

impl DocumentStats {
    /// Computes statistics in a single pass plus one serialization.
    pub fn compute(doc: &Document) -> Self {
        let mut tag_counts: HashMap<TagId, usize> = HashMap::new();
        let mut max_depth = 0usize;
        let mut text_bytes = 0usize;
        let mut parents = 0usize;
        let mut child_links = 0usize;
        for id in doc.elements() {
            let node = doc.node(id);
            *tag_counts.entry(node.tag).or_insert(0) += 1;
            max_depth = max_depth.max(node.dewey.depth());
            text_bytes += node.text.as_deref().map_or(0, str::len);
            if !node.children.is_empty() {
                parents += 1;
                child_links += node.children.len();
            }
        }
        let serialized =
            crate::writer::write_document(doc, &crate::writer::WriteOptions::default());
        DocumentStats {
            element_count: doc.len().saturating_sub(1),
            tag_counts,
            max_depth,
            mean_fanout: if parents == 0 {
                0.0
            } else {
                child_links as f64 / parents as f64
            },
            text_bytes,
            serialized_bytes: serialized.len(),
        }
    }

    /// Count of elements with the given tag name.
    pub fn count_for(&self, doc: &Document, tag: &str) -> usize {
        doc.tag_id(tag)
            .and_then(|id| self.tag_counts.get(&id))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn counts_are_correct() {
        let doc = parse_document("<a><b>xy</b><b><c>z</c></b></a>").unwrap();
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.element_count, 4);
        assert_eq!(stats.count_for(&doc, "b"), 2);
        assert_eq!(stats.count_for(&doc, "a"), 1);
        assert_eq!(stats.count_for(&doc, "nope"), 0);
        assert_eq!(stats.max_depth, 3);
        assert_eq!(stats.text_bytes, 3);
        assert!(stats.serialized_bytes > 0);
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.element_count, 0);
        assert_eq!(stats.max_depth, 0);
        assert_eq!(stats.mean_fanout, 0.0);
    }
}
