//! Document serialization.
//!
//! Used for document-size accounting in the experiments (the paper
//! reports document sizes in megabytes of serialized XML) and for
//! parser round-trip tests.

use crate::node::{Document, NodeId};
use std::fmt::Write as _;

/// Serialization options.
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Pretty-print with this many spaces per depth level; `None` writes
    /// compact output.
    pub indent: Option<usize>,
    /// Emit an `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
}

/// Serializes a whole document (the children of the synthetic root).
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    for child in doc.children(doc.document_root()) {
        write_node_into(doc, child, opts, 0, &mut out);
    }
    out
}

/// Serializes the subtree rooted at `node`.
pub fn write_node(doc: &Document, node: NodeId, opts: &WriteOptions) -> String {
    let mut out = String::new();
    write_node_into(doc, node, opts, 0, &mut out);
    out
}

fn write_node_into(
    doc: &Document,
    node: NodeId,
    opts: &WriteOptions,
    depth: usize,
    out: &mut String,
) {
    let data = doc.node(node);
    let tag = doc.tag_name(data.tag);
    if let Some(indent) = opts.indent {
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.extend(std::iter::repeat(' ').take(indent * depth));
    }
    out.push('<');
    out.push_str(tag);
    for (name, value) in &data.attributes {
        let _ = write!(out, " {}=\"", doc.tag_name(*name));
        escape_into(value, true, out);
        out.push('"');
    }
    let has_text = data.text.is_some();
    if data.children.is_empty() && !has_text {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(text) = &data.text {
        escape_into(text, false, out);
    }
    for &child in &data.children {
        write_node_into(doc, child, opts, depth + 1, out);
    }
    if let Some(indent) = opts.indent {
        if !data.children.is_empty() {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(indent * depth));
        }
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

fn escape_into(text: &str, in_attribute: bool, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn writes_compact_xml() {
        let doc = parse_document("<a x=\"1\"><b>t</b><c/></a>").unwrap();
        let out = write_document(&doc, &WriteOptions::default());
        assert_eq!(out, "<a x=\"1\"><b>t</b><c/></a>");
    }

    #[test]
    fn escapes_special_characters() {
        let doc = parse_document("<a y=\"&quot;q&quot;\">x &lt; &amp; y</a>").unwrap();
        let out = write_document(&doc, &WriteOptions::default());
        assert_eq!(out, "<a y=\"&quot;q&quot;\">x &lt; &amp; y</a>");
    }

    #[test]
    fn round_trip_is_stable() {
        let src = "<site><item id=\"i0\"><name>n &amp; m</name><incategory/></item></site>";
        let doc = parse_document(src).unwrap();
        let once = write_document(&doc, &WriteOptions::default());
        let doc2 = parse_document(&once).unwrap();
        let twice = write_document(&doc2, &WriteOptions::default());
        assert_eq!(once, twice);
        assert_eq!(once, src);
    }

    #[test]
    fn pretty_print_indents() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                indent: Some(2),
                declaration: true,
            },
        );
        assert!(out.starts_with("<?xml"));
        assert!(out.contains("\n  <b>"));
        assert!(out.contains("\n    <c/>"));
    }

    #[test]
    fn write_node_serializes_subtree_only() {
        let doc = parse_document("<a><b>t</b><c/></a>").unwrap();
        let a = doc.children(doc.document_root()).next().unwrap();
        let b = doc.children(a).next().unwrap();
        assert_eq!(write_node(&doc, b, &WriteOptions::default()), "<b>t</b>");
    }
}
