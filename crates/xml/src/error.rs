//! Parser error types with source positions.

use std::fmt;

/// A line/column position in the XML source (1-based, columns in chars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number, counted in characters.
    pub column: u32,
    /// Byte offset into the source.
    pub offset: usize,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// What went wrong during parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct (tag, comment, CDATA, ...).
    UnexpectedEof {
        /// The construct being parsed when input ran out.
        context: &'static str,
    },
    /// A character that cannot start/continue the current construct.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// What the parser was expecting instead.
        expected: &'static str,
    },
    /// `</b>` closing an element opened as `<a>`.
    MismatchedClosingTag {
        /// Tag of the innermost open element.
        opened: String,
        /// Tag found in the closing tag.
        closed: String,
    },
    /// A closing tag with no matching open element.
    UnmatchedClosingTag {
        /// The closing tag's name.
        tag: String,
    },
    /// Elements left open at end of input.
    UnclosedElements {
        /// The open tags, innermost last.
        tags: Vec<String>,
    },
    /// An invalid or unsupported entity reference such as `&unknown;`.
    InvalidEntity {
        /// The entity name (without `&`/`;`).
        entity: String,
    },
    /// An invalid element or attribute name.
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// The same attribute appears twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// Non-whitespace text outside any element.
    TextOutsideRoot,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while parsing {context}")
            }
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::MismatchedClosingTag { opened, closed } => {
                write!(
                    f,
                    "closing tag </{closed}> does not match open element <{opened}>"
                )
            }
            ParseErrorKind::UnmatchedClosingTag { tag } => {
                write!(f, "closing tag </{tag}> has no matching open element")
            }
            ParseErrorKind::UnclosedElements { tags } => {
                write!(f, "input ended with unclosed elements: {}", tags.join(", "))
            }
            ParseErrorKind::InvalidEntity { entity } => {
                write!(f, "invalid entity reference &{entity};")
            }
            ParseErrorKind::InvalidName { name } => write!(f, "invalid name {name:?}"),
            ParseErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::TextOutsideRoot => write!(f, "text content outside any element"),
        }
    }
}

/// A positioned XML parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where in the source it went wrong.
    pub position: Position,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.position)
    }
}

impl std::error::Error for ParseError {}
