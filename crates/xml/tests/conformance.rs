//! Parser conformance battery: a wide spread of well-formed documents
//! that must parse (with the expected shape) and malformed documents
//! that must fail with the right error class — plus invariants that
//! hold for anything that parses.

use whirlpool_xml::{parse_document, ParseErrorKind};

#[track_caller]
fn ok(src: &str) -> whirlpool_xml::Document {
    parse_document(src).unwrap_or_else(|e| panic!("{src:?} should parse: {e}"))
}

#[track_caller]
fn fails(src: &str) -> ParseErrorKind {
    parse_document(src)
        .expect_err(&format!("{src:?} should NOT parse"))
        .kind
}

#[test]
fn well_formed_battery() {
    // Minimal and self-closing forms.
    ok("<a/>");
    ok("<a></a>");
    ok("<a ></a >");
    ok("<a  x=\"1\"  y=\"2\" />");
    // Unicode content and tags.
    ok("<données>café ☕ 中文</données>");
    // Deep nesting (recursion-free parser must not blow the stack).
    let deep = format!("{}{}", "<a>".repeat(5_000), "</a>".repeat(5_000));
    ok(&deep);
    // Wide fanout.
    let wide = format!("<r>{}</r>", "<x/>".repeat(50_000));
    assert_eq!(ok(&wide).len(), 50_002);
    // All entity forms.
    ok("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x41;&#x2603;</a>");
    // Comments everywhere, including double dashes inside text.
    ok("<!--c--><a><!----><b/><!--x-y--></a><!--end-->");
    // Processing instructions & declaration.
    ok("<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?><a><?target data?></a>");
    // DOCTYPE with internal subset.
    ok("<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> <!ENTITY % p \"x\"> ]><r/>");
    // CDATA with markup-like content.
    ok("<a><![CDATA[<not><xml>&amp;]]></a>");
    // Empty CDATA.
    ok("<a><![CDATA[]]></a>");
    // Whitespace-only text outside the root is fine.
    ok("  \n\t <a/> \n ");
    // Names with the full allowed character set.
    ok("<ns:tag-name_1.2 attr-x=\"v\"/>");
    // A forest of roots.
    let forest = ok("<a/><b/><c/>");
    assert_eq!(forest.children(forest.document_root()).count(), 3);
}

#[test]
fn text_content_is_decoded_and_trimmed() {
    let doc = ok("<a>  one &amp; two  </a>");
    let a = doc.children(doc.document_root()).next().unwrap();
    assert_eq!(doc.text(a), Some("one & two"));

    let doc = ok("<a>start<b/>middle<c/>end</a>");
    let a = doc.children(doc.document_root()).next().unwrap();
    assert_eq!(doc.text(a), Some("start middle end"));
}

#[test]
fn malformed_battery() {
    use ParseErrorKind as K;
    // Tag soup.
    assert!(matches!(fails("<a>"), K::UnclosedElements { .. }));
    assert!(matches!(fails("</a>"), K::UnmatchedClosingTag { .. }));
    assert!(matches!(fails("<a></b>"), K::MismatchedClosingTag { .. }));
    assert!(matches!(
        fails("<a><b></a></b>"),
        K::MismatchedClosingTag { .. }
    ));
    // Truncations of every construct.
    assert!(matches!(fails("<a"), K::UnexpectedEof { .. }));
    assert!(matches!(fails("<a x="), K::UnexpectedEof { .. }));
    assert!(matches!(fails("<a x=\"v"), K::UnexpectedEof { .. }));
    assert!(matches!(
        fails("<!-- never closed"),
        K::UnexpectedEof { .. }
    ));
    assert!(matches!(
        fails("<a><![CDATA[oops</a>"),
        K::UnexpectedEof { .. }
    ));
    assert!(matches!(fails("<!DOCTYPE r ["), K::UnexpectedEof { .. }));
    assert!(matches!(fails("<a><?pi"), K::UnexpectedEof { .. }));
    // Attribute problems.
    assert!(matches!(fails("<a x=1/>"), K::UnexpectedChar { .. }));
    assert!(matches!(fails("<a x \"1\"/>"), K::UnexpectedChar { .. }));
    assert!(matches!(
        fails("<a x=\"1\" x=\"2\"/>"),
        K::DuplicateAttribute { .. }
    ));
    // Bad names.
    assert!(matches!(fails("<1a/>"), K::UnexpectedChar { .. }));
    assert!(matches!(fails("< a/>"), K::UnexpectedChar { .. }));
    // Entities.
    assert!(matches!(fails("<a>&bogus;</a>"), K::InvalidEntity { .. }));
    assert!(matches!(fails("<a>&#xZZ;</a>"), K::InvalidEntity { .. }));
    assert!(matches!(
        fails("<a>&#1114112;</a>"),
        K::InvalidEntity { .. }
    )); // > U+10FFFF
    assert!(matches!(fails("<a>& amp;</a>"), K::InvalidEntity { .. }));
    // Content outside the root.
    assert!(matches!(fails("junk<a/>"), K::TextOutsideRoot));
    assert!(matches!(fails("<a/>junk"), K::TextOutsideRoot));
    // Self-closing slash in the wrong place.
    assert!(matches!(fails("<a /b>"), K::UnexpectedChar { .. }));
}

#[test]
fn structural_invariants_hold_for_parsed_documents() {
    let doc = ok("<site><regions><europe><item id=\"i0\"><name>n</name>\
         <description><parlist><listitem><text>t<bold>b</bold></text>\
         </listitem></parlist></description></item></europe></regions></site>");
    // Every element's Dewey id is its parent's id extended by one
    // component, and NodeIds are assigned in document order.
    let mut prev = None;
    for id in doc.elements() {
        let parent = doc.parent(id).expect("elements have parents");
        assert!(doc.dewey(parent).is_parent_of(doc.dewey(id)));
        assert!(parent < id);
        if let Some(p) = prev {
            assert!(doc.dewey(p) < doc.dewey(id), "document order");
        }
        prev = Some(id);
    }
    // descendants_or_self agrees with Dewey ancestry.
    for a in doc.elements() {
        for b in doc.descendants_or_self(a).skip(1) {
            assert!(doc.is_ancestor(a, b));
        }
    }
}

#[test]
fn error_positions_are_line_accurate() {
    let err = parse_document("<a>\n<b>\n<c></d>\n</b>\n</a>").unwrap_err();
    assert_eq!(err.position.line, 3);
    let err = parse_document("<a x=\"1\"\n  x=\"2\"/>").unwrap_err();
    assert_eq!(err.position.line, 2);
}

#[test]
fn huge_attribute_values_round_trip() {
    let big = "v".repeat(100_000);
    let doc = ok(&format!("<a x=\"{big}\"/>"));
    let a = doc.children(doc.document_root()).next().unwrap();
    assert_eq!(doc.attribute(a, "x").map(str::len), Some(100_000));
}
