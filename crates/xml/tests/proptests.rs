//! Property-based tests for the XML substrate: Dewey algebra laws and
//! parser/writer round-trips over generated documents.

use proptest::prelude::*;
use whirlpool_xml::{parse_document, write_document, Dewey, DocumentBuilder, WriteOptions};

fn dewey_strategy() -> impl Strategy<Value = Dewey> {
    prop::collection::vec(0u32..6, 0..6).prop_map(Dewey::from_components)
}

proptest! {
    /// Lexicographic order on Dewey ids is total and consistent with
    /// ancestry: an ancestor always precedes its descendants.
    #[test]
    fn ancestor_precedes_descendant(a in dewey_strategy(), b in dewey_strategy()) {
        if a.is_ancestor_of(&b) {
            prop_assert!(a < b);
            prop_assert!(!b.is_ancestor_of(&a));
        }
    }

    /// parent-child implies ancestor-descendant with depth difference 1.
    #[test]
    fn parent_is_ancestor(a in dewey_strategy(), b in dewey_strategy()) {
        if a.is_parent_of(&b) {
            prop_assert!(a.is_ancestor_of(&b));
            prop_assert_eq!(b.depth(), a.depth() + 1);
            prop_assert_eq!(b.parent(), Some(a.clone()));
        }
    }

    /// is_ancestor_at_depth generalizes both axes.
    #[test]
    fn ancestor_at_depth_consistency(a in dewey_strategy(), b in dewey_strategy()) {
        prop_assert_eq!(a.is_parent_of(&b), a.is_ancestor_at_depth(&b, 1));
        let any_depth = (1..=8).any(|d| a.is_ancestor_at_depth(&b, d));
        prop_assert_eq!(a.is_ancestor_of(&b), any_depth);
    }

    /// Every descendant falls strictly inside the half-open Dewey range
    /// (self, descendant_upper_bound), and non-descendants fall outside.
    #[test]
    fn descendant_range_is_tight(a in dewey_strategy(), b in dewey_strategy()) {
        prop_assume!(a.depth() > 0);
        let ub = a.descendant_upper_bound().unwrap();
        let in_range = a < b && b < ub;
        prop_assert_eq!(a.is_ancestor_of(&b), in_range);
    }

    /// child() then parent() round-trips.
    #[test]
    fn child_parent_roundtrip(a in dewey_strategy(), ord in 0u32..100) {
        prop_assert_eq!(a.child(ord).parent(), Some(a));
    }
}

// ---------------------------------------------------------------------
// Random document generation for parser round-trips.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Tree {
    Node {
        tag: usize,
        text: Option<String>,
        children: Vec<Tree>,
    },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf =
        (0usize..8, prop::option::of("[a-z <>&\"']{0,12}")).prop_map(|(tag, text)| Tree::Node {
            tag,
            text,
            children: vec![],
        });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            0usize..8,
            prop::option::of("[a-z <>&\"']{0,12}"),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, text, children)| Tree::Node {
                tag,
                text,
                children,
            })
    })
}

const TAGS: [&str; 8] = ["a", "b", "c", "item", "name", "text", "bold", "keyword"];

fn build(tree: &Tree, b: &mut DocumentBuilder) {
    let Tree::Node {
        tag,
        text,
        children,
    } = tree;
    b.open(TAGS[*tag]);
    if let Some(t) = text {
        b.text(t);
    }
    for c in children {
        build(c, b);
    }
    b.close();
}

proptest! {
    /// write → parse → write is a fixpoint for any generated document,
    /// including text needing entity escaping.
    #[test]
    fn writer_parser_roundtrip(tree in tree_strategy()) {
        let mut builder = DocumentBuilder::new();
        build(&tree, &mut builder);
        let doc = builder.finish();
        let opts = WriteOptions::default();
        let first = write_document(&doc, &opts);
        let reparsed = parse_document(&first).unwrap();
        let second = write_document(&reparsed, &opts);
        prop_assert_eq!(first, second);
    }

    /// Parsed documents assign Dewey ids consistent with parent links,
    /// and NodeId order is document (pre-)order.
    #[test]
    fn parsed_dewey_invariants(tree in tree_strategy()) {
        let mut builder = DocumentBuilder::new();
        build(&tree, &mut builder);
        let doc = builder.finish();
        for id in doc.elements() {
            let parent = doc.parent(id).unwrap();
            prop_assert!(doc.dewey(parent).is_parent_of(doc.dewey(id)));
            prop_assert!(parent < id, "parents precede children in NodeId order");
        }
        // Dewey order agrees with NodeId order.
        let mut prev: Option<whirlpool_xml::NodeId> = None;
        for id in doc.elements() {
            if let Some(p) = prev {
                prop_assert!(doc.dewey(p) < doc.dewey(id));
            }
            prev = Some(id);
        }
    }
}
