//! Regression tests: the parser must reject — never panic on —
//! truncated and ill-nested documents, and report a structured error
//! with a sane position.

use whirlpool_xml::{parse_document, ParseErrorKind};

const WELL_FORMED: &str = "<site><regions><item id=\"i1\"><name>gold &amp; \
    silver</name><desc><![CDATA[5 < 7]]></desc></item><!-- c --></regions></site>";

/// Truncating a valid document at every non-empty byte boundary yields
/// a structured error — never a panic, never a success with a mangled
/// tree. (The empty prefix parses as the empty document and is skipped.)
#[test]
fn every_prefix_truncation_is_rejected_cleanly() {
    assert!(parse_document(WELL_FORMED).is_ok());
    for cut in 1..WELL_FORMED.len() {
        if !WELL_FORMED.is_char_boundary(cut) {
            continue;
        }
        let prefix = &WELL_FORMED[..cut];
        let result = parse_document(prefix);
        assert!(
            result.is_err(),
            "prefix of length {cut} unexpectedly parsed: {prefix:?}"
        );
        let err = result.unwrap_err();
        // The reported position must lie within the input.
        assert!(
            err.position.offset <= prefix.len(),
            "error position {} beyond input length {} for {prefix:?}",
            err.position.offset,
            prefix.len()
        );
    }
}

/// Ill-nested closing tags are rejected at every depth, naming the
/// mismatched pair.
#[test]
fn ill_nesting_is_rejected_at_depth() {
    for (src, opened, closed) in [
        ("<a><b></a></b>", "b", "a"),
        ("<a><b><c></b></c></a>", "c", "b"),
        ("<r><x/><y></r></y>", "y", "r"),
    ] {
        match parse_document(src) {
            Err(e) => match e.kind {
                ParseErrorKind::MismatchedClosingTag {
                    opened: o,
                    closed: c,
                } => {
                    assert_eq!((o.as_str(), c.as_str()), (opened, closed), "{src:?}");
                }
                other => panic!("{src:?}: expected MismatchedClosingTag, got {other:?}"),
            },
            Ok(_) => panic!("{src:?} unexpectedly parsed"),
        }
    }
}

/// Errors render through Display without panicking (the CLI prints
/// them straight to the user).
#[test]
fn errors_display_cleanly() {
    let err = parse_document("<a><b></a></b>").unwrap_err();
    let text = err.to_string();
    assert!(text.contains('a') && text.contains('b'), "{text}");
    let err = parse_document("<a>").unwrap_err();
    assert!(!err.to_string().is_empty());
}
