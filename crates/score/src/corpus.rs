//! Corpus-level idf: Definition 4.2 aggregated across shards.
//!
//! The paper computes idf over one document. A collection of documents
//! (or subtree shards of one large document) wants a *single* weight
//! table so scores are comparable across shards: an answer's rank must
//! not depend on which shard happened to hold it. [`CorpusStats`]
//! therefore aggregates the raw document-frequency counts of
//! [`crate::tfidf::idf_counts`] — candidate-answer populations and
//! per-predicate satisfying counts — over every shard, and derives one
//! [`TfIdfModel`] from the pooled counts:
//!
//! `idf_corpus(p) = ln( Σ_s population_s / max(Σ_s satisfying_s, 1) )`
//!
//! For a single-shard corpus this reduces exactly to the per-document
//! model ([`TfIdfModel::build`]), which the tests pin down.

use crate::model::{Normalization, TfIdfModel};
use crate::tfidf::{self, ComponentPredicate};
use whirlpool_index::{DocView, TagIndex, TagIndexView};
use whirlpool_pattern::TreePattern;
use whirlpool_xml::Document;

/// Per-predicate document-frequency counts, summed over the shards fed
/// to [`CorpusStats::add_shard`].
#[derive(Debug, Clone)]
pub struct CorpusStats {
    /// Candidate answer nodes (nodes carrying the answer tag) across
    /// the corpus. The population is predicate-independent: every
    /// component predicate of a query ranges over the same answer
    /// candidates.
    population: u64,
    /// `[exact, relaxed]` satisfying-node counts per query node
    /// (indexed by `QNodeId`; the root row stays zero — the root
    /// carries no component predicate).
    satisfying: Vec<[u64; 2]>,
    /// The exact and relaxed component predicates, kept so shards can
    /// be added incrementally without recompiling the pattern.
    preds: Vec<(ComponentPredicate, ComponentPredicate)>,
    shards: usize,
}

impl CorpusStats {
    /// Empty statistics for `pattern`: no shards seen yet.
    pub fn new(pattern: &TreePattern) -> Self {
        let preds = tfidf::component_predicates(pattern)
            .into_iter()
            .map(|pred| {
                let relaxed = ComponentPredicate {
                    qnode: pred.qnode,
                    axis: pred.axis.relaxed(),
                    tag: pred.tag.clone(),
                    value: pred.value.clone(),
                    attrs: pred.attrs.clone(),
                };
                (pred, relaxed)
            })
            .collect();
        CorpusStats {
            population: 0,
            satisfying: vec![[0, 0]; pattern.len()],
            preds,
            shards: 0,
        }
    }

    /// Folds one shard's document-frequency counts into the totals.
    /// `answer_tag` is the pattern root's tag (pass
    /// `&pattern.node(pattern.root()).tag`).
    pub fn add_shard(&mut self, doc: &Document, index: &TagIndex, answer_tag: &str) {
        self.add_shard_view(doc.into(), index.view(), answer_tag);
    }

    /// [`add_shard`](CorpusStats::add_shard) over borrowed views — the
    /// form snapshot-backed shards use.
    pub fn add_shard_view(&mut self, doc: DocView<'_>, index: TagIndexView<'_>, answer_tag: &str) {
        let mut population_seen = None;
        for (exact, relaxed) in &self.preds {
            let (pop, sat_exact) = tfidf::idf_counts_view(doc, index, answer_tag, exact);
            let (_, sat_relaxed) = tfidf::idf_counts_view(doc, index, answer_tag, relaxed);
            self.satisfying[exact.qnode.index()][0] += sat_exact;
            self.satisfying[exact.qnode.index()][1] += sat_relaxed;
            population_seen = Some(pop);
        }
        // Single-node patterns have no component predicates; the
        // population still has to be counted for them.
        let pop = match population_seen {
            Some(p) => p,
            None => count_population(&doc, &index, answer_tag),
        };
        self.population += pop;
        self.shards += 1;
    }

    /// Folds one shard's *estimated* counts from a tag-count synopsis —
    /// the form lazy (unattached) shards use, so corpus-level idf never
    /// forces an attach. Tag counts cannot express per-predicate
    /// structure, so each predicate's satisfying count is taken as
    /// `min(population, count(pred tag))` for both the exact and
    /// relaxed variant.
    ///
    /// The estimate biases idf *downward* (satisfying counts are upper
    /// bounds), which only flattens the weight table — it cannot affect
    /// correctness, because a collection derives one model for *all*
    /// its shards and the pruning invariant (DESIGN.md §12) only needs
    /// ceilings and scores to come from the same model.
    pub fn add_shard_synopsis(
        &mut self,
        synopsis: &whirlpool_index::ShardSynopsis,
        answer_tag: &str,
    ) {
        let pop = if answer_tag == whirlpool_pattern::WILDCARD {
            synopsis.elements()
        } else {
            synopsis.tag_count(answer_tag)
        };
        for (exact, _) in &self.preds {
            let sat = if exact.tag == whirlpool_pattern::WILDCARD {
                pop
            } else {
                pop.min(synopsis.tag_count(&exact.tag))
            };
            self.satisfying[exact.qnode.index()][0] += sat;
            self.satisfying[exact.qnode.index()][1] += sat;
        }
        self.population += pop;
        self.shards += 1;
    }

    /// Shards folded in so far.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total candidate-answer population across the corpus.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The corpus-level score model: one weight table derived from the
    /// pooled counts, shared by every shard so cross-shard scores (and
    /// the global top-k threshold) are comparable. Exact weights
    /// dominate relaxed ones by the same Definition 4.2 monotonicity
    /// argument as the per-document model.
    pub fn model(&self, normalization: Normalization) -> TfIdfModel {
        let mut weights = vec![[0.0, 0.0]; self.satisfying.len()];
        for (exact, _) in &self.preds {
            let [sat_exact, sat_relaxed] = self.satisfying[exact.qnode.index()];
            let e = tfidf::idf_from_counts(self.population, sat_exact);
            let r = tfidf::idf_from_counts(self.population, sat_relaxed);
            weights[exact.qnode.index()] = [e.max(0.0), r.min(e).max(0.0)];
        }
        TfIdfModel::from_weights(weights, normalization)
    }
}

/// Counts the nodes carrying `answer_tag` in one shard.
fn count_population(doc: &DocView<'_>, index: &TagIndexView<'_>, answer_tag: &str) -> u64 {
    if answer_tag == whirlpool_pattern::WILDCARD {
        doc.elements().count() as u64
    } else {
        match doc.tag_id(answer_tag) {
            Some(tag) => index.nodes_with_tag(tag).len() as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoreModel;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_xml::parse_document;

    fn setup(src: &str) -> (Document, TagIndex) {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        (doc, index)
    }

    const SHARD_A: &str = "<shelf>\
        <book><title>a</title><isbn>1</isbn><price>9</price></book>\
        <book><title>b</title><isbn>2</isbn></book>\
        </shelf>";
    const SHARD_B: &str = "<shelf>\
        <book><title>c</title></book>\
        <book><info><title>d</title></info></book>\
        </shelf>";

    #[test]
    fn single_shard_corpus_reduces_to_the_per_document_model() {
        let (doc, index) = setup(SHARD_A);
        let q = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        for norm in [
            Normalization::None,
            Normalization::Sparse,
            Normalization::Dense,
        ] {
            let per_doc = TfIdfModel::build(&doc, &index, &q, norm);
            let mut stats = CorpusStats::new(&q);
            stats.add_shard(&doc, &index, &q.node(q.root()).tag);
            let corpus = stats.model(norm);
            for s in q.server_ids() {
                let a = per_doc.weights(s);
                let b = corpus.weights(s);
                assert!((a[0] - b[0]).abs() < 1e-12, "exact {a:?} vs {b:?}");
                assert!((a[1] - b[1]).abs() < 1e-12, "relaxed {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn corpus_counts_pool_across_shards() {
        let (da, ia) = setup(SHARD_A);
        let (db, ib) = setup(SHARD_B);
        let q = parse_pattern("//book[./title]").unwrap();
        let mut stats = CorpusStats::new(&q);
        stats.add_shard(&da, &ia, "book");
        stats.add_shard(&db, &ib, "book");
        assert_eq!(stats.shards(), 2);
        // 4 books total; 3 have a child title (the 4th holds it under
        // info, reachable only by the relaxed predicate).
        assert_eq!(stats.population(), 4);
        let model = stats.model(Normalization::None);
        let server = q.server_ids().next().unwrap();
        let [exact, relaxed] = model.weights(server);
        assert!((exact - (4.0f64 / 3.0).ln()).abs() < 1e-12, "{exact}");
        assert!((relaxed - (4.0f64 / 4.0).ln()).abs() < 1e-12, "{relaxed}");
        assert!(exact >= relaxed);
    }

    #[test]
    fn corpus_idf_differs_from_any_single_shard() {
        // The point of pooling: shard B's books lack isbn entirely, so a
        // per-shard model would give B a zero isbn weight while A gives
        // ln(1) = 0 too (every A book has one); the corpus sees 2 of 4.
        let (da, ia) = setup(SHARD_A);
        let (db, ib) = setup(SHARD_B);
        let q = parse_pattern("//book[./isbn]").unwrap();
        let server = q.server_ids().next().unwrap();
        let mut stats = CorpusStats::new(&q);
        stats.add_shard(&da, &ia, "book");
        stats.add_shard(&db, &ib, "book");
        let corpus = stats.model(Normalization::None);
        let a_only = TfIdfModel::build(&da, &ia, &q, Normalization::None);
        let b_only = TfIdfModel::build(&db, &ib, &q, Normalization::None);
        assert!((corpus.max_contribution(server) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(a_only.max_contribution(server), 0.0);
        assert!((b_only.max_contribution(server) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_scores_zero() {
        let q = parse_pattern("//book[./title]").unwrap();
        let stats = CorpusStats::new(&q);
        let model = stats.model(Normalization::Sparse);
        for s in q.server_ids() {
            assert_eq!(model.max_contribution(s), 0.0);
        }
    }

    #[test]
    fn synopsis_estimates_count_without_structure() {
        let (doc, _) = setup(SHARD_A);
        let syn = whirlpool_index::ShardSynopsis::build(&doc);
        let q = parse_pattern("//book[./isbn]").unwrap();
        let mut stats = CorpusStats::new(&q);
        stats.add_shard_synopsis(&syn, "book");
        assert_eq!(stats.shards(), 1);
        assert_eq!(stats.population(), 2);
        let model = stats.model(Normalization::None);
        let server = q.server_ids().next().unwrap();
        let [exact, relaxed] = model.weights(server);
        // min(pop=2, isbn count=2) = 2 satisfying → idf ln(2/2) = 0,
        // same for both variants (the synopsis sees no structure).
        assert_eq!(exact, 0.0);
        assert_eq!(relaxed, 0.0);

        // A shard with fewer isbns than books yields a positive weight.
        let (db, _) = setup(SHARD_B);
        let syn_b = whirlpool_index::ShardSynopsis::build(&db);
        stats.add_shard_synopsis(&syn_b, "book");
        assert_eq!(stats.population(), 4);
        let model = stats.model(Normalization::None);
        let [exact, relaxed] = model.weights(server);
        assert!((exact - (4.0f64 / 2.0).ln()).abs() < 1e-12, "{exact}");
        assert_eq!(exact, relaxed);
    }

    #[test]
    fn single_node_patterns_still_count_the_population() {
        let (doc, index) = setup(SHARD_A);
        let q = parse_pattern("//book").unwrap();
        let mut stats = CorpusStats::new(&q);
        stats.add_shard(&doc, &index, "book");
        assert_eq!(stats.population(), 2);
    }
}
