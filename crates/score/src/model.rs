//! Incremental score models for the evaluation engines.
//!
//! A server extending a partial match with a binding needs that
//! binding's score contribution immediately ("incremental assignment of
//! updated scores", §5.2.1), and the router/pruner need each server's
//! *maximum possible* contribution to compute maximum possible final
//! scores. `ScoreModel` is that interface; the engines are generic over
//! it.

use crate::score::Score;
use crate::tfidf::{self, ComponentPredicate};
use std::collections::HashMap;
use whirlpool_index::{DocView, TagIndex, TagIndexView};
use whirlpool_pattern::{QNodeId, TreePattern};
use whirlpool_xml::{Document, NodeId};

/// How a binding satisfied its component predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchLevel {
    /// Every original (unrelaxed) predicate relating the binding to the
    /// instantiated part of the match holds.
    Exact,
    /// Only the relaxed (ancestor-descendant) forms hold.
    Relaxed,
}

/// Per-binding score contributions.
///
/// Implementations must be cheap (`O(1)` per call): the engines call
/// `contribution` once per candidate per server operation.
pub trait ScoreModel: Send + Sync {
    /// Contribution of binding `node` at query node `server` when the
    /// binding satisfies its predicates at `level`. The pattern root's
    /// own contribution is queried with `server == QNodeId::ROOT` (its
    /// level is always [`MatchLevel::Exact`]).
    fn contribution(&self, server: QNodeId, node: NodeId, level: MatchLevel) -> f64;

    /// Upper bound of `contribution` over all nodes and levels at
    /// `server`. Used for maximum-possible-final-score computation; an
    /// unsound (too small) bound breaks pruning correctness.
    fn max_contribution(&self, server: QNodeId) -> f64;

    /// Upper bound of `contribution` over all nodes at `server` when the
    /// binding only reaches the *relaxed* level. Routing estimators use
    /// this to predict the score of approximate bindings; the default is
    /// the (always valid) exact bound.
    fn max_relaxed_contribution(&self, server: QNodeId) -> f64 {
        self.max_contribution(server)
    }

    /// Upper bound over the root contribution.
    fn max_root_contribution(&self) -> f64 {
        self.max_contribution(QNodeId::ROOT)
    }

    /// Sum of all per-server maxima plus the root maximum — the highest
    /// score any answer could reach.
    fn max_total(&self, servers: &[QNodeId]) -> Score {
        let total = self.max_root_contribution()
            + servers
                .iter()
                .map(|&s| self.max_contribution(s))
                .sum::<f64>();
        Score::new(total)
    }
}

/// The paper's two score normalizations (§6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Raw idf weights.
    None,
    /// "sparse, where for each predicate, scores are normalized between
    /// 0 and 1" — per-predicate normalization; exact satisfaction of any
    /// predicate scores 1.0. Final scores spread out, enabling pruning.
    #[default]
    Sparse,
    /// "dense, where score normalization is applied over all predicates"
    /// — global normalization; predicates keep their relative skew and
    /// final scores bunch together, hindering pruning.
    Dense,
}

/// tf*idf-derived weights: a binding at server `qi` contributes the idf
/// of the component predicate `p(q0, qi)` at the satisfied level (the
/// relaxed predicate is satisfied by more nodes, hence has smaller idf —
/// so exact ≥ relaxed by construction).
pub struct TfIdfModel {
    /// `[exact, relaxed]` weight per query node (index = QNodeId).
    weights: Vec<[f64; 2]>,
}

impl TfIdfModel {
    /// Derives weights from the document per Definitions 4.1/4.2 and
    /// applies `normalization`.
    pub fn build(
        doc: &Document,
        index: &TagIndex,
        pattern: &TreePattern,
        normalization: Normalization,
    ) -> Self {
        Self::build_view(doc.into(), index.view(), pattern, normalization)
    }

    /// [`build`](TfIdfModel::build) over borrowed views — the form the
    /// snapshot-attached paths use (no owned `Document` exists there).
    pub fn build_view(
        doc: DocView<'_>,
        index: TagIndexView<'_>,
        pattern: &TreePattern,
        normalization: Normalization,
    ) -> Self {
        let answer_tag = &pattern.node(pattern.root()).tag;
        let preds = tfidf::component_predicates(pattern);
        let mut weights = vec![[0.0, 0.0]; pattern.len()];

        // Root contribution: idf of the root's own existence predicate
        // would require a "document" population; following the paper's
        // examples (scores come from the join predicates) the root
        // contributes 0 and all scoring happens at the servers.
        for pred in &preds {
            let exact = tfidf::idf_view(doc, index, answer_tag, pred);
            let relaxed_pred = ComponentPredicate {
                qnode: pred.qnode,
                axis: pred.axis.relaxed(),
                tag: pred.tag.clone(),
                value: pred.value.clone(),
                attrs: pred.attrs.clone(),
            };
            let relaxed = tfidf::idf_view(doc, index, answer_tag, &relaxed_pred);
            // Definition 4.2 guarantees relaxed ≤ exact (more nodes
            // satisfy the weaker predicate); clamp for degenerate
            // documents where both are 0.
            weights[pred.qnode.index()] = [exact.max(0.0), relaxed.min(exact).max(0.0)];
        }

        apply_normalization(&mut weights, normalization);
        TfIdfModel { weights }
    }

    /// Builds a model directly from an `[exact, relaxed]` weight table
    /// (one row per query node, root row included). Used by the corpus
    /// builder ([`crate::CorpusStats::model`]), which derives its idf
    /// weights from counts aggregated across shards rather than from one
    /// document.
    pub(crate) fn from_weights(mut weights: Vec<[f64; 2]>, normalization: Normalization) -> Self {
        apply_normalization(&mut weights, normalization);
        TfIdfModel { weights }
    }

    /// The `[exact, relaxed]` weight pair for a query node.
    pub fn weights(&self, qnode: QNodeId) -> [f64; 2] {
        self.weights[qnode.index()]
    }
}

/// Applies one of the paper's §6.2.2 normalizations to a raw
/// `[exact, relaxed]` weight table in place.
fn apply_normalization(weights: &mut [[f64; 2]], normalization: Normalization) {
    match normalization {
        Normalization::None => {}
        Normalization::Sparse => {
            for w in weights.iter_mut() {
                let max = w[0];
                if max > 0.0 {
                    w[0] /= max;
                    w[1] /= max;
                }
            }
        }
        Normalization::Dense => {
            let max = weights.iter().map(|w| w[0]).fold(0.0f64, f64::max);
            if max > 0.0 {
                for w in weights.iter_mut() {
                    w[0] /= max;
                    w[1] /= max;
                }
            }
        }
    }
}

impl ScoreModel for TfIdfModel {
    fn contribution(&self, server: QNodeId, _node: NodeId, level: MatchLevel) -> f64 {
        let w = self.weights[server.index()];
        match level {
            MatchLevel::Exact => w[0],
            MatchLevel::Relaxed => w[1],
        }
    }

    fn max_contribution(&self, server: QNodeId) -> f64 {
        self.weights[server.index()][0]
    }

    fn max_relaxed_contribution(&self, server: QNodeId) -> f64 {
        self.weights[server.index()][1]
    }
}

/// Explicit per-node scores, as in the paper's Figure 3 example where
/// each title/location/price match carries a given score. Unknown
/// `(server, node)` pairs contribute `0`.
pub struct FixedScores {
    scores: HashMap<(QNodeId, NodeId), f64>,
    max_per_server: Vec<f64>,
}

impl FixedScores {
    /// Builds from explicit entries. `server_count` = number of query
    /// nodes (root included).
    pub fn new(server_count: usize, entries: &[(QNodeId, NodeId, f64)]) -> Self {
        let mut scores = HashMap::with_capacity(entries.len());
        let mut max_per_server = vec![0.0f64; server_count];
        for &(server, node, value) in entries {
            assert!(value.is_finite(), "non-finite fixed score");
            scores.insert((server, node), value);
            let m = &mut max_per_server[server.index()];
            *m = m.max(value);
        }
        FixedScores {
            scores,
            max_per_server,
        }
    }
}

impl ScoreModel for FixedScores {
    /// Level-insensitive: the example's scores already encode match
    /// quality.
    fn contribution(&self, server: QNodeId, node: NodeId, _level: MatchLevel) -> f64 {
        self.scores.get(&(server, node)).copied().unwrap_or(0.0)
    }

    fn max_contribution(&self, server: QNodeId) -> f64 {
        self.max_per_server
            .get(server.index())
            .copied()
            .unwrap_or(0.0)
    }
}

/// Deterministic pseudo-random per-(server, node) scores — the paper's
/// "randomly generated sparse and dense scoring functions".
pub struct RandomScores {
    seed: u64,
    /// Score range per level: exact draws from `[lo_exact, 1]`, relaxed
    /// from `[lo_relaxed, lo_exact]` scaled.
    dense: bool,
    server_count: usize,
}

impl RandomScores {
    /// Scores spread over the full [0, 1] range (fast pruning).
    pub fn sparse(seed: u64, server_count: usize) -> Self {
        RandomScores {
            seed,
            dense: false,
            server_count,
        }
    }

    /// Scores bunched in [0.8, 1.0] (slow pruning).
    pub fn dense(seed: u64, server_count: usize) -> Self {
        RandomScores {
            seed,
            dense: true,
            server_count,
        }
    }

    /// SplitMix64 over (seed, server, node) — stable across runs and
    /// platforms.
    fn unit(&self, server: QNodeId, node: NodeId) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((server.0 as u64) << 32)
            .wrapping_add(node.index() as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl ScoreModel for RandomScores {
    fn contribution(&self, server: QNodeId, node: NodeId, level: MatchLevel) -> f64 {
        let u = self.unit(server, node);
        let base = if self.dense {
            // Dense: all scores bunch in [0.80, 1.00] — final scores are
            // close together, which hinders pruning.
            0.80 + 0.20 * u
        } else {
            // Sparse: full [0, 1] spread — a few matches score high,
            // raising the k-th threshold quickly.
            u
        };
        match level {
            MatchLevel::Exact => base,
            MatchLevel::Relaxed => base * 0.5,
        }
    }

    fn max_contribution(&self, server: QNodeId) -> f64 {
        assert!(server.index() < self.server_count, "server out of range");
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_xml::parse_document;

    fn setup() -> (Document, TagIndex, TreePattern) {
        let doc = parse_document(
            "<shelf>\
             <book><title>a</title><isbn>1</isbn></book>\
             <book><title>b</title></book>\
             <book><info><title>c</title></info></book>\
             </shelf>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let q = parse_pattern("//book[./title and ./isbn]").unwrap();
        (doc, index, q)
    }

    #[test]
    fn tfidf_exact_dominates_relaxed() {
        let (doc, index, q) = setup();
        let model = TfIdfModel::build(&doc, &index, &q, Normalization::None);
        for server in q.server_ids() {
            let [exact, relaxed] = model.weights(server);
            assert!(exact >= relaxed, "exact {exact} < relaxed {relaxed}");
            assert!(relaxed >= 0.0);
        }
    }

    #[test]
    fn sparse_normalization_gives_unit_exact_weights() {
        let (doc, index, q) = setup();
        let model = TfIdfModel::build(&doc, &index, &q, Normalization::Sparse);
        for server in q.server_ids() {
            assert!((model.max_contribution(server) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_normalization_preserves_relative_skew() {
        let (doc, index, q) = setup();
        let raw = TfIdfModel::build(&doc, &index, &q, Normalization::None);
        let dense = TfIdfModel::build(&doc, &index, &q, Normalization::Dense);
        let servers: Vec<_> = q.server_ids().collect();
        let raw_ratio = raw.max_contribution(servers[0]) / raw.max_contribution(servers[1]);
        let dense_ratio = dense.max_contribution(servers[0]) / dense.max_contribution(servers[1]);
        assert!((raw_ratio - dense_ratio).abs() < 1e-9);
        // And the global max is 1.
        let max = servers
            .iter()
            .map(|&s| dense.max_contribution(s))
            .fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_total_sums_server_maxima() {
        let (doc, index, q) = setup();
        let model = TfIdfModel::build(&doc, &index, &q, Normalization::Sparse);
        let servers: Vec<_> = q.server_ids().collect();
        assert!((model.max_total(&servers).value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_scores_lookup() {
        let node = NodeId::from_index(5);
        let other = NodeId::from_index(6);
        let model = FixedScores::new(3, &[(QNodeId(1), node, 0.3), (QNodeId(2), node, 0.2)]);
        assert_eq!(model.contribution(QNodeId(1), node, MatchLevel::Exact), 0.3);
        assert_eq!(
            model.contribution(QNodeId(1), other, MatchLevel::Exact),
            0.0
        );
        assert_eq!(model.max_contribution(QNodeId(1)), 0.3);
        assert_eq!(model.max_contribution(QNodeId(2)), 0.2);
        assert_eq!(model.max_contribution(QNodeId(0)), 0.0);
    }

    #[test]
    fn random_scores_are_deterministic_and_in_range() {
        let a = RandomScores::sparse(9, 4);
        let b = RandomScores::sparse(9, 4);
        let node = NodeId::from_index(17);
        assert_eq!(
            a.contribution(QNodeId(2), node, MatchLevel::Exact),
            b.contribution(QNodeId(2), node, MatchLevel::Exact)
        );
        for i in 0..200 {
            let n = NodeId::from_index(i);
            let v = a.contribution(QNodeId(1), n, MatchLevel::Exact);
            assert!((0.0..=1.0).contains(&v));
            let r = a.contribution(QNodeId(1), n, MatchLevel::Relaxed);
            assert!(r <= v);
        }
    }

    #[test]
    fn dense_random_scores_bunch_high() {
        let m = RandomScores::dense(3, 4);
        for i in 0..200 {
            let v = m.contribution(QNodeId(1), NodeId::from_index(i), MatchLevel::Exact);
            assert!((0.80..=1.0).contains(&v), "{v}");
        }
    }
}
