//! Totally-ordered score values.

use std::cmp::Ordering;
use std::fmt;

/// A non-NaN score with a total order, usable as a priority-queue key.
///
/// Scores in this system are finite and non-negative by construction
/// (sums of `idf · tf` terms); `Score` still orders any finite value via
/// `f64::total_cmp` and refuses NaN at construction in debug builds.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Score(f64);

impl Score {
    /// The zero score.
    pub const ZERO: Score = Score(0.0);

    /// Wraps a score value (rejects NaN in debug builds).
    pub fn new(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "NaN score");
        Score(value)
    }

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Saturating-at-finite addition.
    pub fn plus(self, other: f64) -> Score {
        Score::new(self.0 + other)
    }

    /// The larger of the two scores.
    pub fn max(self, other: Score) -> Score {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<f64> for Score {
    fn from(v: f64) -> Self {
        Score::new(v)
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Score({:.4})", self.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Score::new(0.5),
            Score::new(-1.0),
            Score::ZERO,
            Score::new(2.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Score::new(-1.0),
                Score::ZERO,
                Score::new(0.5),
                Score::new(2.0)
            ]
        );
    }

    #[test]
    fn plus_and_max() {
        assert_eq!(Score::new(1.0).plus(0.5), Score::new(1.5));
        assert_eq!(Score::new(1.0).max(Score::new(2.0)), Score::new(2.0));
        assert_eq!(Score::new(3.0).max(Score::new(2.0)), Score::new(3.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Score::new(f64::NAN);
    }
}
