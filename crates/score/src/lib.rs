#![deny(missing_docs)]

//! Scoring for top-k XML queries.
//!
//! The paper scores an answer `n` to query `Q` as
//! `Σ_{p ∈ P_Q} idf(p, D) · tf(p, n)` (Definition 4.4), where `P_Q` are
//! Q's *component predicates* — one per non-root query node, relating
//! the returned node to it by the composed axis (Definition 4.1) — and
//! `idf`/`tf` are the XML analogs of the classic IR quantities
//! (Definitions 4.2/4.3).
//!
//! Two layers are provided:
//!
//! * [`tfidf`] — the literal definitions, computed against a document
//!   and its [`whirlpool_index::TagIndex`]. Used as the reference scorer
//!   and to derive predicate weights.
//! * [`ScoreModel`] — the incremental interface the engines consume: a
//!   binding's contribution at a server, at the *exact* or *relaxed*
//!   level, plus per-server maxima for "maximum possible final score"
//!   computations. Implementations: [`TfIdfModel`] (with the paper's
//!   *sparse*/*dense* normalizations of §6.2.2), [`FixedScores`]
//!   (explicit per-node scores — the Figure 3 example), and
//!   [`RandomScores`] (the "randomly generated sparse and dense scoring
//!   functions" of §6.2.2).
//!
//! For multi-document collections, [`CorpusStats`] aggregates the raw
//! document-frequency counts across shards and derives a single
//! *corpus-level* [`TfIdfModel`], so scores — and the global top-k
//! threshold — are comparable across shards.

mod corpus;
mod model;
mod score;
pub mod tfidf;

pub use corpus::CorpusStats;
pub use model::{FixedScores, MatchLevel, Normalization, RandomScores, ScoreModel, TfIdfModel};
pub use score::Score;
