//! The literal XML tf*idf of paper §4.
//!
//! Given an XPath query `Q` with answer node `q0` and other nodes `qi`:
//!
//! * **Component predicates** (Def. 4.1): `P_Q = { p(q0, qi) }`, where
//!   `p` composes the axes along the pattern path from `q0` to `qi`,
//!   plus the root's own `q0[parent::doc-root]`-style predicate.
//! * **idf** (Def. 4.2): `log(|{n : tag(n)=q0}| / |{n : tag(n)=q0 ∧
//!   ∃n'. tag(n')=qi ∧ p(n,n')}|)` — the fewer `q0` nodes satisfy the
//!   predicate, the larger its idf.
//! * **tf** (Def. 4.3): `|{n' : tag(n')=qi ∧ p(n,n')}|` — the number of
//!   distinct ways a candidate answer satisfies the predicate.
//! * **Score** (Def. 4.4): `Σ_i idf(p_i, D) · tf(p_i, n)`.
//!
//! Value-labelled leaves (`title (wodehouse)`) fold the value test into
//! the predicate: only nodes passing it count for idf and tf.

use whirlpool_index::{DocView, TagIndex, TagIndexView};
use whirlpool_pattern::{AttrTest, ComposedAxis, QNodeId, TreePattern, ValueTest, WILDCARD};
use whirlpool_xml::{Document, NodeId};

/// One component predicate `p(q0, qi)` of a query.
#[derive(Debug, Clone)]
pub struct ComponentPredicate {
    /// The query node `qi` (never the root).
    pub qnode: QNodeId,
    /// The composed axis from the returned node down to `qi`.
    pub axis: ComposedAxis,
    /// `qi`'s tag (`*` matches any).
    pub tag: String,
    /// `qi`'s value test, if any.
    pub value: Option<ValueTest>,
    /// `qi`'s attribute predicates.
    pub attrs: Vec<AttrTest>,
}

/// Extracts the component predicates of a pattern (Definition 4.1),
/// one per non-root query node, in query-node order.
pub fn component_predicates(pattern: &TreePattern) -> Vec<ComponentPredicate> {
    whirlpool_pattern::compile_servers(pattern)
        .into_iter()
        .map(|s| ComponentPredicate {
            qnode: s.qnode,
            axis: s.root_exact,
            tag: s.tag,
            value: s.value,
            attrs: s.attrs,
        })
        .collect()
}

/// Does node `n'` (candidate for `qi`) satisfy the predicate against
/// answer candidate `n`, including the value test?
///
/// The structural part runs on the index's
/// [`StructuralColumns`](whirlpool_index::StructuralColumns) — model
/// construction walks every (answer, candidate) pair, so the integer
/// containment/depth checks pay off here just as they do in the
/// engines' hot loop.
fn satisfies(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    pred: &ComponentPredicate,
    n: NodeId,
    n_prime: NodeId,
) -> bool {
    index.columns().holds(pred.axis, n, n_prime)
        && pred
            .value
            .as_ref()
            .map_or(true, |v| v.matches(doc.text(n_prime)))
        && pred
            .attrs
            .iter()
            .all(|a| a.matches(doc.attribute(n_prime, &a.name)))
}

/// Candidate `qi` nodes under `n` for a predicate: the tag's posting
/// range, or every descendant for a wildcard.
fn candidates_under(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    pred: &ComponentPredicate,
    n: NodeId,
) -> Vec<NodeId> {
    if pred.tag == WILDCARD {
        index.descendants_any(n).collect()
    } else {
        match doc.tag_id(&pred.tag) {
            Some(tag) => index.descendants_with_tag(n, tag).to_vec(),
            None => Vec::new(),
        }
    }
}

/// Definition 4.3: the number of distinct `qi` nodes satisfying
/// `p(n, ·)`.
pub fn tf(doc: &Document, index: &TagIndex, pred: &ComponentPredicate, n: NodeId) -> usize {
    tf_view(doc.into(), index.view(), pred, n)
}

/// [`tf`] over borrowed views — the backing-agnostic form used by the
/// snapshot-attached paths.
pub fn tf_view(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    pred: &ComponentPredicate,
    n: NodeId,
) -> usize {
    candidates_under(doc, index, pred, n)
        .into_iter()
        .filter(|&c| satisfies(doc, index, pred, n, c))
        .count()
}

/// The raw document-frequency counts behind Definition 4.2 for one
/// predicate: `(population, satisfying)` where `population` is the
/// number of candidate answer nodes (nodes with the answer tag) and
/// `satisfying` how many of them satisfy the predicate. These are the
/// quantities a collection aggregates across shards to build a
/// *corpus-level* idf (see [`crate::CorpusStats`]) — per-document idf is
/// [`idf_from_counts`] applied to one document's counts.
pub fn idf_counts(
    doc: &Document,
    index: &TagIndex,
    answer_tag: &str,
    pred: &ComponentPredicate,
) -> (u64, u64) {
    idf_counts_view(doc.into(), index.view(), answer_tag, pred)
}

/// [`idf_counts`] over borrowed views.
pub fn idf_counts_view(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    answer_tag: &str,
    pred: &ComponentPredicate,
) -> (u64, u64) {
    let q0_nodes: Vec<NodeId> = if answer_tag == WILDCARD {
        doc.elements().collect()
    } else {
        match doc.tag_id(answer_tag) {
            Some(tag) => index.nodes_with_tag(tag).to_vec(),
            None => return (0, 0),
        }
    };
    let satisfying = q0_nodes
        .iter()
        .filter(|&&n| {
            candidates_under(doc, index, pred, n)
                .into_iter()
                .any(|c| satisfies(doc, index, pred, n, c))
        })
        .count();
    (q0_nodes.len() as u64, satisfying as u64)
}

/// Definition 4.2 from precomputed counts: `ln(population /
/// max(satisfying, 1))`, and `0` for an empty population (no candidate
/// answers means the predicate carries no discriminating power). When no
/// node satisfies the predicate the denominator is taken as 1 (maximal
/// idf), keeping the value finite.
pub fn idf_from_counts(population: u64, satisfying: u64) -> f64 {
    if population == 0 {
        return 0.0;
    }
    (population as f64 / satisfying.max(1) as f64).ln()
}

/// Definition 4.2: `log(N_q0 / N_satisfying)`, computed over all nodes
/// with the answer tag. When no node satisfies the predicate the
/// denominator is taken as 1 (maximal idf), keeping the value finite.
pub fn idf(doc: &Document, index: &TagIndex, answer_tag: &str, pred: &ComponentPredicate) -> f64 {
    idf_view(doc.into(), index.view(), answer_tag, pred)
}

/// [`idf`] over borrowed views.
pub fn idf_view(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    answer_tag: &str,
    pred: &ComponentPredicate,
) -> f64 {
    let (population, satisfying) = idf_counts_view(doc, index, answer_tag, pred);
    idf_from_counts(population, satisfying)
}

/// Definition 4.4: the full tf*idf score of answer `n`.
///
/// This is the *reference* scorer — the engines use the incremental
/// [`crate::ScoreModel`] instead, which this function validates against
/// in tests.
pub fn score_answer(doc: &Document, index: &TagIndex, pattern: &TreePattern, n: NodeId) -> f64 {
    score_answer_view(doc.into(), index.view(), pattern, n)
}

/// [`score_answer`] over borrowed views.
pub fn score_answer_view(
    doc: DocView<'_>,
    index: TagIndexView<'_>,
    pattern: &TreePattern,
    n: NodeId,
) -> f64 {
    let answer_tag = &pattern.node(pattern.root()).tag;
    component_predicates(pattern)
        .iter()
        .map(|pred| idf_view(doc, index, answer_tag, pred) * tf_view(doc, index, pred, n) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_xml::parse_document;

    fn setup(src: &str) -> (Document, TagIndex) {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        (doc, index)
    }

    fn books() -> (Document, TagIndex) {
        // Four books; only some have an isbn / a price.
        setup(
            "<shelf>\
             <book><title>wodehouse</title><isbn>1</isbn><price>9</price></book>\
             <book><title>tolkien</title><isbn>2</isbn></book>\
             <book><title>wodehouse</title></book>\
             <book><info><title>austen</title></info></book>\
             </shelf>",
        )
    }

    #[test]
    fn idf_rewards_selective_predicates() {
        let (doc, index) = books();
        let q = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let preds = component_predicates(&q);
        let idf_title = idf(&doc, &index, "book", &preds[0]);
        let idf_isbn = idf(&doc, &index, "book", &preds[1]);
        let idf_price = idf(&doc, &index, "book", &preds[2]);
        // title (3/4 books) < isbn (2/4) < price (1/4).
        assert!(idf_title < idf_isbn && idf_isbn < idf_price);
        assert!((idf_title - (4.0f64 / 3.0).ln()).abs() < 1e-12);
        assert!((idf_price - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn idf_of_never_satisfied_predicate_is_maximal_and_finite() {
        let (doc, index) = books();
        let q = parse_pattern("//book[./nosuch]").unwrap();
        let preds = component_predicates(&q);
        let v = idf(&doc, &index, "book", &preds[0]);
        assert!((v - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn relaxed_predicate_has_smaller_idf() {
        // The engine's score ordering (exact > relaxed) falls out of
        // Definition 4.2: the relaxed predicate is satisfied by at least
        // as many nodes, so its idf is no larger.
        let (doc, index) = books();
        let exact = component_predicates(&parse_pattern("//book[./title]").unwrap());
        let relaxed = component_predicates(&parse_pattern("//book[.//title]").unwrap());
        let idf_exact = idf(&doc, &index, "book", &exact[0]);
        let idf_relaxed = idf(&doc, &index, "book", &relaxed[0]);
        assert!(idf_relaxed < idf_exact, "{idf_relaxed} vs {idf_exact}");
    }

    #[test]
    fn tf_counts_distinct_witnesses() {
        let (doc, index) = setup(
            "<shelf><book><title>a</title><title>b</title></book><book><title>c</title></book></shelf>",
        );
        let q = parse_pattern("//book[./title]").unwrap();
        let preds = component_predicates(&q);
        let book_tag = doc.tag_id("book").unwrap();
        let books: Vec<_> = index.nodes_with_tag(book_tag).to_vec();
        assert_eq!(tf(&doc, &index, &preds[0], books[0]), 2);
        assert_eq!(tf(&doc, &index, &preds[0], books[1]), 1);
    }

    #[test]
    fn value_tests_restrict_idf_and_tf() {
        let (doc, index) = books();
        let q = parse_pattern("//book[./title = 'wodehouse']").unwrap();
        let preds = component_predicates(&q);
        // Only 2 of 4 books have a wodehouse title as a child.
        let v = idf(&doc, &index, "book", &preds[0]);
        assert!((v - 2.0f64.ln()).abs() < 1e-12);
        let book_tag = doc.tag_id("book").unwrap();
        let books_nodes: Vec<_> = index.nodes_with_tag(book_tag).to_vec();
        assert_eq!(tf(&doc, &index, &preds[0], books_nodes[0]), 1);
        assert_eq!(tf(&doc, &index, &preds[0], books_nodes[1]), 0);
    }

    #[test]
    fn score_answer_orders_richer_matches_higher() {
        let (doc, index) = books();
        let q = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let book_tag = doc.tag_id("book").unwrap();
        let books_nodes: Vec<_> = index.nodes_with_tag(book_tag).to_vec();
        let scores: Vec<f64> = books_nodes
            .iter()
            .map(|&b| score_answer(&doc, &index, &q, b))
            .collect();
        // Book 0 satisfies all three predicates; book 1 two; book 2 one;
        // book 3 none (title is a grandchild, not a child).
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
        assert!(scores[2] > scores[3]);
        assert_eq!(scores[3], 0.0);
    }

    #[test]
    fn composed_axis_predicates_score_descendants() {
        let (doc, index) = books();
        let q = parse_pattern("//book[.//title]").unwrap();
        let book_tag = doc.tag_id("book").unwrap();
        let books_nodes: Vec<_> = index.nodes_with_tag(book_tag).to_vec();
        // Book 3's title is under info — satisfied by the ad predicate
        // (tf = 1). Note the *idf* of this predicate is 0 here: every
        // book satisfies it, so per Definition 4.2 it carries no
        // discriminating power and the score is 0.
        let preds = component_predicates(&q);
        assert_eq!(tf(&doc, &index, &preds[0], books_nodes[3]), 1);
        assert_eq!(idf(&doc, &index, "book", &preds[0]), 0.0);
        assert_eq!(score_answer(&doc, &index, &q, books_nodes[3]), 0.0);
    }
}
