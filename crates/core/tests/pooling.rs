//! The MatchPool must actually recycle on a realistic workload: the
//! Table-1 default (Q2, k = 15) over a generated XMark document.

use whirlpool_core::{evaluate, Algorithm, EvalOptions};
use whirlpool_index::TagIndex;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xmark::{generate, queries, GeneratorConfig};

#[test]
fn default_q2_workload_recycles_buffers() {
    let doc = generate(&GeneratorConfig::items(150));
    let index = TagIndex::build(&doc);
    let query = queries::parse(queries::Q2);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let options = EvalOptions::top_k(15);
    assert!(options.pooling, "pooling is the default");

    for alg in [
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ] {
        let result = evaluate(&doc, &index, &query, &model, &alg, &options);
        let m = &result.metrics;
        assert!(
            m.buffers_reused > 0,
            "{}: no buffer was recycled (allocated {})",
            alg.name(),
            m.buffers_allocated
        );
        assert!(
            m.pool_hit_rate() > 0.5,
            "{}: hit rate {:.3} (allocated {}, reused {})",
            alg.name(),
            m.pool_hit_rate(),
            m.buffers_allocated,
            m.buffers_reused
        );
    }

    // And the off switch really turns it off.
    let unpooled = EvalOptions {
        pooling: false,
        ..EvalOptions::top_k(15)
    };
    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &unpooled,
    );
    assert_eq!(result.metrics.buffers_reused, 0);
    assert_eq!(result.metrics.pool_hit_rate(), 0.0);
}
