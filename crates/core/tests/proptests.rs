//! Property-based tests for the core data structures: the top-k set
//! against a declarative reference model, and the match queue's
//! ordering contract.

use proptest::prelude::*;
use std::collections::HashMap;
use whirlpool_core::{RankedAnswer, TopKSet};
use whirlpool_score::Score;
use whirlpool_xml::NodeId;

/// Reference model: the top-k roots by their maximum offered score.
/// Tie groups at the boundary are ambiguous (any member may be kept),
/// so the comparison below checks score vectors exactly and root sets
/// only above the boundary tie.
fn reference_topk(offers: &[(usize, u32)], k: usize) -> Vec<(usize, u32)> {
    let mut best: HashMap<usize, u32> = HashMap::new();
    for &(root, score) in offers {
        let e = best.entry(root).or_insert(score);
        *e = (*e).max(score);
    }
    let mut ranked: Vec<(usize, u32)> = best.into_iter().collect();
    // Descending score; root order within ties unspecified.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

proptest! {
    /// The incremental TopKSet retains exactly the top-k per-root
    /// maxima (score-wise; tie-group membership may differ).
    #[test]
    fn topk_set_matches_reference_model(
        offers in prop::collection::vec((0usize..12, 0u32..50), 0..200),
        k in 1usize..8,
    ) {
        let mut set = TopKSet::new(k);
        for &(root, score) in &offers {
            set.offer(NodeId::from_index(root), Score::new(score as f64));
        }
        let got: Vec<RankedAnswer> = set.ranked();
        let expected = reference_topk(&offers, k);

        // Same number of entries and identical score vectors.
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.score.value() as u32, e.1);
        }
        // Entries strictly above the k-th score must be the same roots.
        if let Some(&(_, kth)) = expected.last() {
            let mut got_roots: Vec<usize> = got
                .iter()
                .filter(|a| a.score.value() as u32 > kth)
                .map(|a| a.root.index())
                .collect();
            let mut expected_roots: Vec<usize> =
                expected.iter().filter(|e| e.1 > kth).map(|e| e.0).collect();
            got_roots.sort_unstable();
            expected_roots.sort_unstable();
            prop_assert_eq!(got_roots, expected_roots);
        }
    }

    /// The threshold is 0 until the set is full and afterwards equals
    /// the weakest retained score; it never decreases over a run.
    #[test]
    fn topk_threshold_is_monotone(
        offers in prop::collection::vec((0usize..10, 0u32..50), 0..100),
        k in 1usize..5,
    ) {
        let mut set = TopKSet::new(k);
        let mut prev = Score::ZERO;
        for &(root, score) in &offers {
            set.offer(NodeId::from_index(root), Score::new(score as f64));
            let t = set.threshold();
            prop_assert!(t >= prev, "threshold decreased: {t:?} < {prev:?}");
            prev = t;
            if set.len() < k {
                prop_assert_eq!(t, Score::ZERO);
            }
        }
    }

    /// `ranked()` is sorted descending and holds at most one entry per
    /// root.
    #[test]
    fn topk_ranked_is_sorted_and_distinct(
        offers in prop::collection::vec((0usize..20, 0u32..100), 0..150),
        k in 1usize..10,
    ) {
        let mut set = TopKSet::new(k);
        for &(root, score) in &offers {
            set.offer(NodeId::from_index(root), Score::new(score as f64));
        }
        let ranked = set.ranked();
        prop_assert!(ranked.len() <= k);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        let mut roots: Vec<_> = ranked.iter().map(|a| a.root).collect();
        roots.sort_unstable();
        roots.dedup();
        prop_assert_eq!(roots.len(), ranked.len());
    }
}
