//! The LockStep baselines.
//!
//! "LockStep considers one server at a time and processes all partial
//! matches sequentially through a server before proceeding to the next
//! server" (§6.1.2) — every match follows the same static plan, and all
//! matches advance in lock step (≈ the OptThres algorithm of the
//! EDBT'02 relaxation paper). Two variants:
//!
//! * [`run_lockstep`] — keeps a top-k set during execution and discards
//!   partial matches that cannot reach the current k-th score;
//! * [`run_lockstep_noprune`] — performs *all* partial-match operations
//!   and sorts at the end. Its partial-match count is the "maximum
//!   possible number of partial matches" denominator of Table 2.

use crate::context::{Located, QueryContext, RelaxMode};
use crate::fault::{guarded_process, guarded_process_located, EngineRun, RunControl, Truncation};
use crate::partial::PartialMatch;
use crate::queue::QueuePolicy;
use crate::topk::{RankedAnswer, TopKSet};
use whirlpool_pattern::StaticPlan;

/// LockStep with pruning.
///
/// Within each stage, matches are processed best-first under
/// `queue_policy` (the paper settled on maximum possible final score for
/// LockStep's queues too), which accelerates top-k threshold growth.
pub fn run_lockstep(
    ctx: &QueryContext<'_>,
    plan: &StaticPlan,
    k: usize,
    queue_policy: QueuePolicy,
) -> Vec<RankedAnswer> {
    run_lockstep_anytime(ctx, plan, k, queue_policy, &RunControl::unlimited()).answers
}

/// LockStep with pruning under a [`RunControl`]: budget expiry returns
/// the current top-k as a truncated prefix, and matches headed for a
/// dead server are degraded past it (relaxed mode) or dropped with
/// their bound recorded (exact mode).
pub fn run_lockstep_anytime(
    ctx: &QueryContext<'_>,
    plan: &StaticPlan,
    k: usize,
    queue_policy: QueuePolicy,
    control: &RunControl,
) -> EngineRun {
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full = ctx.full_mask();
    let trunc = Truncation::new();
    let mut topk = TopKSet::with_floor(k, control.threshold_floor());
    let mut pool = ctx.new_pool();
    let mut tr = control.trace_worker("lockstep");
    tr.span_begin("seed");
    let mut frontier = ctx.make_root_matches();
    for m in &frontier {
        tr.spawned(m);
        if offer_partial {
            topk.offer_match(m);
        }
        if m.is_complete(full) {
            // Single-node patterns: the root match is already an
            // answer and no stage will ever consume it.
            tr.completed(m);
        }
    }
    tr.span_end("seed");

    let mut locs: Vec<Located> = Vec::new();
    'stages: for &server in plan.order() {
        if tr.enabled() {
            tr.span_begin(&format!("stage q{}", server.0));
        }
        // Best-first within the stage: sort descending by the policy key
        // (ties by seq ascending, matching MatchQueue).
        let mut keyed: Vec<(whirlpool_score::Score, PartialMatch)> = frontier
            .drain(..)
            .map(|m| (queue_policy.key(ctx, &m, Some(server)), m))
            .collect();
        keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.seq.cmp(&b.1.seq)));

        // Resolve every stage member's candidate range in one batched
        // sweep (document order inside `locate_batch_at_server`), then
        // evaluate in the best-first order chosen above. Location is a
        // pure function of the match root, so hoisting it out of the
        // priority loop cannot change any answer or counter.
        let batching = ctx.op_batching();
        if batching {
            let roots: Vec<_> = keyed.iter().map(|(_, m)| m.root()).collect();
            ctx.locate_batch_at_server(server, &roots, &mut locs);
        }

        let mut next = Vec::new();
        let mut exts = Vec::new();
        let mut at = 0usize;
        let mut stage = keyed.into_iter();
        while let Some((_, m)) = stage.next() {
            let loc = if batching { locs[at] } else { Located::Absent };
            at += 1;
            if control.exhausted(&ctx.metrics) {
                if trunc.expire() {
                    control.count_stop(&ctx.metrics);
                }
                // Drain: account everything still pending, then stop.
                for m in std::iter::once(m)
                    .chain(stage.map(|(_, m)| m))
                    .chain(next.drain(..))
                {
                    trunc.account(m.max_final);
                    if !m.is_complete(full) {
                        // Complete matches already reached their
                        // `completed` trace terminal when offered.
                        tr.abandoned(&m);
                    }
                    pool.release(m);
                }
                if tr.enabled() {
                    tr.span_end(&format!("stage q{}", server.0));
                }
                break 'stages;
            }
            if topk.should_prune(&m) {
                ctx.metrics.add_pruned();
                tr.pruned(&m, topk.threshold());
                pool.release(m);
                continue;
            }
            exts.clear();
            let t0 = tr.op_start();
            let ran = if batching {
                guarded_process_located(ctx, control, &trunc, server, &m, loc, &mut exts, &mut pool)
            } else {
                guarded_process(ctx, control, &trunc, server, &m, &mut exts, &mut pool)
            };
            if ran {
                tr.server_op(server, m.seq, exts.len(), t0);
                pool.release(m);
            } else {
                // The stage's server is dead. Relaxed mode degrades the
                // match past it (null binding, leaf-deletion score);
                // exact mode can only drop it and record its bound.
                trunc.account(m.max_final);
                tr.abandoned(&m);
                if offer_partial {
                    let e = ctx.degrade_at_server(server, &m, &mut pool);
                    ctx.metrics.add_match_redistributed();
                    exts.push(e);
                }
                pool.release(m);
            }
            for e in exts.drain(..) {
                tr.spawned(&e);
                let complete = e.is_complete(full);
                if offer_partial || complete {
                    topk.offer_match(&e);
                }
                if complete && e.degraded {
                    ctx.metrics.add_answer_degraded();
                }
                if complete {
                    tr.completed(&e);
                } else if topk.should_prune(&e) {
                    // Trace terminal states are exclusive: a complete
                    // match's terminal is `completed` even if the
                    // engine also discards it against the threshold.
                    tr.pruned(&e, topk.threshold());
                }
                if topk.should_prune(&e) {
                    ctx.metrics.add_pruned();
                    pool.release(e);
                    continue;
                }
                next.push(e);
            }
            if tr.enabled() {
                tr.threshold(topk.threshold());
            }
        }
        frontier = next;
        if tr.enabled() {
            tr.span_end(&format!("stage q{}", server.0));
            tr.queue_depth(crate::trace::QueueId::Router, frontier.len());
        }
    }

    // In exact mode the surviving frontier holds the complete matches
    // that were never offered mid-flight; offer them now.
    if !offer_partial {
        for m in &frontier {
            if m.is_complete(full) {
                topk.offer_match(m);
            }
        }
    }
    let answers = topk.ranked();
    let completeness = trunc.finish(&answers);
    EngineRun {
        answers,
        completeness,
    }
}

/// LockStep without pruning: every partial match goes through every
/// server; results are ranked at the end.
///
/// Matches with different roots never interact when nothing is pruned,
/// so this runs root-by-root to keep the peak frontier proportional to
/// one root's match count rather than the whole document's.
pub fn run_lockstep_noprune(
    ctx: &QueryContext<'_>,
    plan: &StaticPlan,
    k: usize,
) -> Vec<RankedAnswer> {
    run_lockstep_noprune_anytime(ctx, plan, k, &RunControl::unlimited()).answers
}

/// LockStep-NoPrun under a [`RunControl`]: the budget is checked before
/// every server operation (root matches not yet started are accounted
/// on expiry), and dead servers degrade (relaxed) or drop (exact) the
/// matches that reach them.
pub fn run_lockstep_noprune_anytime(
    ctx: &QueryContext<'_>,
    plan: &StaticPlan,
    k: usize,
    control: &RunControl,
) -> EngineRun {
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full = ctx.full_mask();
    let trunc = Truncation::new();
    // NoPrune never consults the threshold, so the floor is inert here;
    // it is wired through anyway so every engine treats RunControl
    // uniformly.
    let mut topk = TopKSet::with_floor(k, control.threshold_floor());
    let mut pool = ctx.new_pool();
    let mut tr = control.trace_worker("lockstep-noprune");
    let mut frontier: Vec<PartialMatch> = Vec::new();
    let mut next = Vec::new();
    tr.span_begin("seed");
    let root_matches = ctx.make_root_matches();
    for m in &root_matches {
        tr.spawned(m);
    }
    tr.span_end("seed");
    tr.span_begin("evaluate");
    let batching = ctx.op_batching();
    let mut locs: Vec<Located> = Vec::new();
    let mut roots = root_matches.into_iter();
    'roots: while let Some(root_match) = roots.next() {
        frontier.clear();
        frontier.push(root_match);
        for &server in plan.order() {
            next.clear();
            // All matches in this stage share one root (the engine runs
            // root-by-root), so the batched locate collapses to a single
            // range resolution reused across the whole stage.
            if batching {
                let stage_roots: Vec<_> = frontier.iter().map(|m| m.root()).collect();
                ctx.locate_batch_at_server(server, &stage_roots, &mut locs);
            }
            let mut at = 0usize;
            let mut stage = std::mem::take(&mut frontier).into_iter();
            while let Some(m) = stage.next() {
                let loc = if batching { locs[at] } else { Located::Absent };
                at += 1;
                if control.exhausted(&ctx.metrics) {
                    if trunc.expire() {
                        control.count_stop(&ctx.metrics);
                    }
                    for m in std::iter::once(m)
                        .chain(stage)
                        .chain(next.drain(..))
                        .chain(roots)
                    {
                        trunc.account(m.max_final);
                        // Unlike the pruning variant, completes here
                        // have not been offered yet: abandonment is
                        // their one trace terminal.
                        tr.abandoned(&m);
                        pool.release(m);
                    }
                    break 'roots;
                }
                let before = next.len();
                let t0 = tr.op_start();
                let ran = if batching {
                    guarded_process_located(
                        ctx, control, &trunc, server, &m, loc, &mut next, &mut pool,
                    )
                } else {
                    guarded_process(ctx, control, &trunc, server, &m, &mut next, &mut pool)
                };
                if ran {
                    tr.server_op(server, m.seq, next.len() - before, t0);
                    pool.release(m);
                } else {
                    trunc.account(m.max_final);
                    tr.abandoned(&m);
                    if offer_partial {
                        let e = ctx.degrade_at_server(server, &m, &mut pool);
                        ctx.metrics.add_match_redistributed();
                        next.push(e);
                    }
                    pool.release(m);
                }
                if tr.enabled() {
                    for e in &next[before.min(next.len())..] {
                        tr.spawned(e);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        for m in frontier.drain(..) {
            debug_assert!(m.is_complete(full));
            topk.offer_match(&m);
            tr.completed(&m);
            if m.degraded {
                ctx.metrics.add_answer_degraded();
            }
            pool.release(m);
        }
    }
    tr.span_end("evaluate");
    let answers = topk.ranked();
    let completeness = trunc.finish(&answers);
    EngineRun {
        answers,
        completeness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextOptions;
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><extra><title>t</title></extra></book>\
        <book><name/></book>\
        </shelf>";

    fn run(query: &str, k: usize, relax: RelaxMode, prune: bool) -> Vec<RankedAnswer> {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(query).unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax,
                ..Default::default()
            },
        );
        let plan = StaticPlan::in_id_order(pattern.server_ids().count());
        if prune {
            run_lockstep(&ctx, &plan, k, QueuePolicy::MaxFinalScore)
        } else {
            run_lockstep_noprune(&ctx, &plan, k)
        }
    }

    #[test]
    fn pruned_and_unpruned_agree_on_answers() {
        for k in [1, 2, 3, 5] {
            let a = run(
                "//book[./title and ./isbn and ./price]",
                k,
                RelaxMode::Relaxed,
                true,
            );
            let b = run(
                "//book[./title and ./isbn and ./price]",
                k,
                RelaxMode::Relaxed,
                false,
            );
            let sa: Vec<_> = a.iter().map(|r| (r.root, r.score)).collect();
            let sb: Vec<_> = b.iter().map(|r| (r.root, r.score)).collect();
            assert_eq!(sa, sb, "k={k}");
        }
    }

    #[test]
    fn best_answer_is_the_richest_book() {
        let answers = run(
            "//book[./title and ./isbn and ./price]",
            5,
            RelaxMode::Relaxed,
            true,
        );
        assert_eq!(answers.len(), 5);
        // Scores strictly decrease over the first three books (3, 2, 1
        // exact predicates satisfied).
        assert!(answers[0].score > answers[1].score);
        assert!(answers[1].score > answers[2].score);
        // The book with only a nested title scores above the bare book.
        assert!(answers[3].score > answers[4].score || answers[4].score.value() == 0.0);
    }

    #[test]
    fn exact_mode_returns_only_exact_matches() {
        let answers = run("//book[./title and ./isbn]", 10, RelaxMode::Exact, true);
        // Only books 0 and 1 have both title and isbn as children.
        assert_eq!(answers.len(), 2);
        let answers_np = run("//book[./title and ./isbn]", 10, RelaxMode::Exact, false);
        assert_eq!(answers_np.len(), 2);
    }

    #[test]
    fn k_limits_the_answer_count() {
        let answers = run("//book[./title]", 2, RelaxMode::Relaxed, true);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn pruning_reduces_work() {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let plan = StaticPlan::in_id_order(3);

        let ctx1 = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
        let _ = run_lockstep(&ctx1, &plan, 1, QueuePolicy::MaxFinalScore);
        let with_prune = ctx1.metrics.snapshot();

        let ctx2 = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
        let _ = run_lockstep_noprune(&ctx2, &plan, 1);
        let without = ctx2.metrics.snapshot();

        assert!(with_prune.server_ops <= without.server_ops);
        assert!(with_prune.pruned > 0);
        assert_eq!(without.pruned, 0);
    }

    #[test]
    fn empty_document_gives_empty_answers() {
        let doc = parse_document("<r/>").unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
        let plan = StaticPlan::in_id_order(1);
        assert!(run_lockstep(&ctx, &plan, 3, QueuePolicy::MaxFinalScore).is_empty());
    }
}
