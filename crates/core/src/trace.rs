//! Structured event tracing — the observability layer.
//!
//! Every engine can record a stream of typed events (match lifecycle,
//! server-operation latencies, routing *explain* records, threshold and
//! queue-depth samples) into a [`Tracer`]. Recording is lock-free on
//! the hot path: each worker thread owns a [`WorkerTrace`] handle with
//! a private event buffer that flushes into the tracer in blocks —
//! once the buffer reaches [`FLUSH_BLOCK`] events and a final time
//! when the handle is dropped — so the tracer's single lock is taken
//! once per thousands of events, never per event. Timestamps come from
//! a cached clock re-read every [`TS_REFRESH`] events: lifecycle
//! events carry microsecond timestamps that are coarse by up to one
//! refresh window, while server-operation *durations* still use
//! dedicated precise clock reads ([`WorkerTrace::op_start`]). When
//! tracing is disabled — the default — every emit method is an inlined
//! `Option` test that the optimizer removes, and building with
//! `--no-default-features` (dropping the `trace` cargo feature)
//! compiles the recording paths out entirely.
//!
//! All four engines emit events at the same semantic points, so traces
//! are directly comparable across engines and must never perturb the
//! answer set (pinned by the trace-consistency integration test):
//!
//! | event | emitted when |
//! |---|---|
//! | [`TraceEventKind::MatchSpawned`] | a partial match enters the system (root match, server-op extension, or degraded completion) |
//! | [`TraceEventKind::ServerOp`] | a server operation consumes a match (duration + extensions produced) |
//! | [`TraceEventKind::MatchPruned`] | a match is discarded against the top-k threshold |
//! | [`TraceEventKind::MatchCompleted`] | a complete match is offered to the top-k set |
//! | [`TraceEventKind::MatchAbandoned`] | a match leaves unprocessed (budget expiry, dead server); its bound enters the truncation certificate |
//! | [`TraceEventKind::Routed`] | the router takes one routing decision (with per-candidate estimates) |
//! | [`TraceEventKind::ThresholdSample`] | the top-k threshold is sampled after an operation |
//! | [`TraceEventKind::QueueDepth`] | a queue's depth is sampled |
//! | [`TraceEventKind::BatchStolen`] | an idle worker stole one drain batch from another worker's server queue |
//! | [`TraceEventKind::SpanBegin`]/[`SpanEnd`](TraceEventKind::SpanEnd) | a worker enters/leaves a phase |
//!
//! The lifecycle events obey a conservation law checked by
//! [`TraceSummary::balanced`]: every spawned match reaches exactly one
//! terminal state, so `spawned = consumed + pruned + completed +
//! abandoned`.
//!
//! # Example
//!
//! ```
//! use whirlpool_core::trace::Tracer;
//!
//! let tracer = Tracer::new();
//! let mut worker = tracer.worker("demo");
//! worker.span_begin("seed");
//! worker.span_end("seed");
//! drop(worker); // flushes the buffer into the tracer
//!
//! let data = tracer.finish();
//! let summary = data.summary();
//! assert!(summary.unmatched_spans.is_empty());
//! let mut json = Vec::new();
//! data.write_chrome_trace(&mut json).unwrap();
//! assert!(String::from_utf8(json).unwrap().contains("traceEvents"));
//! ```

use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;
use whirlpool_pattern::QNodeId;

/// Is the `trace` cargo feature compiled in? When `false`, every
/// [`Tracer`] records nothing and [`Tracer::finish`] returns an empty
/// [`TraceData`].
pub const fn tracing_compiled() -> bool {
    cfg!(feature = "trace")
}

/// Buffered events per worker before a block flush into the tracer's
/// shared store (the final partial block flushes on drop).
pub const FLUSH_BLOCK: usize = 8192;

/// Events stamped per clock read: the first event after a refresh
/// reads the monotonic clock, the next `TS_REFRESH - 1` reuse the
/// cached value. Event timestamps are therefore coarse by up to one
/// refresh window; per-worker ordering is unaffected (the cache is
/// monotone within a worker).
pub const TS_REFRESH: u32 = 32;

/// Identifies the queue a [`TraceEventKind::QueueDepth`] sample
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueId {
    /// The router's queue (Whirlpool-S's only queue).
    Router,
    /// The per-server queue of this server (Whirlpool-M).
    Server(QNodeId),
}

/// One candidate considered by a routing decision, with the estimate
/// the strategy scored it by (see
/// [`RoutingStrategy::explain`](crate::RoutingStrategy::explain)).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteCandidate {
    /// The candidate server.
    pub server: QNodeId,
    /// The strategy's estimate for it (expected contribution for the
    /// score-based strategies, expected alive extensions for
    /// `min_alive_partial_matches`, plan position for `static`).
    pub estimate: f64,
    /// Whether the fault layer admitted it (dead servers are listed,
    /// but ineligible).
    pub eligible: bool,
}

/// A routing *explain* record: everything the router looked at for one
/// decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteExplain {
    /// Sequence number of the routed match (the group head, under bulk
    /// routing).
    pub seq: u64,
    /// Strategy name, as [`RoutingStrategy::name`](crate::RoutingStrategy::name)
    /// spells it.
    pub strategy: &'static str,
    /// Top-k threshold at decision time.
    pub threshold: f64,
    /// Router-queue depth at decision time.
    pub queue_len: usize,
    /// Matches sharing this decision (1 unless bulk routing).
    pub group: usize,
    /// The chosen server (`None`: every remaining server is dead).
    pub chosen: Option<QNodeId>,
    /// Per-candidate estimates.
    pub candidates: Vec<RouteCandidate>,
}

/// A typed trace event payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A worker entered the named phase.
    SpanBegin {
        /// Phase name (paired with the matching [`TraceEventKind::SpanEnd`]).
        name: String,
    },
    /// A worker left the named phase.
    SpanEnd {
        /// Phase name.
        name: String,
    },
    /// A server operation consumed one partial match.
    ServerOp {
        /// The server that ran the operation.
        server: QNodeId,
        /// Sequence number of the consumed match.
        seq: u64,
        /// Extensions produced (0 = the match died, exact mode).
        produced: usize,
        /// Operation latency in microseconds.
        dur_us: u64,
    },
    /// A partial match entered the system.
    MatchSpawned {
        /// Its sequence number.
        seq: u64,
        /// Its current score.
        score: f64,
        /// Its maximum possible final score.
        max_final: f64,
    },
    /// A partial match was discarded against the top-k threshold.
    MatchPruned {
        /// Its sequence number.
        seq: u64,
        /// Its maximum possible final score (below the threshold).
        max_final: f64,
        /// The threshold it lost to.
        threshold: f64,
    },
    /// A complete match was offered to the top-k set.
    MatchCompleted {
        /// Its sequence number.
        seq: u64,
        /// Its final score.
        score: f64,
        /// Whether it was completed through dead-server degradation.
        degraded: bool,
    },
    /// A partial match left the system unprocessed; its score bound
    /// entered the truncation certificate.
    MatchAbandoned {
        /// Its sequence number.
        seq: u64,
        /// Its maximum possible final score.
        max_final: f64,
    },
    /// One routing decision, with its explain record.
    Routed(RouteExplain),
    /// The top-k threshold, sampled after an operation.
    ThresholdSample {
        /// Current k-th score (0 until the set fills).
        value: f64,
    },
    /// A queue's depth, sampled.
    QueueDepth {
        /// Which queue.
        queue: QueueId,
        /// Matches currently queued.
        depth: usize,
    },
    /// An idle worker stole one drain batch from another worker's
    /// server queue (Whirlpool-M's work-stealing scheduler).
    BatchStolen {
        /// The server whose queue was raided.
        victim: QNodeId,
        /// Matches moved (at most one drain batch).
        moved: usize,
    },
}

/// One recorded event: a payload stamped with the worker that emitted
/// it and the microseconds elapsed since the tracer was created.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since [`Tracer::new`].
    pub ts_us: u64,
    /// The emitting worker's id (index into [`TraceData::workers`]).
    pub tid: u32,
    /// The payload.
    pub kind: TraceEventKind,
}

struct TracerInner {
    start: Instant,
    next_tid: AtomicU32,
    /// Flushed per-worker buffers: `(tid, worker name, events)`.
    flushed: Mutex<Vec<(u32, String, Vec<TraceEvent>)>>,
}

/// A shared, cloneable event recorder. Cloning is cheap (one `Arc`);
/// all clones feed the same event store. Create per-thread recording
/// handles with [`Tracer::worker`], and collect everything with
/// [`Tracer::finish`] once the handles are dropped.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A fresh tracer; its clock starts now.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                start: Instant::now(),
                next_tid: AtomicU32::new(0),
                flushed: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Opens a recording handle for one worker thread. The handle
    /// buffers events locally and flushes them into the tracer when
    /// dropped — the only point that takes the tracer's lock.
    pub fn worker(&self, name: &str) -> WorkerTrace {
        if !tracing_compiled() {
            return WorkerTrace { inner: None };
        }
        let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        WorkerTrace {
            inner: Some(WorkerInner {
                tracer: self.clone(),
                tid,
                name: name.to_string(),
                events: Vec::new(),
                ts_us: 0,
                until_refresh: 0,
            }),
        }
    }

    /// Collects every flushed block into a [`TraceData`], merged and
    /// sorted by timestamp. A worker that flushed multiple blocks
    /// appears once. Call after all [`WorkerTrace`] handles are
    /// dropped (an engine drops its handles before returning).
    pub fn finish(&self) -> TraceData {
        let mut flushed = self.inner.flushed.lock();
        let mut workers: Vec<(u32, String)> = Vec::new();
        let mut events = Vec::new();
        for (tid, name, buf) in flushed.drain(..) {
            if !workers.iter().any(|(t, _)| *t == tid) {
                workers.push((tid, name));
            }
            events.extend(buf);
        }
        workers.sort_by_key(|(tid, _)| *tid);
        // Stable sort: blocks were flushed in per-worker order, so
        // events with equal (coarse) timestamps keep their emit order.
        events.sort_by_key(|e: &TraceEvent| e.ts_us);
        TraceData { workers, events }
    }
}

struct WorkerInner {
    tracer: Tracer,
    tid: u32,
    name: String,
    events: Vec<TraceEvent>,
    /// Cached timestamp, re-read from the clock every [`TS_REFRESH`]
    /// events.
    ts_us: u64,
    /// Events left before the next clock read.
    until_refresh: u32,
}

/// A per-worker recording handle (see [`Tracer::worker`]). All emit
/// methods are no-ops that cost one inlined branch when the handle is
/// disabled — the state every engine runs with unless the caller asked
/// for a trace.
pub struct WorkerTrace {
    inner: Option<WorkerInner>,
}

impl WorkerTrace {
    /// A permanently disabled handle (what
    /// [`RunControl`](crate::RunControl) hands engines when no tracer
    /// is attached).
    pub fn disabled() -> Self {
        WorkerTrace { inner: None }
    }

    /// Is this handle recording? Emit sites guard any event-building
    /// work (explain records, queue-length reads) behind this.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        tracing_compiled() && self.inner.is_some()
    }

    #[inline]
    fn push(&mut self, kind: TraceEventKind) {
        if let Some(w) = &mut self.inner {
            if w.until_refresh == 0 {
                w.ts_us = w.tracer.inner.start.elapsed().as_micros() as u64;
                w.until_refresh = TS_REFRESH;
            }
            w.until_refresh -= 1;
            let (ts_us, tid) = (w.ts_us, w.tid);
            w.events.push(TraceEvent { ts_us, tid, kind });
            if w.events.len() >= FLUSH_BLOCK {
                let block = std::mem::replace(&mut w.events, Vec::with_capacity(FLUSH_BLOCK));
                w.tracer
                    .inner
                    .flushed
                    .lock()
                    .push((w.tid, w.name.clone(), block));
            }
        }
    }

    /// Marks the start of the named phase.
    #[inline]
    pub fn span_begin(&mut self, name: &str) {
        if self.enabled() {
            self.push(TraceEventKind::SpanBegin {
                name: name.to_string(),
            });
        }
    }

    /// Marks the end of the named phase.
    #[inline]
    pub fn span_end(&mut self, name: &str) {
        if self.enabled() {
            self.push(TraceEventKind::SpanEnd {
                name: name.to_string(),
            });
        }
    }

    /// Reads the clock for a server-operation span; `None` (no clock
    /// read at all) when disabled. Pass the result to
    /// [`WorkerTrace::server_op`].
    #[inline]
    pub fn op_start(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records one server operation: `started` is the
    /// [`WorkerTrace::op_start`] result, `produced` the number of
    /// extensions it emitted.
    #[inline]
    pub fn server_op(
        &mut self,
        server: QNodeId,
        seq: u64,
        produced: usize,
        started: Option<Instant>,
    ) {
        if let Some(t0) = started {
            if self.enabled() {
                let dur_us = t0.elapsed().as_micros() as u64;
                self.push(TraceEventKind::ServerOp {
                    server,
                    seq,
                    produced,
                    dur_us,
                });
            }
        }
    }

    /// Records a partial match entering the system.
    #[inline]
    pub fn spawned(&mut self, m: &crate::PartialMatch) {
        if self.enabled() {
            self.push(TraceEventKind::MatchSpawned {
                seq: m.seq,
                score: m.score.value(),
                max_final: m.max_final.value(),
            });
        }
    }

    /// Records a match pruned against `threshold`.
    #[inline]
    pub fn pruned(&mut self, m: &crate::PartialMatch, threshold: whirlpool_score::Score) {
        if self.enabled() {
            self.push(TraceEventKind::MatchPruned {
                seq: m.seq,
                max_final: m.max_final.value(),
                threshold: threshold.value(),
            });
        }
    }

    /// Records a complete match offered to the top-k set.
    #[inline]
    pub fn completed(&mut self, m: &crate::PartialMatch) {
        if self.enabled() {
            self.push(TraceEventKind::MatchCompleted {
                seq: m.seq,
                score: m.score.value(),
                degraded: m.degraded,
            });
        }
    }

    /// Records a match abandoned unprocessed (budget expiry or dead
    /// servers).
    #[inline]
    pub fn abandoned(&mut self, m: &crate::PartialMatch) {
        if self.enabled() {
            self.push(TraceEventKind::MatchAbandoned {
                seq: m.seq,
                max_final: m.max_final.value(),
            });
        }
    }

    /// Records one routing decision with its explain record. Build the
    /// record only when [`WorkerTrace::enabled`] — it is the one event
    /// whose construction is not free.
    #[inline]
    pub fn routed(&mut self, explain: RouteExplain) {
        if self.enabled() {
            self.push(TraceEventKind::Routed(explain));
        }
    }

    /// Samples the top-k threshold. Threshold samples bypass the cached
    /// clock: the monotone-threshold invariant is checked over the
    /// *merged* stream in timestamp order, so each sample needs a
    /// timestamp taken while the sampled value is still current — call
    /// sites sample while holding the top-k lock.
    #[inline]
    pub fn threshold(&mut self, value: whirlpool_score::Score) {
        if self.enabled() {
            if let Some(w) = &mut self.inner {
                w.until_refresh = 0;
            }
            self.push(TraceEventKind::ThresholdSample {
                value: value.value(),
            });
        }
    }

    /// Samples a queue's depth.
    #[inline]
    pub fn queue_depth(&mut self, queue: QueueId, depth: usize) {
        if self.enabled() {
            self.push(TraceEventKind::QueueDepth { queue, depth });
        }
    }

    /// Records one successful batch steal from `victim`'s queue.
    #[inline]
    pub fn stolen(&mut self, victim: QNodeId, moved: usize) {
        if self.enabled() {
            self.push(TraceEventKind::BatchStolen { victim, moved });
        }
    }
}

impl Drop for WorkerTrace {
    fn drop(&mut self) {
        if let Some(w) = self.inner.take() {
            let events = w.events;
            let mut flushed = w.tracer.inner.flushed.lock();
            flushed.push((w.tid, w.name, events));
        }
    }
}

/// A collected trace: every event from every worker, merged and sorted
/// by timestamp.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// `(tid, name)` for every worker that recorded.
    pub workers: Vec<(u32, String)>,
    /// All events, sorted by [`TraceEvent::ts_us`].
    pub events: Vec<TraceEvent>,
}

/// Per-server operation statistics derived from a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerOpStats {
    /// Operations the server ran.
    pub ops: u64,
    /// Routing decisions that chose this server.
    pub routed_to: u64,
    /// Total operation latency, microseconds.
    pub total_us: u64,
    /// Slowest single operation, microseconds.
    pub max_us: u64,
    /// Extensions produced across all operations.
    pub produced: u64,
}

impl ServerOpStats {
    /// Mean operation latency in microseconds (0 with no ops).
    pub fn mean_us(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_us as f64 / self.ops as f64
        }
    }
}

/// Aggregate view of a trace (see [`TraceData::summary`]).
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Matches that entered the system.
    pub spawned: u64,
    /// Matches consumed by a server operation.
    pub consumed: u64,
    /// Matches pruned against the threshold.
    pub pruned: u64,
    /// Complete matches offered to the top-k set.
    pub completed: u64,
    /// Matches abandoned unprocessed.
    pub abandoned: u64,
    /// Answers completed through degradation.
    pub degraded_completions: u64,
    /// Routing decisions recorded.
    pub routed: u64,
    /// Successful batch steals recorded.
    pub steals: u64,
    /// Matches moved across workers by stealing.
    pub stolen_matches: u64,
    /// Per-server operation statistics, indexed by `QNodeId::index() - 1`.
    pub per_server: Vec<(QNodeId, ServerOpStats)>,
    /// `(ts_us, value)` threshold trajectory, in time order.
    pub thresholds: Vec<(u64, f64)>,
    /// Span names opened by some worker but never closed (empty for a
    /// well-formed trace).
    pub unmatched_spans: Vec<String>,
}

impl TraceSummary {
    /// The match-lifecycle conservation law: every spawned match
    /// reaches exactly one terminal state.
    pub fn balanced(&self) -> bool {
        self.spawned == self.consumed + self.pruned + self.completed + self.abandoned
    }

    /// Matches still unaccounted for: `spawned - (terminal states)`,
    /// clamped at zero. Non-zero only for a malformed trace.
    pub fn pending(&self) -> i64 {
        self.spawned as i64 - (self.consumed + self.pruned + self.completed + self.abandoned) as i64
    }
}

impl TraceData {
    /// Aggregates the event stream into lifecycle counts, per-server
    /// latency stats, the threshold trajectory, and span pairing.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut per_server: Vec<(QNodeId, ServerOpStats)> = Vec::new();
        let mut open: Vec<(u32, String)> = Vec::new();
        fn stats(
            per_server: &mut Vec<(QNodeId, ServerOpStats)>,
            server: QNodeId,
        ) -> &mut ServerOpStats {
            if let Some(i) = per_server.iter().position(|(q, _)| *q == server) {
                return &mut per_server[i].1;
            }
            per_server.push((server, ServerOpStats::default()));
            &mut per_server.last_mut().unwrap().1
        }
        for e in &self.events {
            match &e.kind {
                TraceEventKind::SpanBegin { name } => open.push((e.tid, name.clone())),
                TraceEventKind::SpanEnd { name } => {
                    if let Some(i) = open.iter().rposition(|(tid, n)| *tid == e.tid && n == name) {
                        open.remove(i);
                    } else {
                        s.unmatched_spans
                            .push(format!("close without open: {name}"));
                    }
                }
                TraceEventKind::ServerOp {
                    server,
                    produced,
                    dur_us,
                    ..
                } => {
                    s.consumed += 1;
                    let st = stats(&mut per_server, *server);
                    st.ops += 1;
                    st.total_us += dur_us;
                    st.max_us = st.max_us.max(*dur_us);
                    st.produced += *produced as u64;
                }
                TraceEventKind::MatchSpawned { .. } => s.spawned += 1,
                TraceEventKind::MatchPruned { .. } => s.pruned += 1,
                TraceEventKind::MatchCompleted { degraded, .. } => {
                    s.completed += 1;
                    if *degraded {
                        s.degraded_completions += 1;
                    }
                }
                TraceEventKind::MatchAbandoned { .. } => s.abandoned += 1,
                TraceEventKind::Routed(x) => {
                    s.routed += 1;
                    if let Some(server) = x.chosen {
                        stats(&mut per_server, server).routed_to += x.group as u64;
                    }
                }
                TraceEventKind::ThresholdSample { value } => {
                    s.thresholds.push((e.ts_us, *value));
                }
                TraceEventKind::QueueDepth { .. } => {}
                TraceEventKind::BatchStolen { moved, .. } => {
                    s.steals += 1;
                    s.stolen_matches += *moved as u64;
                }
            }
        }
        for (_, name) in open {
            s.unmatched_spans.push(format!("never closed: {name}"));
        }
        per_server.sort_by_key(|(q, _)| q.index());
        s.per_server = per_server;
        s
    }

    /// The routing explain records, in time order.
    pub fn explains(&self) -> impl Iterator<Item = &RouteExplain> {
        self.events.iter().filter_map(|e| match &e.kind {
            TraceEventKind::Routed(x) => Some(x),
            _ => None,
        })
    }

    /// Writes the trace in Chrome trace-event JSON (the `traceEvents`
    /// array format), loadable in Perfetto and `chrome://tracing`.
    /// Spans become `B`/`E` duration events, server operations `X`
    /// complete events, match-lifecycle and routing events instants,
    /// and threshold/queue-depth samples counter tracks.
    pub fn write_chrome_trace(&self, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{{")?;
        writeln!(out, "  \"displayTimeUnit\": \"ms\",")?;
        writeln!(out, "  \"traceEvents\": [")?;
        let mut first = true;
        let mut sep = |out: &mut dyn Write| -> io::Result<()> {
            if first {
                first = false;
                Ok(())
            } else {
                writeln!(out, ",")
            }
        };
        for (tid, name) in &self.workers {
            sep(out)?;
            write!(
                out,
                "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            )?;
        }
        for e in &self.events {
            sep(out)?;
            let (ts, tid) = (e.ts_us, e.tid);
            match &e.kind {
                TraceEventKind::SpanBegin { name } => write!(
                    out,
                    "    {{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"B\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}}}",
                    escape(name)
                )?,
                TraceEventKind::SpanEnd { name } => write!(
                    out,
                    "    {{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"E\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}}}",
                    escape(name)
                )?,
                TraceEventKind::ServerOp {
                    server,
                    seq,
                    produced,
                    dur_us,
                } => {
                    let start = ts.saturating_sub(*dur_us);
                    write!(
                        out,
                        "    {{\"name\": \"op q{}\", \"cat\": \"server\", \"ph\": \"X\", \
                         \"ts\": {start}, \"dur\": {dur_us}, \"pid\": 1, \"tid\": {tid}, \
                         \"args\": {{\"seq\": {seq}, \"produced\": {produced}}}}}",
                        server.0
                    )?;
                }
                TraceEventKind::MatchSpawned {
                    seq,
                    score,
                    max_final,
                } => write!(
                    out,
                    "    {{\"name\": \"spawned\", \"cat\": \"match\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"seq\": {seq}, \"score\": {}, \"max_final\": {}}}}}",
                    num(*score),
                    num(*max_final)
                )?,
                TraceEventKind::MatchPruned {
                    seq,
                    max_final,
                    threshold,
                } => write!(
                    out,
                    "    {{\"name\": \"pruned\", \"cat\": \"match\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"seq\": {seq}, \"max_final\": {}, \"threshold\": {}}}}}",
                    num(*max_final),
                    num(*threshold)
                )?,
                TraceEventKind::MatchCompleted {
                    seq,
                    score,
                    degraded,
                } => write!(
                    out,
                    "    {{\"name\": \"completed\", \"cat\": \"match\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"seq\": {seq}, \"score\": {}, \"degraded\": {degraded}}}}}",
                    num(*score)
                )?,
                TraceEventKind::MatchAbandoned { seq, max_final } => write!(
                    out,
                    "    {{\"name\": \"abandoned\", \"cat\": \"match\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"seq\": {seq}, \"max_final\": {}}}}}",
                    num(*max_final)
                )?,
                TraceEventKind::Routed(x) => {
                    let chosen = match x.chosen {
                        Some(q) => format!("\"q{}\"", q.0),
                        None => "null".to_string(),
                    };
                    let mut cands = String::new();
                    for (i, c) in x.candidates.iter().enumerate() {
                        if i > 0 {
                            cands.push_str(", ");
                        }
                        cands.push_str(&format!(
                            "{{\"server\": \"q{}\", \"estimate\": {}, \"eligible\": {}}}",
                            c.server.0,
                            num(c.estimate),
                            c.eligible
                        ));
                    }
                    write!(
                        out,
                        "    {{\"name\": \"routed\", \"cat\": \"router\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                         \"args\": {{\"seq\": {}, \"strategy\": \"{}\", \"threshold\": {}, \
                         \"queue_len\": {}, \"group\": {}, \"chosen\": {chosen}, \
                         \"candidates\": [{cands}]}}}}",
                        x.seq,
                        escape(x.strategy),
                        num(x.threshold),
                        x.queue_len,
                        x.group
                    )?;
                }
                TraceEventKind::ThresholdSample { value } => write!(
                    out,
                    "    {{\"name\": \"threshold\", \"cat\": \"topk\", \"ph\": \"C\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"value\": {}}}}}",
                    num(*value)
                )?,
                TraceEventKind::QueueDepth { queue, depth } => {
                    let name = match queue {
                        QueueId::Router => "router queue".to_string(),
                        QueueId::Server(q) => format!("queue q{}", q.0),
                    };
                    write!(
                        out,
                        "    {{\"name\": \"{name}\", \"cat\": \"queue\", \"ph\": \"C\", \
                         \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                         \"args\": {{\"depth\": {depth}}}}}"
                    )?;
                }
                TraceEventKind::BatchStolen { victim, moved } => write!(
                    out,
                    "    {{\"name\": \"stolen\", \"cat\": \"scheduler\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"victim\": \"q{}\", \"moved\": {moved}}}}}",
                    victim.0
                )?,
            }
        }
        writeln!(out)?;
        writeln!(out, "  ]")?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

/// Formats an `f64` as a JSON number (JSON has no NaN/inf; scores are
/// finite by construction, but clamp defensively).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let mut w = WorkerTrace::disabled();
        assert!(!w.enabled());
        w.span_begin("x");
        w.span_end("x");
        assert!(w.op_start().is_none());
        w.threshold(whirlpool_score::Score::ZERO);
        // Dropping a disabled handle is a no-op.
    }

    #[test]
    #[cfg(feature = "trace")]
    fn events_flow_from_worker_to_finish() {
        let tracer = Tracer::new();
        let mut w = tracer.worker("w0");
        assert!(w.enabled());
        w.span_begin("phase");
        w.threshold(whirlpool_score::Score::new(0.5));
        w.queue_depth(QueueId::Router, 3);
        w.span_end("phase");
        drop(w);
        let data = tracer.finish();
        assert_eq!(data.workers, vec![(0, "w0".to_string())]);
        assert_eq!(data.events.len(), 4);
        let s = data.summary();
        assert!(s.unmatched_spans.is_empty());
        assert_eq!(s.thresholds.len(), 1);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn block_flushing_dedupes_workers_and_keeps_order() {
        let tracer = Tracer::new();
        let mut w = tracer.worker("w0");
        let total = FLUSH_BLOCK + 10;
        for i in 0..total {
            w.push(TraceEventKind::MatchSpawned {
                seq: i as u64,
                score: 0.0,
                max_final: 1.0,
            });
        }
        drop(w);
        let data = tracer.finish();
        // Two flushed blocks, one worker entry.
        assert_eq!(data.workers, vec![(0, "w0".to_string())]);
        assert_eq!(data.events.len(), total);
        // Per-worker emit order survives coarse timestamps + merge.
        let seqs: Vec<u64> = data
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::MatchSpawned { seq, .. } => Some(seq),
                _ => None,
            })
            .collect();
        assert!(seqs.windows(2).all(|p| p[0] < p[1]), "emit order lost");
    }

    #[test]
    #[cfg(feature = "trace")]
    fn summary_detects_unclosed_spans() {
        let tracer = Tracer::new();
        let mut w = tracer.worker("w0");
        w.span_begin("left-open");
        w.span_end("never-opened");
        drop(w);
        let s = tracer.finish().summary();
        assert_eq!(s.unmatched_spans.len(), 2);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn conservation_law_over_a_synthetic_stream() {
        let tracer = Tracer::new();
        let mut w = tracer.worker("w0");
        // Three spawned: one consumed, one pruned, one completed.
        for (seq, kind) in [
            (1u64, "spawn"),
            (2, "spawn"),
            (3, "spawn"),
            (1, "op"),
            (2, "prune"),
            (3, "complete"),
        ] {
            match kind {
                "spawn" => w.push(TraceEventKind::MatchSpawned {
                    seq,
                    score: 0.0,
                    max_final: 1.0,
                }),
                "op" => w.push(TraceEventKind::ServerOp {
                    server: QNodeId(1),
                    seq,
                    produced: 0,
                    dur_us: 5,
                }),
                "prune" => w.push(TraceEventKind::MatchPruned {
                    seq,
                    max_final: 0.1,
                    threshold: 0.5,
                }),
                _ => w.push(TraceEventKind::MatchCompleted {
                    seq,
                    score: 0.9,
                    degraded: false,
                }),
            }
        }
        drop(w);
        let s = tracer.finish().summary();
        assert!(s.balanced(), "{s:?}");
        assert_eq!(s.pending(), 0);
        assert_eq!(s.per_server.len(), 1);
        assert_eq!(s.per_server[0].1.ops, 1);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn chrome_trace_has_the_envelope() {
        let tracer = Tracer::new();
        let mut w = tracer.worker("w0");
        w.span_begin("p");
        w.routed(RouteExplain {
            seq: 1,
            strategy: "min_alive_partial_matches",
            threshold: 0.0,
            queue_len: 1,
            group: 1,
            chosen: Some(QNodeId(2)),
            candidates: vec![RouteCandidate {
                server: QNodeId(2),
                estimate: 0.5,
                eligible: true,
            }],
        });
        w.span_end("p");
        drop(w);
        let mut buf = Vec::new();
        tracer.finish().write_chrome_trace(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("thread_name"));
        assert!(s.contains("min_alive_partial_matches"));
        assert!(s.contains("\"chosen\": \"q2\""));
    }
}
