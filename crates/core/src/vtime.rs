//! Virtual-time simulation of the Whirlpool-M schedule.
//!
//! The paper's Figure 9 measures Whirlpool-M speedup on machines with
//! 1, 2, 4 and "∞" processors. This reproduction runs on whatever CPU
//! count the host has (often 1), so the processor sweep is replayed as
//! a **discrete-event simulation**: the same task graph Whirlpool-M
//! executes — per-server priority queues served by a worker pool, a
//! router thread, the shared top-k set — scheduled onto `p` virtual
//! processors, with the per-operation costs supplied by
//! [`VTimeConfig`]. The simulation reuses the *real* server operation
//! and routing code, so answer sets and work counters are identical to
//! a real run with the same schedule; only time is virtual.
//!
//! The scheduler model mirrors the real engine's worker pool: each of
//! the [`VTimeConfig::threads`] virtual workers serves its *home*
//! queues (indices congruent to its id mod the pool size) best-head
//! first, and when every home queue is dry it *steals* from the
//! most-loaded foreign queue — recorded through the same
//! `steal_events` counter as the real scheduler (at op granularity,
//! since the simulation schedules single operations, not drain-batch
//! chunks).
//!
//! The thread-synchronization overhead that makes Whirlpool-M slower
//! than Whirlpool-S on small queries/single processors in the paper is
//! modelled by `thread_overhead`, charged per scheduled task.

use crate::context::{QueryContext, RelaxMode};
use crate::metrics::MetricsSnapshot;
use crate::queue::{MatchQueue, QueuePolicy};
use crate::router::RoutingStrategy;
use crate::topk::{RankedAnswer, TopKSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual costs, in (virtual) seconds.
#[derive(Debug, Clone)]
pub struct VTimeConfig {
    /// Concurrent task cap (`None` = unbounded processors).
    pub processors: Option<usize>,
    /// Cost of one server operation (the paper reports results "where
    /// join operations cost around 1.8 msecs each").
    pub server_op_cost: f64,
    /// Cost of one routing decision.
    pub router_cost: f64,
    /// Per-task scheduling/synchronization overhead of the threaded
    /// engine (charged in Whirlpool-M only).
    pub thread_overhead: f64,
    /// Scheduler pool workers, mirroring
    /// [`WhirlpoolMConfig::threads`](crate::WhirlpoolMConfig::threads):
    /// every virtual worker serves its home queues first and steals
    /// from the most-loaded foreign queue when they are dry. The router
    /// is a separate virtual thread, as in the real engine.
    pub threads: usize,
}

impl Default for VTimeConfig {
    fn default() -> Self {
        VTimeConfig {
            processors: None,
            server_op_cost: 1.8e-3,
            router_cost: 0.05e-3,
            thread_overhead: 0.02e-3,
            threads: 1,
        }
    }
}

/// Result of a virtual-time run.
#[derive(Debug, Clone)]
pub struct VTimeResult {
    /// Virtual makespan in seconds.
    pub makespan: f64,
    /// The top-k answers (identical to a real run with this schedule).
    pub answers: Vec<RankedAnswer>,
    /// Work counters of the simulated run.
    pub metrics: MetricsSnapshot,
}

/// Thread index 0 is the router; 1..=S are the servers.
const ROUTER: usize = 0;

/// Simulates Whirlpool-M under `config`, returning the virtual makespan
/// alongside the (real) answers and work counters.
pub fn simulate_whirlpool_m(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    queue_policy: QueuePolicy,
    config: &VTimeConfig,
) -> VTimeResult {
    let server_ids = ctx.server_ids();
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full_mask = ctx.full_mask();
    let max_procs = config.processors.unwrap_or(usize::MAX);
    let pool_workers = config.threads.max(1);
    let n_servers = server_ids.len();

    let mut topk = TopKSet::new(k);
    // queues[0] = router; queues[i] = server i. Worker 0 is the router
    // thread; workers 1..=pool_workers form the scheduler pool, each
    // homing the server queues congruent to its pool index.
    let mut queues: Vec<MatchQueue> = Vec::with_capacity(n_servers + 1);
    queues.push(MatchQueue::new(QueuePolicy::MaxFinalScore, None));
    for &s in &server_ids {
        queues.push(MatchQueue::new(queue_policy, Some(s)));
    }
    let worker_count = pool_workers + 1;
    // Which queue would this worker serve next, and is it a steal?
    // Mirrors the real worker loop: best-priority head among the home
    // queues first, else the most-loaded foreign queue.
    let queue_for = |w: usize, queues: &[MatchQueue]| -> Option<(usize, bool)> {
        if w == ROUTER {
            return (!queues[ROUTER].is_empty()).then_some((ROUTER, false));
        }
        let pw = w - 1;
        let home = (pw..n_servers)
            .step_by(pool_workers)
            .filter(|&qi| !queues[qi + 1].is_empty())
            .max_by(|&a, &b| queues[a + 1].peek_key().cmp(&queues[b + 1].peek_key()));
        if let Some(qi) = home {
            return Some((qi + 1, false));
        }
        (0..n_servers)
            .filter(|&qi| qi % pool_workers != pw && !queues[qi + 1].is_empty())
            .max_by_key(|&qi| queues[qi + 1].len())
            .map(|qi| (qi + 1, true))
    };

    let mut pool = ctx.new_pool();
    for m in ctx.make_root_matches() {
        let complete = m.is_complete(full_mask);
        if offer_partial || complete {
            topk.offer_match(&m);
        }
        if complete {
            pool.release(m);
        } else {
            queues[ROUTER].push(ctx, m);
        }
    }

    // Event-driven schedule: (finish_time, worker) completions. Each
    // running worker remembers the queue it popped from, since the
    // pool mapping is dynamic.
    let mut events: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
    let mut running: Vec<Option<(usize, crate::partial::PartialMatch)>> = Vec::new();
    running.resize_with(worker_count, || None);
    let mut busy = 0usize;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut exts = Vec::new();

    loop {
        // Start tasks on idle workers while processors are free. Workers
        // whose chosen queue head has the highest priority go first —
        // mirroring the fact that on a real machine the OS runs
        // whichever threads are runnable, and all queues pop best-first
        // anyway.
        loop {
            if busy >= max_procs {
                break;
            }
            let candidate = (0..worker_count)
                .filter(|&w| running[w].is_none())
                .filter_map(|w| queue_for(w, &queues).map(|(q, stolen)| (w, q, stolen)))
                .max_by(|&(_, a, _), &(_, b, _)| queues[a].peek_key().cmp(&queues[b].peek_key()));
            let Some((w, q, stolen)) = candidate else {
                break;
            };
            if stolen {
                ctx.metrics.add_steal(1);
            }

            // Pop; for server workers, pruning happens at pop time and
            // consumes no processor time (as in the real engine, where
            // the prune check is epsilon next to a join).
            let m = queues[q].pop().expect("non-empty queue");
            if q != ROUTER && topk.should_prune(&m) {
                ctx.metrics.add_pruned();
                pool.release(m);
                continue;
            }
            let duration = if q == ROUTER {
                config.router_cost + config.thread_overhead
            } else {
                config.server_op_cost + config.thread_overhead
            };
            running[w] = Some((q, m));
            busy += 1;
            events.push(Reverse((OrderedF64(now + duration), w)));
        }

        let Some(Reverse((OrderedF64(t_fin), worker))) = events.pop() else {
            break; // nothing running and nothing startable ⇒ done
        };
        now = t_fin;
        makespan = makespan.max(now);
        busy -= 1;
        let (q, m) = running[worker].take().expect("completion for idle worker");

        if q == ROUTER {
            let server = routing.choose(ctx, &m, topk.threshold());
            // server QNodeId -> queue index.
            let t = server_ids
                .iter()
                .position(|&s| s == server)
                .expect("known server")
                + 1;
            queues[t].push(ctx, m);
        } else {
            let server = server_ids[q - 1];
            exts.clear();
            ctx.process_at_server_pooled(server, &m, &mut exts, &mut pool);
            pool.release(m);
            for e in exts.drain(..) {
                let complete = e.is_complete(full_mask);
                if offer_partial || complete {
                    topk.offer_match(&e);
                }
                if complete {
                    pool.release(e);
                    continue;
                }
                if topk.should_prune(&e) {
                    ctx.metrics.add_pruned();
                    pool.release(e);
                    continue;
                }
                queues[ROUTER].push(ctx, e);
            }
        }
    }

    VTimeResult {
        makespan,
        answers: topk.ranked(),
        metrics: ctx.metrics.snapshot(),
    }
}

/// The virtual execution time of a *sequential* engine run (Whirlpool-S
/// or LockStep) with the same cost model: operations execute one after
/// another on one processor, with no thread overhead.
pub fn sequential_virtual_time(metrics: &MetricsSnapshot, config: &VTimeConfig) -> f64 {
    metrics.server_ops as f64 * config.server_op_cost
        + metrics.routing_decisions as f64 * config.router_cost
}

/// Total-order wrapper for event times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextOptions;
    use crate::lockstep::run_lockstep_noprune;
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::{parse_pattern, StaticPlan};
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><extra><title>t</title><price>3</price></extra></book>\
        <book><isbn>5</isbn><price>1</price></book>\
        </shelf>";

    fn harness(f: impl FnOnce(&QueryContext<'_>)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
        f(&ctx);
    }

    #[test]
    fn simulated_answers_match_reference() {
        let mut reference = Vec::new();
        harness(|ctx| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(3), 3);
        });
        for procs in [Some(1), Some(2), Some(4), None] {
            harness(|ctx| {
                let result = simulate_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    QueuePolicy::MaxFinalScore,
                    &VTimeConfig {
                        processors: procs,
                        ..Default::default()
                    },
                );
                let gs: Vec<_> = result.answers.iter().map(|r| (r.root, r.score)).collect();
                let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
                assert_eq!(gs, rs, "procs={procs:?}");
            });
        }
    }

    #[test]
    fn more_processors_never_slow_the_schedule_much() {
        // Virtual makespans shrink (or stay equal) as processors grow.
        // Adaptive routing may change decisions across runs (the top-k
        // threshold evolves differently), so allow a small tolerance.
        let mut spans = Vec::new();
        for procs in [Some(1), Some(2), Some(4), None] {
            harness(|ctx| {
                let r = simulate_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    QueuePolicy::MaxFinalScore,
                    &VTimeConfig {
                        processors: procs,
                        // Enough pool workers that the processor cap,
                        // not the pool size, is the binding constraint.
                        threads: 8,
                        ..Default::default()
                    },
                );
                spans.push(r.makespan);
            });
        }
        assert!(spans[1] <= spans[0] * 1.05, "{spans:?}");
        assert!(spans[2] <= spans[1] * 1.05, "{spans:?}");
        assert!(spans[3] <= spans[2] * 1.05, "{spans:?}");
        // And some real speedup materializes between 1 and ∞.
        assert!(spans[3] < spans[0], "{spans:?}");
    }

    #[test]
    fn one_processor_costs_at_least_the_sequential_time() {
        harness(|ctx| {
            let cfg = VTimeConfig {
                processors: Some(1),
                ..Default::default()
            };
            let r = simulate_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                3,
                QueuePolicy::MaxFinalScore,
                &cfg,
            );
            // With one virtual processor, the makespan is the serialized
            // work including thread overhead — at least the op costs.
            let min = r.metrics.server_ops as f64 * cfg.server_op_cost;
            assert!(r.makespan >= min, "makespan {} < min {min}", r.makespan);
        });
    }

    #[test]
    fn extra_pool_workers_help_when_one_server_is_the_bottleneck() {
        // With one pool worker, everything serializes onto one virtual
        // thread; more workers (the real scheduler's `threads` knob)
        // must not hurt and typically shortens the makespan — and
        // answers stay equivalent.
        let mut base = 0.0;
        let mut reference = Vec::new();
        harness(|ctx| {
            let r = simulate_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                3,
                QueuePolicy::MaxFinalScore,
                &VTimeConfig {
                    threads: 1,
                    ..Default::default()
                },
            );
            base = r.makespan;
            reference = r.answers;
        });
        for threads in [2usize, 4, 8] {
            harness(|ctx| {
                let r = simulate_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    QueuePolicy::MaxFinalScore,
                    &VTimeConfig {
                        threads,
                        ..Default::default()
                    },
                );
                assert!(
                    r.makespan <= base * 1.05,
                    "threads={threads}: {} vs {base}",
                    r.makespan
                );
                assert!(
                    crate::topk::answers_equivalent(&r.answers, &reference, 1e-9),
                    "threads={threads}"
                );
            });
        }
    }

    #[test]
    fn steals_appear_with_multiple_workers_and_never_alone() {
        // One pool worker homes every queue: no steals by construction.
        harness(|ctx| {
            let r = simulate_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                3,
                QueuePolicy::MaxFinalScore,
                &VTimeConfig {
                    threads: 1,
                    ..Default::default()
                },
            );
            assert_eq!(r.metrics.steal_events, 0);
        });
        // More workers than servers: the surplus lives off stealing.
        harness(|ctx| {
            let r = simulate_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                3,
                QueuePolicy::MaxFinalScore,
                &VTimeConfig {
                    threads: 8,
                    ..Default::default()
                },
            );
            assert!(r.metrics.steal_events > 0, "{:?}", r.metrics.steal_events);
        });
    }

    #[test]
    fn sequential_virtual_time_formula() {
        let metrics = MetricsSnapshot {
            server_ops: 10,
            routing_decisions: 4,
            ..Default::default()
        };
        let cfg = VTimeConfig {
            server_op_cost: 2.0,
            router_cost: 0.5,
            ..Default::default()
        };
        assert!((sequential_virtual_time(&metrics, &cfg) - 22.0).abs() < 1e-12);
    }
}
