//! Threshold queries: all answers scoring at least τ.
//!
//! The paper contrasts its top-k goal with its predecessor's
//! (Amer-Yahia/Cho/Srivastava, EDBT'02): "the goal was to identify all
//! answers whose score exceeds a certain threshold (instead of top-k
//! answers). Early pruning was performed using branch-and-bound
//! techniques." This module provides that evaluation mode on the same
//! adaptive machinery: a partial match is pruned as soon as its maximum
//! possible final score falls below the fixed threshold, and every
//! complete match that clears the threshold is returned.

use crate::context::QueryContext;
use crate::queue::{MatchQueue, QueuePolicy};
use crate::router::RoutingStrategy;
use crate::topk::RankedAnswer;
use std::collections::HashMap;
use whirlpool_score::Score;
use whirlpool_xml::NodeId;

/// Returns every answer whose score is at least `tau`, best first
/// (one entry per root — the best completion), evaluated adaptively à
/// la Whirlpool-S with branch-and-bound pruning against the fixed
/// threshold.
pub fn run_threshold(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    tau: Score,
) -> Vec<RankedAnswer> {
    let full = ctx.full_mask();
    let mut best: HashMap<NodeId, Score> = HashMap::new();
    let mut pool = ctx.new_pool();
    let mut queue = MatchQueue::new(QueuePolicy::MaxFinalScore, None);

    let record = |best: &mut HashMap<NodeId, Score>, root: NodeId, score: Score| {
        if score >= tau {
            let entry = best.entry(root).or_insert(score);
            *entry = (*entry).max(score);
        }
    };

    for m in ctx.make_root_matches() {
        if m.max_final < tau {
            ctx.metrics.add_pruned();
            pool.release(m);
            continue;
        }
        if m.is_complete(full) {
            record(&mut best, m.root(), m.score);
            pool.release(m);
        } else {
            queue.push(ctx, m);
        }
    }

    let mut exts = Vec::new();
    while let Some(m) = queue.pop() {
        // The threshold is fixed, so no pop-time re-check is needed —
        // everything queued already cleared it.
        let server = routing.choose(ctx, &m, tau);
        exts.clear();
        ctx.process_at_server_pooled(server, &m, &mut exts, &mut pool);
        pool.release(m);
        for e in exts.drain(..) {
            if e.max_final < tau {
                ctx.metrics.add_pruned();
                pool.release(e);
                continue;
            }
            if e.is_complete(full) {
                record(&mut best, e.root(), e.score);
                pool.release(e);
            } else {
                queue.push(ctx, e);
            }
        }
    }

    let mut answers: Vec<RankedAnswer> = best
        .into_iter()
        .map(|(root, score)| RankedAnswer { root, score })
        .collect();
    answers.sort_by(|a, b| b.score.cmp(&a.score).then(a.root.cmp(&b.root)));
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextOptions, RelaxMode};
    use crate::engine::{evaluate_with_context, Algorithm, EvalOptions};
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><x><title>t</title></x></book>\
        <book><name/></book>\
        </shelf>";

    fn harness(relax: RelaxMode, f: impl FnOnce(&QueryContext<'_>)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax,
                ..Default::default()
            },
        );
        f(&ctx);
    }

    /// Reference: scores of all answers from an exhaustive top-k run.
    fn all_answers(ctx: &QueryContext<'_>) -> Vec<RankedAnswer> {
        evaluate_with_context(ctx, &Algorithm::LockStepNoPrune, &EvalOptions::top_k(1_000)).answers
    }

    #[test]
    fn threshold_selects_exactly_the_clearing_answers() {
        let mut reference = Vec::new();
        harness(RelaxMode::Relaxed, |ctx| reference = all_answers(ctx));
        for tau in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5] {
            harness(RelaxMode::Relaxed, |ctx| {
                let got = run_threshold(ctx, &RoutingStrategy::MinAlive, Score::new(tau));
                let expected: Vec<_> = reference
                    .iter()
                    .filter(|a| a.score.value() >= tau)
                    .collect();
                assert_eq!(got.len(), expected.len(), "tau={tau}");
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g.score, e.score, "tau={tau}");
                }
            });
        }
    }

    #[test]
    fn high_threshold_prunes_aggressively() {
        let mut ops_low = 0;
        let mut ops_high = 0;
        harness(RelaxMode::Relaxed, |ctx| {
            let _ = run_threshold(ctx, &RoutingStrategy::MinAlive, Score::new(0.0));
            ops_low = ctx.metrics.snapshot().server_ops;
        });
        harness(RelaxMode::Relaxed, |ctx| {
            let _ = run_threshold(ctx, &RoutingStrategy::MinAlive, Score::new(2.5));
            ops_high = ctx.metrics.snapshot().server_ops;
        });
        assert!(ops_high < ops_low, "{ops_high} !< {ops_low}");
    }

    #[test]
    fn impossible_threshold_returns_nothing_quickly() {
        harness(RelaxMode::Relaxed, |ctx| {
            let got = run_threshold(ctx, &RoutingStrategy::MinAlive, Score::new(100.0));
            assert!(got.is_empty());
            // Every root match is pruned before any server runs.
            assert_eq!(ctx.metrics.snapshot().server_ops, 0);
        });
    }

    #[test]
    fn works_in_exact_mode() {
        harness(RelaxMode::Exact, |ctx| {
            let got = run_threshold(ctx, &RoutingStrategy::MinAlive, Score::new(0.0));
            // Only the one fully-exact book survives exact evaluation.
            assert_eq!(got.len(), 1);
        });
    }
}
