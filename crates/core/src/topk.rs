//! The candidate top-k set.
//!
//! "The system maintains a candidate set of top-k (partial or complete)
//! matches, along with their scores, as the basis for determining if a
//! newly computed partial match, (i) updates the score of an existing
//! match in the set, or (ii) replaces an existing match in the set, or
//! (iii) is pruned ... Note that only one match with a given root node
//! is present in the top-k set as the k returned answers must be
//! distinct instantiations of the query root node." (§5.1)

use crate::partial::PartialMatch;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeSet, HashMap};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use whirlpool_score::Score;
use whirlpool_xml::NodeId;

/// A ranked answer: a query-root document node and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAnswer {
    /// The instantiation of the query's returned node.
    pub root: NodeId,
    /// The answer's (current best) score.
    pub score: Score,
}

/// Bounded best-per-root scoreboard with an ordered view.
#[derive(Debug)]
pub struct TopKSet {
    k: usize,
    /// External lower bound on the pruning threshold (see
    /// [`TopKSet::with_floor`]). Zero for standalone runs.
    floor: Score,
    /// root -> current entry score.
    by_root: HashMap<NodeId, Score>,
    /// (score, root), ascending — first element is the k-th (weakest)
    /// entry.
    ordered: BTreeSet<(Score, NodeId)>,
}

impl TopKSet {
    /// Creates an empty set holding at most `k` entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self::with_floor(k, Score::ZERO)
    }

    /// Creates an empty set whose pruning threshold never drops below
    /// `floor`.
    ///
    /// A collection driver seeds each per-shard run with the *global*
    /// k-th score observed so far, so a shard prunes against the best
    /// answers of every shard already evaluated, not just its own.
    /// Soundness: the global threshold is monotone non-decreasing, so
    /// `floor ≤` the final global k-th score; a match pruned against
    /// the floor (`max_final < floor`, strict) can finish no better
    /// than `max_final`, hence strictly below the final k-th — it could
    /// not have entered the global top-k even as a tie. With
    /// `floor == 0` behavior is identical to [`TopKSet::new`].
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_floor(k: usize, floor: Score) -> Self {
        assert!(k > 0, "top-k with k = 0");
        TopKSet {
            k,
            floor,
            by_root: HashMap::new(),
            ordered: BTreeSet::new(),
        }
    }

    /// The configured answer count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True when no entry has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// The pruning threshold: the k-th best current score once the set
    /// is full, otherwise zero (nothing can be pruned while slots
    /// remain — any match could still fill one). Never below the
    /// configured floor ([`TopKSet::with_floor`]).
    pub fn threshold(&self) -> Score {
        let own = if self.ordered.len() < self.k {
            Score::ZERO
        } else {
            self.ordered
                .iter()
                .next()
                .map(|(s, _)| *s)
                .unwrap_or(Score::ZERO)
        };
        own.max(self.floor)
    }

    /// Should this match be discarded? True iff even its maximum
    /// possible final score cannot beat the current k-th score (strict:
    /// ties survive).
    pub fn should_prune(&self, m: &PartialMatch) -> bool {
        m.max_final < self.threshold()
    }

    /// Offers a match's current score for its root. Updates the
    /// existing entry if this root already has a weaker one, inserts if
    /// a slot is free, or evicts the weakest entry if this score beats
    /// it. Returns `true` if the set changed.
    pub fn offer(&mut self, root: NodeId, score: Score) -> bool {
        if let Some(&existing) = self.by_root.get(&root) {
            if score > existing {
                self.ordered.remove(&(existing, root));
                self.ordered.insert((score, root));
                self.by_root.insert(root, score);
                return true;
            }
            return false;
        }
        if self.ordered.len() < self.k {
            self.ordered.insert((score, root));
            self.by_root.insert(root, score);
            return true;
        }
        let weakest = *self.ordered.iter().next().expect("full set is non-empty");
        if score > weakest.0 {
            self.ordered.remove(&weakest);
            self.by_root.remove(&weakest.1);
            self.ordered.insert((score, root));
            self.by_root.insert(root, score);
            return true;
        }
        false
    }

    /// Convenience: offer a partial match's current score.
    pub fn offer_match(&mut self, m: &PartialMatch) -> bool {
        self.offer(m.root(), m.score)
    }

    /// The current entries, best first.
    pub fn ranked(&self) -> Vec<RankedAnswer> {
        self.ordered
            .iter()
            .rev()
            .map(|&(score, root)| RankedAnswer { root, score })
            .collect()
    }
}

/// A [`TopKSet`] shared between threads, with a lock-free threshold
/// snapshot for the hot prune path.
///
/// The k-th best score is monotone non-decreasing over a run: offers
/// only ever raise entry scores or evict weaker entries, and the
/// threshold stays zero until the set fills. A stale copy of it is
/// therefore always **≤** the live value, which makes two lock-free
/// shortcuts sound:
///
/// * **Pruning** against the snapshot ([`SharedTopK::should_prune`])
///   is conservative — a match the snapshot condemns
///   (`max_final < snapshot ≤ live threshold`) would also be condemned
///   under the lock. Matches the snapshot spares are re-checked at
///   their next prune point.
/// * **Offer skipping** ([`SharedTopK::offer_is_noop`]): a score
///   strictly below a *positive* snapshot cannot change the set. A
///   positive snapshot proves the set was full (fullness is monotone
///   too), so insertion needs `score > weakest ≥ snapshot` and a
///   same-root update needs `score > existing ≥ threshold ≥ snapshot`
///   — both impossible. Such offers skip the lock entirely.
///
/// With a threshold floor ([`SharedTopK::with_floor`]) a positive
/// snapshot no longer proves fullness, so a skipped offer may not be a
/// literal no-op on the live set — but the entry it would have created
/// scores strictly below the floor, and the floor's contract (the
/// caller guarantees no answer below it can matter) makes dropping it
/// harmless: the collection driver's global merge would reject it for
/// the same reason.
///
/// The snapshot is refreshed from the live set whenever a
/// [`SharedTopK::lock`] guard drops, i.e. only when some thread
/// actually touched the set.
#[derive(Debug)]
pub struct SharedTopK {
    inner: Mutex<TopKSet>,
    /// `f64::to_bits` of the last published threshold. Monotone
    /// non-decreasing as an f64 (not as raw bits, which is fine — it is
    /// only ever decoded, never compared as an integer).
    threshold_bits: AtomicU64,
}

impl SharedTopK {
    /// An empty shared set holding at most `k` entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self::with_floor(k, Score::ZERO)
    }

    /// An empty shared set whose threshold never drops below `floor`
    /// (see [`TopKSet::with_floor`]); the snapshot starts at the floor
    /// so even pre-publication prunes benefit from it.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_floor(k: usize, floor: Score) -> Self {
        SharedTopK {
            inner: Mutex::new(TopKSet::with_floor(k, floor)),
            threshold_bits: AtomicU64::new(floor.value().to_bits()),
        }
    }

    /// The last published threshold: a single relaxed load, always ≤
    /// the live [`TopKSet::threshold`].
    #[inline]
    pub fn threshold_snapshot(&self) -> Score {
        Score::new(f64::from_bits(self.threshold_bits.load(Ordering::Relaxed)))
    }

    /// Lock-free conservative prune check: true only if the live set
    /// would also prune `m` (strict, so ties survive — matching
    /// [`TopKSet::should_prune`]).
    #[inline]
    pub fn should_prune(&self, m: &PartialMatch) -> bool {
        m.max_final < self.threshold_snapshot()
    }

    /// Can offering `score` be skipped without taking the lock? True
    /// only when the offer is provably a no-op on the live set (see the
    /// type docs for the proof).
    #[inline]
    pub fn offer_is_noop(&self, score: Score) -> bool {
        score < self.threshold_snapshot()
    }

    /// Locks the set for reading or writing. Dropping the guard
    /// publishes the (possibly raised) threshold into the snapshot.
    pub fn lock(&self) -> SharedTopKGuard<'_> {
        SharedTopKGuard {
            bits: &self.threshold_bits,
            guard: self.inner.lock(),
        }
    }

    /// Unwraps the final set once all threads are done.
    pub fn into_inner(self) -> TopKSet {
        self.inner.into_inner()
    }
}

/// Write access to a [`SharedTopK`]; publishes the threshold snapshot
/// on drop.
pub struct SharedTopKGuard<'a> {
    bits: &'a AtomicU64,
    guard: MutexGuard<'a, TopKSet>,
}

impl Deref for SharedTopKGuard<'_> {
    type Target = TopKSet;
    fn deref(&self) -> &TopKSet {
        &self.guard
    }
}

impl DerefMut for SharedTopKGuard<'_> {
    fn deref_mut(&mut self) -> &mut TopKSet {
        &mut self.guard
    }
}

impl Drop for SharedTopKGuard<'_> {
    fn drop(&mut self) {
        self.bits
            .store(self.guard.threshold().value().to_bits(), Ordering::Release);
    }
}

/// Are two ranked answer lists equivalent as top-k results?
///
/// Engines (and thread interleavings) may resolve *score ties*
/// differently, and any resolution is a correct top-k answer. Two lists
/// are equivalent iff (1) their score vectors agree pairwise within
/// `epsilon`, and (2) within every maximal group of tied scores the same
/// root sets appear — except for a tied group that touches the end of
/// the list, where different members of the tie may have been admitted.
pub fn answers_equivalent(a: &[RankedAnswer], b: &[RankedAnswer], epsilon: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (x, y) in a.iter().zip(b) {
        if (x.score.value() - y.score.value()).abs() > epsilon {
            return false;
        }
    }
    let mut i = 0;
    while i < a.len() {
        let mut j = i + 1;
        while j < a.len() && (a[j].score.value() - a[i].score.value()).abs() <= epsilon {
            j += 1;
        }
        // A tie group cut off by the k boundary may legitimately hold
        // different roots in the two lists.
        if j < a.len() {
            let mut ra: Vec<NodeId> = a[i..j].iter().map(|r| r.root).collect();
            let mut rb: Vec<NodeId> = b[i..j].iter().map(|r| r.root).collect();
            ra.sort_unstable();
            rb.sort_unstable();
            if ra != rb {
                return false;
            }
        }
        i = j;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn m(root: usize, score: f64, max_final: f64) -> PartialMatch {
        let mut pm = PartialMatch::new_root(0, 1, n(root), score, 0.0);
        pm.max_final = Score::new(max_final);
        pm
    }

    #[test]
    fn threshold_is_zero_until_full() {
        let mut set = TopKSet::new(2);
        assert_eq!(set.threshold(), Score::ZERO);
        set.offer(n(1), Score::new(5.0));
        assert_eq!(set.threshold(), Score::ZERO);
        set.offer(n(2), Score::new(3.0));
        assert_eq!(set.threshold(), Score::new(3.0));
    }

    #[test]
    fn offers_update_replace_and_reject() {
        let mut set = TopKSet::new(2);
        assert!(set.offer(n(1), Score::new(1.0)));
        assert!(set.offer(n(2), Score::new(2.0)));
        // Same root, better score: update.
        assert!(set.offer(n(1), Score::new(3.0)));
        // Same root, worse score: no change.
        assert!(!set.offer(n(1), Score::new(0.5)));
        // New root beating the weakest: replace.
        assert!(set.offer(n(3), Score::new(2.5)));
        let ranked = set.ranked();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].root, n(1));
        assert_eq!(ranked[1].root, n(3));
        // New root below the weakest: rejected.
        assert!(!set.offer(n(4), Score::new(0.1)));
    }

    #[test]
    fn pruning_respects_threshold_and_ties() {
        let mut set = TopKSet::new(1);
        set.offer(n(1), Score::new(2.0));
        assert!(set.should_prune(&m(9, 0.0, 1.9)));
        // Tie with the k-th score survives.
        assert!(!set.should_prune(&m(9, 0.0, 2.0)));
        assert!(!set.should_prune(&m(9, 0.0, 2.1)));
    }

    #[test]
    fn nothing_pruned_while_slots_remain() {
        let set = TopKSet::new(3);
        assert!(!set.should_prune(&m(9, 0.0, 0.0)));
    }

    #[test]
    fn one_entry_per_root() {
        let mut set = TopKSet::new(3);
        set.offer(n(1), Score::new(1.0));
        set.offer(n(1), Score::new(2.0));
        set.offer(n(1), Score::new(1.5));
        assert_eq!(set.len(), 1);
        assert_eq!(set.ranked()[0].score, Score::new(2.0));
    }

    #[test]
    fn ranked_is_descending() {
        let mut set = TopKSet::new(5);
        for (i, s) in [(1, 0.3), (2, 0.9), (3, 0.1), (4, 0.7)] {
            set.offer(n(i), Score::new(s));
        }
        let scores: Vec<f64> = set.ranked().iter().map(|a| a.score.value()).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.3, 0.1]);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_is_rejected() {
        let _ = TopKSet::new(0);
    }

    #[test]
    fn floor_raises_the_threshold_until_the_set_beats_it() {
        let mut set = TopKSet::with_floor(2, Score::new(1.5));
        // Empty set: the floor already prunes.
        assert_eq!(set.threshold(), Score::new(1.5));
        assert!(set.should_prune(&m(9, 0.0, 1.4)));
        assert!(!set.should_prune(&m(9, 0.0, 1.5)), "ties survive");
        // Partially full: still the floor.
        set.offer(n(1), Score::new(9.0));
        assert_eq!(set.threshold(), Score::new(1.5));
        // Full but k-th below the floor: the floor wins.
        set.offer(n(2), Score::new(1.0));
        assert_eq!(set.threshold(), Score::new(1.5));
        // Full with k-th above the floor: the live k-th wins.
        set.offer(n(3), Score::new(2.0));
        assert_eq!(set.threshold(), Score::new(2.0));
    }

    #[test]
    fn zero_floor_is_the_default_behavior() {
        let mut a = TopKSet::new(3);
        let mut b = TopKSet::with_floor(3, Score::ZERO);
        for (i, s) in [(1, 0.3), (2, 0.9), (3, 0.1), (4, 0.7)] {
            assert_eq!(a.offer(n(i), Score::new(s)), b.offer(n(i), Score::new(s)));
            assert_eq!(a.threshold(), b.threshold());
        }
    }

    #[test]
    fn shared_floor_is_visible_before_any_publication() {
        let shared = SharedTopK::with_floor(2, Score::new(3.0));
        // No guard has dropped yet, but the snapshot starts at the
        // floor, so prunes and offer skips already apply.
        assert_eq!(shared.threshold_snapshot(), Score::new(3.0));
        assert!(shared.should_prune(&m(9, 0.0, 2.9)));
        assert!(shared.offer_is_noop(Score::new(2.9)));
        assert!(!shared.offer_is_noop(Score::new(3.0)));
    }

    #[test]
    fn snapshot_is_published_on_guard_drop() {
        let shared = SharedTopK::new(2);
        assert_eq!(shared.threshold_snapshot(), Score::ZERO);
        {
            let mut g = shared.lock();
            g.offer(n(1), Score::new(5.0));
            g.offer(n(2), Score::new(3.0));
            // Not yet published: the guard is still alive.
            assert_eq!(shared.threshold_snapshot(), Score::ZERO);
        }
        assert_eq!(shared.threshold_snapshot(), Score::new(3.0));
        assert_eq!(shared.into_inner().threshold(), Score::new(3.0));
    }

    #[test]
    fn snapshot_prune_is_conservative() {
        let shared = SharedTopK::new(1);
        shared.lock().offer(n(1), Score::new(2.0));
        // Below the snapshot: pruned, as under the lock.
        assert!(shared.should_prune(&m(9, 0.0, 1.9)));
        // Ties survive, exactly like TopKSet::should_prune.
        assert!(!shared.should_prune(&m(9, 0.0, 2.0)));
    }

    #[test]
    fn offer_skipping_needs_a_positive_snapshot() {
        let shared = SharedTopK::new(2);
        // Empty set: snapshot is zero, nothing may be skipped.
        assert!(!shared.offer_is_noop(Score::ZERO));
        assert!(!shared.offer_is_noop(Score::new(0.5)));
        {
            let mut g = shared.lock();
            g.offer(n(1), Score::new(4.0));
            g.offer(n(2), Score::new(2.0));
        }
        // Full set, snapshot 2.0: strictly weaker offers are no-ops.
        assert!(shared.offer_is_noop(Score::new(1.9)));
        assert!(!shared.offer_is_noop(Score::new(2.0)));
        // Cross-check the claim against the live set.
        assert!(!shared.lock().offer(n(3), Score::new(1.9)));
    }

    #[test]
    fn equivalence_accepts_tail_tie_swaps() {
        let a = vec![
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(2),
                score: Score::new(2.0),
            },
        ];
        let b_same = a.clone();
        let b_tail_tie = vec![
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(9),
                score: Score::new(2.0),
            },
        ];
        let b_wrong_score = vec![
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(2),
                score: Score::new(1.0),
            },
        ];
        assert!(answers_equivalent(&a, &b_same, 1e-9));
        // The 2.0 group touches the end: root swap allowed.
        assert!(answers_equivalent(&a, &b_tail_tie, 1e-9));
        assert!(!answers_equivalent(&a, &b_wrong_score, 1e-9));
        assert!(!answers_equivalent(&a, &a[..1], 1e-9));
    }

    #[test]
    fn equivalence_rejects_interior_root_swaps() {
        let a = vec![
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(2),
                score: Score::new(2.0),
            },
        ];
        let b = vec![
            RankedAnswer {
                root: n(7),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(2),
                score: Score::new(2.0),
            },
        ];
        // The 3.0 "group" does not touch the end; its roots must agree.
        assert!(!answers_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn equivalence_allows_reorder_within_interior_ties() {
        let a = vec![
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(2),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(3),
                score: Score::new(1.0),
            },
        ];
        let b = vec![
            RankedAnswer {
                root: n(2),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(1),
                score: Score::new(3.0),
            },
            RankedAnswer {
                root: n(3),
                score: Score::new(1.0),
            },
        ];
        assert!(answers_equivalent(&a, &b, 1e-9));
    }
}
