//! The top-level evaluation API.

use crate::context::{ContextOptions, QueryContext, RelaxMode};
use crate::error::Completeness;
use crate::fault::{Budget, FaultPlan, RunControl};
use crate::lockstep::{run_lockstep_anytime, run_lockstep_noprune_anytime};
use crate::metrics::MetricsSnapshot;
use crate::queue::QueuePolicy;
use crate::router::RoutingStrategy;
use crate::topk::RankedAnswer;
use crate::whirlpool_m::{run_whirlpool_m_anytime, WhirlpoolMConfig};
use crate::whirlpool_s::run_whirlpool_s_anytime;
use std::time::{Duration, Instant};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{StaticPlan, TreePattern};
use whirlpool_score::ScoreModel;
use whirlpool_xml::Document;

/// Which engine evaluates the query.
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// LockStep without pruning — the exhaustive baseline.
    LockStepNoPrune,
    /// LockStep with score-based pruning.
    LockStep,
    /// Single-threaded adaptive Whirlpool.
    WhirlpoolS,
    /// Multi-threaded adaptive Whirlpool, optionally capped to a number
    /// of concurrently executing server operations.
    WhirlpoolM {
        /// Concurrent-operation cap (`None`: unbounded).
        processors: Option<usize>,
    },
}

impl Algorithm {
    /// The engine's name as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::LockStepNoPrune => "LockStep-NoPrun",
            Algorithm::LockStep => "LockStep",
            Algorithm::WhirlpoolS => "Whirlpool-S",
            Algorithm::WhirlpoolM { .. } => "Whirlpool-M",
        }
    }
}

/// Evaluation options (paper Table 1 column, roughly).
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Number of answers to return.
    pub k: usize,
    /// Exact-only or relaxed (approximate) matching.
    pub relax: RelaxMode,
    /// Routing strategy for the adaptive engines; also supplies the
    /// static plan for the LockStep engines (which require
    /// [`RoutingStrategy::Static`] — other strategies fall back to the
    /// query-node-order plan).
    pub routing: RoutingStrategy,
    /// Queue prioritization.
    pub queue: QueuePolicy,
    /// Artificial per-server-operation cost (Figure 8).
    pub op_cost: Option<Duration>,
    /// Sample size for selectivity estimation.
    pub selectivity_sample: usize,
    /// Bulk-routing batch for Whirlpool-S: matches with the same
    /// visited-server set share one routing decision (1 = per-match
    /// routing, the paper's default; >1 = its §6.3.3 future-work
    /// proposal).
    pub router_batch: usize,
    /// Recycle partial-match binding buffers through per-run (per-
    /// thread, for Whirlpool-M) [`MatchPool`](crate::MatchPool)s.
    /// Defaults to `true`; answer sets are identical either way.
    pub pooling: bool,
    /// Locate candidate ranges for whole drained same-server batches in
    /// one sweep
    /// ([`locate_batch_at_server`](crate::QueryContext::locate_batch_at_server))
    /// instead of per match. Defaults to `true`; answers, metrics,
    /// traces, and routing decisions are identical either way (pinned
    /// by the batching differential suite) — disabling exists for A/B
    /// measurement.
    pub op_batching: bool,
    /// Wall-clock budget: when it expires the engine stops consuming
    /// work and returns the current top-k as an anytime answer tagged
    /// [`Completeness::Truncated`]. `None`: run to completion.
    pub deadline: Option<Duration>,
    /// Server-operation budget, checked at queue-pop granularity like
    /// `deadline`. Deterministic, unlike wall-clock deadlines.
    pub max_server_ops: Option<u64>,
    /// Injected faults for robustness testing (`None`: the fault layer
    /// is compiled out of the hot path behind a single branch).
    pub fault_plan: Option<FaultPlan>,
    /// Cooperative cancellation: the holder keeps a clone of the token
    /// and trips it to make the run drain to a certified
    /// [`Completeness::Truncated`] anytime answer. Checked wherever the
    /// budget is (queue pops, plus every
    /// [`INTERRUPT_SPAN`](crate::INTERRUPT_SPAN) candidates inside the
    /// columnar kernels), so cancelled runs return their worker
    /// threads promptly. `None`: no cancellation site is compiled into
    /// the hot path.
    pub cancel: Option<crate::fault::CancelToken>,
    /// Record a structured event trace of the run (see
    /// [`trace`](crate::trace)) and return it on
    /// [`EvalResult::trace`]. Off by default; when off, every emit
    /// site in the engines is one inlined branch. Ignored (the trace
    /// comes back empty) when the `trace` cargo feature is disabled.
    pub trace: bool,
    /// Total scheduler worker threads for Whirlpool-M, independent of
    /// query size: server queues get home workers round-robin and idle
    /// workers steal whole batches from loaded foreign queues. `1`
    /// serializes all server work onto one worker; larger values
    /// implement the paper's §7 "maximal parallelism" future-work
    /// proposal. Ignored by the other engines.
    pub threads: usize,
    /// Lower bound seeded into the run's top-k pruning threshold.
    /// `0.0` (the default) is inert. The collection driver sets this to
    /// the current *global* k-th score before evaluating a shard, so
    /// the shard prunes against every shard already evaluated; sound
    /// because the global threshold only rises, so anything pruned
    /// against the floor scores strictly below the final k-th answer.
    pub threshold_floor: f64,
    /// Cross-run work-stealing board for Whirlpool-M: when set, the run
    /// publishes an assist door on this registry so idle threads
    /// elsewhere (the collection driver's workers between shards) can
    /// join its pool as extra stealing workers. `None` (the default)
    /// compiles no assist machinery into the run. Ignored by the other
    /// engines.
    pub assist: Option<crate::assist::AssistRegistry>,
}

impl EvalOptions {
    /// The default configuration for a top-`k` query: relaxed matching,
    /// `min_alive_partial_matches` routing, max-final-score queues.
    pub fn top_k(k: usize) -> Self {
        EvalOptions {
            k,
            relax: RelaxMode::Relaxed,
            routing: RoutingStrategy::MinAlive,
            queue: QueuePolicy::MaxFinalScore,
            op_cost: None,
            selectivity_sample: 64,
            router_batch: 1,
            pooling: true,
            op_batching: true,
            deadline: None,
            max_server_ops: None,
            fault_plan: None,
            cancel: None,
            trace: false,
            threads: 1,
            threshold_floor: 0.0,
            assist: None,
        }
    }
}

/// The outcome of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Top-k answers, best first.
    pub answers: Vec<RankedAnswer>,
    /// Is `answers` the true top-k, or an anytime prefix cut short by a
    /// budget or a server failure? Truncated results carry a score
    /// bound certifying what any missing answer could have scored.
    pub completeness: Completeness,
    /// Work counters.
    pub metrics: MetricsSnapshot,
    /// Wall-clock time of the evaluation proper (excludes index and
    /// model construction).
    pub elapsed: Duration,
    /// The structured event trace, when [`EvalOptions::trace`] was set.
    pub trace: Option<crate::trace::TraceData>,
}

/// Evaluates `pattern` over `doc` with the chosen engine.
///
/// # Example
///
/// ```
/// use whirlpool_core::{evaluate, Algorithm, EvalOptions};
/// use whirlpool_index::TagIndex;
/// use whirlpool_pattern::parse_pattern;
/// use whirlpool_score::{Normalization, TfIdfModel};
/// use whirlpool_xml::parse_document;
///
/// let doc = parse_document(
///     "<shelf><book><title>a</title><isbn>1</isbn></book>\
///      <book><title>b</title></book></shelf>",
/// ).unwrap();
/// let index = TagIndex::build(&doc);
/// let query = parse_pattern("//book[./title and ./isbn]").unwrap();
/// let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
/// let result = evaluate(
///     &doc, &index, &query, &model,
///     &Algorithm::WhirlpoolS, &EvalOptions::top_k(1),
/// );
/// assert_eq!(result.answers.len(), 1);
/// ```
pub fn evaluate(
    doc: &Document,
    index: &TagIndex,
    pattern: &TreePattern,
    model: &dyn ScoreModel,
    algorithm: &Algorithm,
    options: &EvalOptions,
) -> EvalResult {
    evaluate_view(doc.into(), index.view(), pattern, model, algorithm, options)
}

/// [`evaluate`] over borrowed views — the entry point for
/// snapshot-attached corpora, where no owned [`Document`] or
/// [`TagIndex`] exists. Identical engines and kernels run over either
/// backing.
pub fn evaluate_view(
    doc: whirlpool_index::DocView<'_>,
    index: whirlpool_index::TagIndexView<'_>,
    pattern: &TreePattern,
    model: &dyn ScoreModel,
    algorithm: &Algorithm,
    options: &EvalOptions,
) -> EvalResult {
    let ctx = QueryContext::new_view(
        doc,
        index,
        pattern,
        model,
        ContextOptions {
            relax: options.relax,
            selectivity_sample: options.selectivity_sample,
            op_cost: options.op_cost,
            pooling: options.pooling,
            op_batching: options.op_batching,
        },
    );
    evaluate_with_context(&ctx, algorithm, options)
}

/// Evaluates against a pre-built context (lets callers reuse the
/// selectivity sample across runs and read the metric counters).
pub fn evaluate_with_context(
    ctx: &QueryContext<'_>,
    algorithm: &Algorithm,
    options: &EvalOptions,
) -> EvalResult {
    let static_plan = match &options.routing {
        RoutingStrategy::Static(plan) => plan.clone(),
        _ => StaticPlan::in_id_order(ctx.pattern.server_ids().count()),
    };

    // The budget's clock starts here, with the evaluation proper.
    let mut control = RunControl::new(
        Budget::new(options.deadline, options.max_server_ops).with_cancel(options.cancel.clone()),
        options.fault_plan.as_ref(),
        ctx.pattern.len(),
    );
    if options.threshold_floor > 0.0 {
        control =
            control.with_threshold_floor(whirlpool_score::Score::new(options.threshold_floor));
    }
    let tracer = options.trace.then(crate::trace::Tracer::new);
    if let Some(t) = &tracer {
        control = control.with_tracer(t.clone());
    }

    let start = Instant::now();
    let run = match algorithm {
        Algorithm::LockStepNoPrune => {
            run_lockstep_noprune_anytime(ctx, &static_plan, options.k, &control)
        }
        Algorithm::LockStep => {
            run_lockstep_anytime(ctx, &static_plan, options.k, options.queue, &control)
        }
        Algorithm::WhirlpoolS => run_whirlpool_s_anytime(
            ctx,
            &options.routing,
            options.k,
            options.queue,
            options.router_batch,
            &control,
        ),
        Algorithm::WhirlpoolM { processors } => run_whirlpool_m_anytime(
            ctx,
            &options.routing,
            options.k,
            &WhirlpoolMConfig {
                queue_policy: options.queue,
                processors: *processors,
                threads: options.threads.max(1),
                assist: options.assist.clone(),
            },
            &control,
        ),
    };
    let elapsed = start.elapsed();

    EvalResult {
        answers: run.answers,
        completeness: run.completeness,
        metrics: ctx.metrics.snapshot(),
        elapsed,
        trace: tracer.map(|t| t.finish()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    #[test]
    fn all_algorithms_agree_on_a_small_corpus() {
        let doc = parse_document(
            "<shelf>\
             <book><title>a</title><isbn>1</isbn><price>3</price></book>\
             <book><title>b</title><isbn>2</isbn></book>\
             <book><x><title>c</title></x></book>\
             <book/>\
             </shelf>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let options = EvalOptions::top_k(3);

        let reference = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::LockStepNoPrune,
            &options,
        );
        for alg in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
            Algorithm::WhirlpoolM {
                processors: Some(2),
            },
        ] {
            let got = evaluate(&doc, &index, &pattern, &model, &alg, &options);
            let gs: Vec<_> = got.answers.iter().map(|r| (r.root, r.score)).collect();
            let rs: Vec<_> = reference
                .answers
                .iter()
                .map(|r| (r.root, r.score))
                .collect();
            assert_eq!(gs, rs, "algorithm {}", alg.name());
        }
    }

    #[test]
    fn metrics_and_elapsed_are_reported() {
        let doc = parse_document("<r><book><title>x</title></book></r>").unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let result = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(1),
        );
        assert_eq!(result.answers.len(), 1);
        assert!(result.metrics.server_ops >= 1);
        assert!(result.metrics.partials_created >= 2);
    }

    #[test]
    fn op_cost_injection_slows_execution() {
        let doc = parse_document(
            "<r><book><t/></book><book><t/></book><book><t/></book><book><t/></book></r>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./t]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let mut options = EvalOptions::top_k(2);
        let fast = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        options.op_cost = Some(Duration::from_millis(5));
        let slow = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        assert!(slow.elapsed > fast.elapsed);
        assert!(slow.elapsed >= Duration::from_millis(5) * slow.metrics.server_ops as u32);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::LockStepNoPrune.name(), "LockStep-NoPrun");
        assert_eq!(
            Algorithm::WhirlpoolM { processors: None }.name(),
            "Whirlpool-M"
        );
    }

    #[test]
    fn pre_cancelled_token_yields_a_certified_truncation() {
        let doc = parse_document(
            "<shelf>\
             <book><title>a</title><isbn>1</isbn></book>\
             <book><title>b</title><isbn>2</isbn></book>\
             </shelf>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);

        let token = crate::fault::CancelToken::new();
        token.cancel();
        let mut options = EvalOptions::top_k(2);
        options.cancel = Some(token);

        for alg in [
            Algorithm::LockStepNoPrune,
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM {
                processors: Some(2),
            },
        ] {
            let result = evaluate(&doc, &index, &pattern, &model, &alg, &options);
            match result.completeness {
                Completeness::Truncated {
                    pending_matches, ..
                } => assert!(pending_matches > 0, "algorithm {}", alg.name()),
                Completeness::Exact => {
                    panic!("{} ignored a pre-cancelled token", alg.name())
                }
            }
            assert_eq!(result.metrics.cancellations, 1, "algorithm {}", alg.name());
            assert_eq!(result.metrics.deadline_hits, 0, "algorithm {}", alg.name());
        }
    }

    #[test]
    fn untripped_token_changes_nothing() {
        let doc = parse_document(
            "<shelf>\
             <book><title>a</title><isbn>1</isbn><price>3</price></book>\
             <book><title>b</title><isbn>2</isbn></book>\
             <book><x><title>c</title></x></book>\
             </shelf>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn and ./price]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);

        let plain = EvalOptions::top_k(3);
        let mut tokened = EvalOptions::top_k(3);
        tokened.cancel = Some(crate::fault::CancelToken::new());

        let a = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &plain,
        );
        let b = evaluate(
            &doc,
            &index,
            &pattern,
            &model,
            &Algorithm::WhirlpoolS,
            &tokened,
        );
        assert_eq!(a.completeness, Completeness::Exact);
        assert_eq!(b.completeness, Completeness::Exact);
        let key = |r: &EvalResult| {
            r.answers
                .iter()
                .map(|a| (a.root, a.score))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.metrics.server_ops, b.metrics.server_ops);
        assert_eq!(
            a.metrics.predicate_comparisons,
            b.metrics.predicate_comparisons
        );
        assert_eq!(a.metrics.kernel_lanes, b.metrics.kernel_lanes);
        assert_eq!(b.metrics.cancellations, 0);
    }
}
