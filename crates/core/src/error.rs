//! Structured engine errors and anytime-answer completeness.
//!
//! The robustness layer never lets a sick server or an exhausted budget
//! abort a query: engines degrade to an *anytime answer* — the current
//! top-k heap — and report how complete it is. [`Completeness`] carries
//! the max-score certificate (the same bound `threshold.rs` exploits):
//! no answer missing from a truncated result can score above
//! `score_bound`.

use whirlpool_pattern::QNodeId;

/// The underlying cause of an [`EngineError::InvalidFaultSpec`]: the
/// malformed `--fault` specification itself, kept as its own
/// [`std::error::Error`] type so the chain survives
/// [`source`](std::error::Error::source)-walking error reporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The specification text that failed to parse.
    pub spec: String,
}

impl FaultSpecError {
    /// Wraps the offending spec text.
    pub fn new(spec: impl Into<String>) -> Self {
        FaultSpecError { spec: spec.into() }
    }
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed spec {:?} (expected server=<id>:<delay|fail|panic>@<n>)",
            self.spec
        )
    }
}

impl std::error::Error for FaultSpecError {}

/// An error raised inside an engine, router, or fault-injected server.
///
/// Engines never surface these to the caller as hard failures: a failed
/// server degrades its matches (see the crate docs on leaf-deletion
/// scoring) and the error is folded into the run's [`Completeness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A server returned an injected (or real) failure after processing
    /// `after_ops` operations; its remaining work is degraded.
    ServerFailed {
        /// The query node whose server failed.
        server: QNodeId,
        /// Operations the server completed before failing.
        after_ops: u64,
    },
    /// A server thread panicked (poisoned mid-extension) and was
    /// isolated via `catch_unwind`.
    ServerPanicked {
        /// The query node whose server panicked.
        server: QNodeId,
    },
    /// A `--fault` specification could not be parsed. The offending
    /// spec is carried as the error's
    /// [`source`](std::error::Error::source).
    InvalidFaultSpec(FaultSpecError),
    /// A routing decision was requested for a match with no live
    /// unvisited server left.
    NoRouteAvailable,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ServerFailed { server, after_ops } => {
                write!(f, "server q{} failed after {} ops", server.0, after_ops)
            }
            EngineError::ServerPanicked { server } => {
                write!(f, "server q{} panicked", server.0)
            }
            EngineError::InvalidFaultSpec(cause) => {
                write!(f, "invalid fault spec: {cause}")
            }
            EngineError::NoRouteAvailable => {
                write!(f, "no live unvisited server to route to")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidFaultSpec(cause) => Some(cause),
            EngineError::ServerFailed { .. }
            | EngineError::ServerPanicked { .. }
            | EngineError::NoRouteAvailable => None,
        }
    }
}

/// How complete an evaluation's answer set is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completeness {
    /// The run consumed all of its work: the answers are the true
    /// top-k (up to score ties).
    Exact,
    /// The run stopped early (deadline, op budget, or server failure)
    /// and returned the current top-k heap as an anytime answer.
    Truncated {
        /// Partial matches abandoned unprocessed (dropped from queues)
        /// plus matches completed through degradation.
        pending_matches: u64,
        /// Max-score certificate: no answer absent from the returned
        /// set — and no better score for a returned root — can exceed
        /// this bound. Computed as the maximum `max_final` over every
        /// abandoned or degraded match, joined with the best returned
        /// score.
        score_bound: f64,
    },
}

impl Completeness {
    /// Is the answer set the true top-k?
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }

    /// The certificate bound, if the run was truncated.
    pub fn score_bound(&self) -> Option<f64> {
        match self {
            Completeness::Exact => None,
            Completeness::Truncated { score_bound, .. } => Some(*score_bound),
        }
    }

    /// Short label for reports (`exact` / `truncated`).
    pub fn label(&self) -> &'static str {
        match self {
            Completeness::Exact => "exact",
            Completeness::Truncated { .. } => "truncated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::ServerFailed {
            server: QNodeId(2),
            after_ops: 100,
        };
        assert!(e.to_string().contains("q2"));
        assert!(e.to_string().contains("100"));
        let p = EngineError::ServerPanicked { server: QNodeId(1) };
        assert!(p.to_string().contains("panicked"));
        assert!(EngineError::InvalidFaultSpec(FaultSpecError::new("x"))
            .to_string()
            .contains("fault spec"));
    }

    #[test]
    fn source_chains_to_the_offending_spec() {
        use std::error::Error;
        let e = EngineError::InvalidFaultSpec(FaultSpecError::new("server=oops"));
        let src = e.source().expect("invalid spec has a source");
        assert!(src.to_string().contains("server=oops"));
        assert!(src.downcast_ref::<FaultSpecError>().is_some());
        // Leaf errors report no source rather than a dangling chain.
        assert!(EngineError::NoRouteAvailable.source().is_none());
        assert!(EngineError::ServerPanicked { server: QNodeId(1) }
            .source()
            .is_none());
    }

    #[test]
    fn completeness_accessors() {
        assert!(Completeness::Exact.is_exact());
        assert_eq!(Completeness::Exact.score_bound(), None);
        assert_eq!(Completeness::Exact.label(), "exact");
        let t = Completeness::Truncated {
            pending_matches: 3,
            score_bound: 1.5,
        };
        assert!(!t.is_exact());
        assert_eq!(t.score_bound(), Some(1.5));
        assert_eq!(t.label(), "truncated");
    }
}
