//! Partial matches — the unit of work the engines route between
//! servers.

use whirlpool_pattern::QNodeId;
use whirlpool_score::{MatchLevel, Score};
use whirlpool_xml::NodeId;

/// The state of one query node within a partial match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// The node's server has not processed this match yet.
    Unbound,
    /// Instantiated with a document node at the given level.
    Matched {
        /// The bound document node.
        node: NodeId,
        /// Exact or relaxed satisfaction of its component predicate.
        level: MatchLevel,
    },
    /// The node's server ran and found no candidate: the outer-join
    /// null, i.e. the leaf-deletion relaxation applied (score
    /// contribution 0).
    Null,
}

impl Binding {
    /// The bound document node, if any.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Binding::Matched { node, .. } => Some(*node),
            _ => None,
        }
    }

    /// Has the binding's server processed this match (matched or null)?
    pub fn is_bound(&self) -> bool {
        !matches!(self, Binding::Unbound)
    }
}

/// A (partial or complete) match: one candidate instantiation of a
/// prefix of the query nodes, with its current score and the maximum
/// score it can still reach.
#[derive(Debug, Clone)]
pub struct PartialMatch {
    /// Creation sequence number, unique within one evaluation. Used for
    /// FIFO queueing and deterministic tie-breaks.
    pub seq: u64,
    /// Per-query-node state, indexed by [`QNodeId`]. `bindings[0]` (the
    /// pattern root) is always `Matched`.
    pub bindings: Box<[Binding]>,
    /// Bitmask of query nodes whose server has processed this match
    /// (bit 0 = the root, set at creation).
    pub visited: u64,
    /// Sum of the contributions of all bound nodes.
    pub score: Score,
    /// `score` + the maximum possible contribution of every unvisited
    /// server — the key the router queue orders by, and the quantity
    /// compared against the top-k threshold for pruning.
    pub max_final: Score,
    /// Did this match pass through a dead server? Degraded matches were
    /// scored as if the dead server's predicate were relaxed away (the
    /// leaf-deletion relaxation); a completed degraded match counts
    /// toward `answers_degraded`.
    pub degraded: bool,
}

impl PartialMatch {
    /// A fresh match rooted at `root` (produced by the root server).
    ///
    /// `root_contribution` is the root binding's own score;
    /// `remaining_max` is the sum of all servers' maximum contributions.
    pub fn new_root(
        seq: u64,
        query_len: usize,
        root: NodeId,
        root_contribution: f64,
        remaining_max: f64,
    ) -> Self {
        let mut bindings = vec![Binding::Unbound; query_len].into_boxed_slice();
        bindings[0] = Binding::Matched {
            node: root,
            level: MatchLevel::Exact,
        };
        let score = Score::new(root_contribution);
        PartialMatch {
            seq,
            bindings,
            visited: 1, // root bit
            score,
            max_final: score.plus(remaining_max),
            degraded: false,
        }
    }

    /// The instantiated pattern-root node.
    ///
    /// # Panics
    /// Panics if the root binding is missing — impossible for matches
    /// produced by the engines.
    pub fn root(&self) -> NodeId {
        self.bindings[0]
            .node()
            .expect("partial match without a root binding")
    }

    /// Has the given server already processed this match?
    pub fn has_visited(&self, server: QNodeId) -> bool {
        self.visited & (1 << server.0) != 0
    }

    /// Complete ⇔ every query node's server has run (bindings may still
    /// be `Null` — those took the leaf-deletion path).
    pub fn is_complete(&self, full_mask: u64) -> bool {
        self.visited == full_mask
    }

    /// [`extend`](Self::extend), but drawing the child's binding buffer
    /// from `pool` instead of allocating — the engines' hot path.
    /// Behavior is identical; only the allocator traffic differs.
    pub fn extend_in(
        &self,
        pool: &mut crate::pool::MatchPool<'_>,
        seq: u64,
        server: QNodeId,
        binding: Binding,
        contribution: f64,
        server_max: f64,
    ) -> PartialMatch {
        debug_assert!(!self.has_visited(server), "server visited twice");
        let mut bindings = pool.acquire_copy(&self.bindings);
        bindings[server.index()] = binding;
        let score = self.score.plus(contribution);
        let max_final = Score::new(self.max_final.value() - server_max + contribution);
        PartialMatch {
            seq,
            bindings,
            visited: self.visited | (1 << server.0),
            score,
            max_final,
            degraded: self.degraded,
        }
    }

    /// Derives the child match produced by binding `server` to
    /// `binding` with score `contribution`, where `server_max` is that
    /// server's maximum possible contribution (subtracted from
    /// `max_final` and replaced by the actual contribution).
    pub fn extend(
        &self,
        seq: u64,
        server: QNodeId,
        binding: Binding,
        contribution: f64,
        server_max: f64,
    ) -> PartialMatch {
        debug_assert!(!self.has_visited(server), "server visited twice");
        let mut bindings = self.bindings.clone();
        bindings[server.index()] = binding;
        let score = self.score.plus(contribution);
        let max_final = Score::new(self.max_final.value() - server_max + contribution);
        PartialMatch {
            seq,
            bindings,
            visited: self.visited | (1 << server.0),
            score,
            max_final,
            degraded: self.degraded,
        }
    }

    /// The bitmask covering a query of `len` nodes.
    pub fn full_mask(len: usize) -> u64 {
        debug_assert!(len <= 64);
        if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        }
    }

    /// Servers not yet visited, given the query length.
    pub fn unvisited(&self, query_len: usize) -> impl Iterator<Item = QNodeId> + '_ {
        (1..query_len as u8)
            .map(QNodeId)
            .filter(move |q| !self.has_visited(*q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn root_match_initial_state() {
        let m = PartialMatch::new_root(0, 4, n(10), 0.5, 3.0);
        assert_eq!(m.root(), n(10));
        assert_eq!(m.score, Score::new(0.5));
        assert_eq!(m.max_final, Score::new(3.5));
        assert!(m.has_visited(QNodeId(0)));
        assert!(!m.has_visited(QNodeId(1)));
        assert!(!m.is_complete(PartialMatch::full_mask(4)));
        assert_eq!(m.unvisited(4).count(), 3);
    }

    #[test]
    fn extend_updates_score_and_bound() {
        let m = PartialMatch::new_root(0, 3, n(1), 0.0, 2.0); // two servers, max 1.0 each
        let e = m.extend(
            1,
            QNodeId(1),
            Binding::Matched {
                node: n(5),
                level: MatchLevel::Exact,
            },
            0.4,
            1.0,
        );
        assert_eq!(e.score, Score::new(0.4));
        // max_final dropped by the server's slack: 2.0 - 1.0 + 0.4.
        assert_eq!(e.max_final, Score::new(1.4));
        assert!(e.has_visited(QNodeId(1)));
        assert_eq!(e.bindings[1].node(), Some(n(5)));
        // Parent unchanged.
        assert!(!m.has_visited(QNodeId(1)));
    }

    #[test]
    fn null_extension_keeps_score() {
        let m = PartialMatch::new_root(0, 2, n(1), 0.0, 1.0);
        let e = m.extend(1, QNodeId(1), Binding::Null, 0.0, 1.0);
        assert_eq!(e.score, Score::ZERO);
        assert_eq!(e.max_final, Score::ZERO);
        assert!(e.is_complete(PartialMatch::full_mask(2)));
        assert_eq!(e.bindings[1], Binding::Null);
        assert_eq!(e.bindings[1].node(), None);
    }

    #[test]
    fn completion_by_mask() {
        let m = PartialMatch::new_root(0, 3, n(0), 0.0, 0.0);
        let full = PartialMatch::full_mask(3);
        let e1 = m.extend(1, QNodeId(2), Binding::Null, 0.0, 0.0);
        assert!(!e1.is_complete(full));
        let e2 = e1.extend(2, QNodeId(1), Binding::Null, 0.0, 0.0);
        assert!(e2.is_complete(full));
    }

    #[test]
    fn full_mask_boundaries() {
        assert_eq!(PartialMatch::full_mask(1), 1);
        assert_eq!(PartialMatch::full_mask(3), 0b111);
        assert_eq!(PartialMatch::full_mask(64), u64::MAX);
    }
}
