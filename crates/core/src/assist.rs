//! Cross-shard work stealing: idle collection workers join in-progress
//! per-shard engine runs.
//!
//! The sharded driver runs each visited shard's Whirlpool-M pool with
//! one thread (`shard_opts.threads = 1`) so that N collection workers
//! can process N shards concurrently. The weakness is the *tail*: when
//! the shard cursor is exhausted and one hot shard is still running,
//! the other workers used to spin-wait while the hot shard crawled
//! along single-threaded. An [`AssistRegistry`] closes that gap — each
//! in-progress engine run publishes a *door* (a closure that enters its
//! worker pool as an extra stealing worker), and idle collection
//! workers walk through any open door instead of idling.
//!
//! The registry is deliberately engine-agnostic: a door is just
//! `Fn(usize)` taking an assist sequence number. Whirlpool-M maps the
//! sequence onto worker ids above its home range, so assist workers own
//! no home queues and live entirely off batch stealing — a mode the
//! pool already supports and tests pin down.
//!
//! # Lifetime safety
//!
//! The published closure borrows the engine run's stack state (shared
//! queues, top-k, control). [`AssistRegistry::publish`] erases that
//! lifetime to store the door, which is sound because the returned
//! [`DoorGuard`] *blocks on drop* until the door is closed and every
//! thread inside it has left: `enter` checks `open` and increments
//! `active` under the same mutex that `close` uses, so after
//! `DoorGuard::drop` returns no thread is inside the closure and none
//! can enter later. The guard is dropped before the engine's scope
//! returns, so the borrowed state strictly outlives every call.

use std::sync::{Arc, Condvar, Mutex};

/// Type-erased door: the assist closure plus its open/active state.
struct Door {
    /// The assist closure. The `'static` is a lie told by `publish`;
    /// see the module docs for why it cannot be observed. Kept alive
    /// (not dropped) until the door slot is cleared — threads inside
    /// the closure when the door closes still execute through it.
    func: Box<dyn Fn(usize) + Send + Sync + 'static>,
    /// Closed doors admit no new entrants.
    open: bool,
    /// Threads currently inside `func`.
    active: usize,
    /// Next assist sequence number for this door (distinct per entry so
    /// the engine can mint distinct worker ids).
    next_seq: usize,
}

#[derive(Default)]
struct Board {
    doors: Vec<Option<Door>>,
    /// Round-robin cursor so concurrent assisters spread over open
    /// doors instead of piling onto the first.
    rr: usize,
}

#[derive(Default)]
struct Inner {
    board: Mutex<Board>,
    /// Signalled when a door opens (so idle workers re-scan) and when a
    /// door drains (so a closing guard can finish).
    cv: Condvar,
}

/// A shared board of in-progress engine runs that idle workers can
/// join. Clones share the same board.
#[derive(Clone, Default)]
pub struct AssistRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for AssistRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let board = self.inner.board.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("AssistRegistry")
            .field("doors", &board.doors.iter().filter(|d| d.is_some()).count())
            .finish()
    }
}

impl AssistRegistry {
    /// A fresh, empty registry.
    pub fn new() -> AssistRegistry {
        AssistRegistry::default()
    }

    /// Publishes `f` as an open door and returns the guard that closes
    /// it. Each entering thread calls `f(seq)` with a sequence number
    /// unique within this door.
    ///
    /// The closure may borrow non-`'static` state: the guard's drop
    /// blocks until no thread is (or can be) inside it.
    pub fn publish<'f>(&self, f: impl Fn(usize) + Send + Sync + 'f) -> DoorGuard<'f> {
        let boxed: Box<dyn Fn(usize) + Send + Sync + 'f> = Box::new(f);
        // SAFETY: the erased closure is only callable through `enter`,
        // which holds it no longer than the door is open; DoorGuard's
        // drop closes the door and blocks until `active == 0` under the
        // door mutex, and the guard's lifetime is bounded by 'f. So the
        // closure is never invoked (nor invocable) outside 'f.
        let boxed: Box<dyn Fn(usize) + Send + Sync + 'static> =
            unsafe { std::mem::transmute(boxed) };
        let mut board = self.inner.board.lock().unwrap_or_else(|e| e.into_inner());
        let door = Door {
            func: boxed,
            open: true,
            active: 0,
            next_seq: 0,
        };
        let slot = match board.doors.iter().position(|d| d.is_none()) {
            Some(i) => {
                board.doors[i] = Some(door);
                i
            }
            None => {
                board.doors.push(Some(door));
                board.doors.len() - 1
            }
        };
        drop(board);
        self.inner.cv.notify_all();
        DoorGuard {
            registry: self.clone(),
            slot,
            _marker: std::marker::PhantomData,
        }
    }

    /// Enters one open door, if any, and runs its closure to
    /// completion. Returns `true` if a door was entered (i.e. some
    /// engine run was assisted).
    pub fn assist_any(&self) -> bool {
        let (func_ptr, slot, seq) = {
            let mut board = self.inner.board.lock().unwrap_or_else(|e| e.into_inner());
            let len = board.doors.len();
            let start = board.rr;
            let Some(slot) = (0..len)
                .map(|i| (start + i) % len.max(1))
                .find(|&i| board.doors[i].as_ref().is_some_and(|d| d.open))
            else {
                return false;
            };
            board.rr = (slot + 1) % len;
            let door = board.doors[slot].as_mut().expect("slot just found");
            // Raw pointer escape hatch: the Box target is stable (the
            // slot only drops it after `active` returns to 0), and we
            // bump `active` before releasing the lock.
            let func_ptr: *const (dyn Fn(usize) + Send + Sync) = &*door.func;
            door.active += 1;
            let seq = door.next_seq;
            door.next_seq += 1;
            (func_ptr, slot, seq)
        };
        // Run outside the lock; panics still decrement `active` so a
        // closing guard cannot hang.
        struct Leave<'a>(&'a AssistRegistry, usize);
        impl Drop for Leave<'_> {
            fn drop(&mut self) {
                let mut board = self.0.inner.board.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(door) = board.doors[self.1].as_mut() {
                    door.active -= 1;
                }
                drop(board);
                self.0.inner.cv.notify_all();
            }
        }
        let leave = Leave(self, slot);
        // SAFETY: `active > 0` keeps the closure alive (the guard's
        // drop waits for it), so the pointer is valid for this call.
        unsafe { (*func_ptr)(seq) };
        drop(leave);
        true
    }

    /// Is any door currently open?
    pub fn has_open_door(&self) -> bool {
        let board = self.inner.board.lock().unwrap_or_else(|e| e.into_inner());
        board
            .doors
            .iter()
            .any(|d| d.as_ref().is_some_and(|d| d.open))
    }

    /// Parks the calling thread until a door opens or `timeout`
    /// elapses. Used by idle collection workers between assist scans.
    pub fn wait_for_work(&self, timeout: std::time::Duration) {
        let board = self.inner.board.lock().unwrap_or_else(|e| e.into_inner());
        if board
            .doors
            .iter()
            .any(|d| d.as_ref().is_some_and(|d| d.open))
        {
            return;
        }
        let _ = self
            .inner
            .cv
            .wait_timeout(board, timeout)
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// Closes its door on drop, blocking until every thread inside has
/// left. Returned by [`AssistRegistry::publish`].
pub struct DoorGuard<'f> {
    registry: AssistRegistry,
    slot: usize,
    _marker: std::marker::PhantomData<&'f ()>,
}

impl Drop for DoorGuard<'_> {
    fn drop(&mut self) {
        let mut board = self
            .registry
            .inner
            .board
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Close: no new thread can enter past this point (enter checks
        // `open` under this mutex). The closure itself stays alive —
        // threads already inside are still executing through it.
        if let Some(door) = board.doors[self.slot].as_mut() {
            door.open = false;
        }
        // Drain: wait until the threads already inside have left.
        while board.doors[self.slot].as_ref().map_or(0, |d| d.active) > 0 {
            board = self
                .registry
                .inner
                .cv
                .wait(board)
                .unwrap_or_else(|e| e.into_inner());
        }
        board.doors[self.slot] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn assist_runs_the_published_closure_with_distinct_seqs() {
        let reg = AssistRegistry::new();
        assert!(!reg.assist_any(), "no doors yet");
        let seqs = Mutex::new(Vec::new());
        {
            let guard = reg.publish(|seq| seqs.lock().unwrap().push(seq));
            assert!(reg.has_open_door());
            assert!(reg.assist_any());
            assert!(reg.assist_any());
            drop(guard);
        }
        assert!(!reg.assist_any(), "door closed on drop");
        let mut got = seqs.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn guard_drop_waits_for_threads_inside() {
        let reg = AssistRegistry::new();
        let entered = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicUsize::new(0));
        let borrowed_sum = AtomicUsize::new(0); // non-'static borrow
        std::thread::scope(|scope| {
            let guard = reg.publish(|_| {
                entered.fetch_add(1, Ordering::SeqCst);
                while release.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                borrowed_sum.fetch_add(1, Ordering::SeqCst);
            });
            let reg2 = reg.clone();
            scope.spawn(move || {
                assert!(reg2.assist_any());
            });
            while entered.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            // The assister is inside the closure. Dropping the guard
            // must block until it finishes — release it from another
            // thread after a delay.
            let release2 = release.clone();
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                release2.store(1, Ordering::SeqCst);
            });
            drop(guard);
            // If drop returned early the closure could still be
            // running; the sum being visible proves it completed.
            assert_eq!(borrowed_sum.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn multiple_doors_coexist_and_slots_recycle() {
        let reg = AssistRegistry::new();
        let hits = Mutex::new(Vec::new());
        let a = reg.publish(|_| hits.lock().unwrap().push("a"));
        {
            let _b = reg.publish(|_| hits.lock().unwrap().push("b"));
            assert!(reg.assist_any());
            assert!(reg.assist_any());
        }
        assert!(reg.assist_any()); // only door a remains
        drop(a);
        assert!(!reg.has_open_door());
        let hits = hits.lock().unwrap();
        assert_eq!(hits.len(), 3);
        assert!(hits.contains(&"a") && hits.contains(&"b"));
    }

    #[test]
    fn wait_for_work_returns_on_publish() {
        let reg = AssistRegistry::new();
        let start = std::time::Instant::now();
        reg.wait_for_work(Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(15), "timed out");
        let _g = reg.publish(|_| {});
        let start = std::time::Instant::now();
        reg.wait_for_work(Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "open door returns immediately"
        );
    }
}
