//! Small concurrency utilities.

use parking_lot::{Condvar, Mutex};

/// A counting semaphore used to cap concurrent server operations when
/// simulating a `p`-processor machine on real threads.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// # Panics
    /// Panics if `permits == 0` (would deadlock every acquirer).
    pub fn new(permits: usize) -> Self {
        assert!(permits > 0, "semaphore with zero permits");
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is available; the permit is released when
    /// the guard drops.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.cv.wait(&mut permits);
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }

    /// The number of currently available permits (racy; for tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

/// RAII permit returned by [`Semaphore::acquire`].
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        let mut permits = self.sem.permits.lock();
        *permits += 1;
        self.sem.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_are_returned_on_drop() {
        let sem = Semaphore::new(2);
        let a = sem.acquire();
        let b = sem.acquire();
        assert_eq!(sem.available(), 0);
        drop(a);
        assert_eq!(sem.available(), 1);
        drop(b);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn concurrency_is_bounded() {
        let sem = Semaphore::new(2);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _permit = sem.acquire();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    #[should_panic(expected = "zero permits")]
    fn zero_permits_rejected() {
        let _ = Semaphore::new(0);
    }
}
