//! Whirlpool-M: the multi-threaded adaptive engine.
//!
//! "Each server is handled by an individual thread. In addition to
//! server threads, a thread handles the router, and the main thread
//! checks for termination of top-k query execution" (§6.1.2). Each
//! server owns a priority queue of waiting partial matches; survivors
//! of a server operation go back to the router, which assigns them
//! their next server; the top-k set is shared.
//!
//! Termination: a global in-flight counter tracks matches in queues or
//! being processed; it reaches zero exactly when "there are no more
//! partial matches in any of the server queues, the router queue, or
//! being compared against the top-k set" (§5.1).

use crate::context::{QueryContext, RelaxMode};
use crate::queue::{MatchQueue, QueuePolicy};
use crate::router::RoutingStrategy;
use crate::topk::{RankedAnswer, TopKSet};
use crate::util::Semaphore;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use whirlpool_pattern::QNodeId;

/// Configuration for [`run_whirlpool_m`].
#[derive(Debug, Clone)]
pub struct WhirlpoolMConfig {
    /// Per-server queue prioritization (the paper settled on
    /// [`QueuePolicy::MaxFinalScore`]).
    pub queue_policy: QueuePolicy,
    /// Limit concurrent server operations to simulate a `p`-processor
    /// machine (`None`: no limit — the paper's "∞ processors" runs).
    /// Only observable when operations have real cost.
    pub processors: Option<usize>,
    /// Worker threads per server, all pulling from that server's queue.
    /// `1` is the paper's architecture; larger values implement its
    /// future-work proposal of "increasing the number of threads per
    /// server for maximal parallelism" (§7).
    pub threads_per_server: usize,
}

impl Default for WhirlpoolMConfig {
    fn default() -> Self {
        WhirlpoolMConfig {
            queue_policy: QueuePolicy::MaxFinalScore,
            processors: None,
            threads_per_server: 1,
        }
    }
}

/// A lock+condvar guarded match queue shared between producer and
/// consumer threads.
struct SharedQueue {
    inner: Mutex<MatchQueue>,
    cv: Condvar,
}

impl SharedQueue {
    fn new(policy: QueuePolicy, server: Option<QNodeId>) -> Self {
        SharedQueue {
            inner: Mutex::new(MatchQueue::new(policy, server)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, ctx: &QueryContext<'_>, m: crate::partial::PartialMatch) {
        self.inner.lock().push(ctx, m);
        self.cv.notify_one();
    }

    /// Blocks until a match is available or `done` is set.
    fn pop_wait(&self, done: &AtomicBool) -> Option<crate::partial::PartialMatch> {
        let mut guard = self.inner.lock();
        loop {
            if let Some(m) = guard.pop() {
                return Some(m);
            }
            if done.load(Ordering::Acquire) {
                return None;
            }
            self.cv.wait(&mut guard);
        }
    }

    /// Wakes every waiter. Must acquire the queue lock first: a waiter
    /// that has checked the `done` flag (false) but not yet parked holds
    /// the lock, and notifying without it would be a *lost wakeup* —
    /// the notification fires before the wait begins and the thread
    /// sleeps forever. Taking the lock orders this notify after that
    /// waiter's `wait()`, which re-checks `done` on wake.
    fn wake_all(&self) {
        let _guard = self.inner.lock();
        self.cv.notify_all();
    }
}

struct Shared<'c, 'a> {
    ctx: &'c QueryContext<'a>,
    topk: Mutex<TopKSet>,
    router_queue: SharedQueue,
    server_queues: Vec<SharedQueue>,
    /// Matches alive in the system (queued or being processed).
    in_flight: AtomicI64,
    done: AtomicBool,
    done_cv: Condvar,
    done_lock: Mutex<()>,
    offer_partial: bool,
    full_mask: u64,
    sem: Option<Semaphore>,
}

impl Shared<'_, '_> {
    /// Applies a net change to the in-flight count; the caller must have
    /// already pushed any children it created. Signals completion when
    /// the count reaches zero.
    fn adjust_in_flight(&self, delta: i64) {
        let now = self.in_flight.fetch_add(delta, Ordering::AcqRel) + delta;
        debug_assert!(now >= 0, "in-flight count went negative");
        if now == 0 {
            self.done.store(true, Ordering::Release);
            self.router_queue.wake_all();
            for q in &self.server_queues {
                q.wake_all();
            }
            let _g = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }

    fn server_queue(&self, server: QNodeId) -> &SharedQueue {
        &self.server_queues[server.index() - 1]
    }
}

/// Runs Whirlpool-M: one thread per server, one router thread, with the
/// calling thread acting as the paper's "main thread [that] checks for
/// termination".
pub fn run_whirlpool_m(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    config: &WhirlpoolMConfig,
) -> Vec<RankedAnswer> {
    let server_ids = ctx.server_ids();
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full_mask = ctx.full_mask();

    let shared = Shared {
        ctx,
        topk: Mutex::new(TopKSet::new(k)),
        router_queue: SharedQueue::new(QueuePolicy::MaxFinalScore, None),
        server_queues: server_ids
            .iter()
            .map(|&s| SharedQueue::new(config.queue_policy, Some(s)))
            .collect(),
        in_flight: AtomicI64::new(0),
        done: AtomicBool::new(false),
        done_cv: Condvar::new(),
        done_lock: Mutex::new(()),
        offer_partial,
        full_mask,
        sem: config.processors.map(Semaphore::new),
    };

    // Seed the router queue with the root server's output.
    let mut seeded = 0i64;
    {
        let mut topk = shared.topk.lock();
        for m in ctx.make_root_matches() {
            let complete = m.is_complete(full_mask);
            if offer_partial || complete {
                topk.offer_match(&m);
            }
            if !complete {
                shared.router_queue.push(ctx, m);
                seeded += 1;
            }
        }
    }
    if seeded == 0 {
        return shared.topk.into_inner().ranked();
    }
    shared.in_flight.store(seeded, Ordering::Release);

    let threads_per_server = config.threads_per_server.max(1);
    std::thread::scope(|scope| {
        // Router thread.
        scope.spawn(|| router_loop(&shared, routing));
        // Server threads (possibly several workers per server queue).
        for &server in &server_ids {
            for _ in 0..threads_per_server {
                let shared = &shared;
                scope.spawn(move || server_loop(shared, server));
            }
        }
        // Main thread: wait for termination.
        let mut guard = shared.done_lock.lock();
        while !shared.done.load(Ordering::Acquire) {
            shared.done_cv.wait(&mut guard);
        }
    });

    shared.topk.into_inner().ranked()
}

fn router_loop(shared: &Shared<'_, '_>, routing: &RoutingStrategy) {
    while let Some(m) = shared.router_queue.pop_wait(&shared.done) {
        let threshold = shared.topk.lock().threshold();
        let server = routing.choose(shared.ctx, &m, threshold);
        shared.server_queue(server).push(shared.ctx, m);
    }
}

fn server_loop(shared: &Shared<'_, '_>, server: QNodeId) {
    let ctx = shared.ctx;
    // One pool per worker thread: recycling needs no synchronization,
    // at the price of buffers retiring into whichever thread consumed
    // them rather than the one that allocated them.
    let mut pool = ctx.new_pool();
    let mut exts = Vec::new();
    let mut survivors = Vec::new();
    while let Some(m) = shared.server_queue(server).pop_wait(&shared.done) {
        if shared.topk.lock().should_prune(&m) {
            ctx.metrics.add_pruned();
            pool.release(m);
            shared.adjust_in_flight(-1);
            continue;
        }

        exts.clear();
        {
            // The processor budget covers the join work itself.
            let _permit = shared.sem.as_ref().map(Semaphore::acquire);
            ctx.process_at_server_pooled(server, &m, &mut exts, &mut pool);
        }
        pool.release(m);

        let mut kept = 0i64;
        {
            let mut topk = shared.topk.lock();
            for e in exts.drain(..) {
                let complete = e.is_complete(shared.full_mask);
                if shared.offer_partial || complete {
                    topk.offer_match(&e);
                }
                if complete {
                    pool.release(e);
                    continue;
                }
                if topk.should_prune(&e) {
                    ctx.metrics.add_pruned();
                    pool.release(e);
                    continue;
                }
                survivors.push(e);
            }
        }
        for e in survivors.drain(..) {
            shared.router_queue.push(ctx, e);
            kept += 1;
        }
        shared.adjust_in_flight(kept - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextOptions;
    use crate::lockstep::run_lockstep_noprune;
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::{parse_pattern, StaticPlan};
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><extra><title>t</title><price>3</price></extra></book>\
        <book><name/></book>\
        <book><isbn>5</isbn><price>1</price></book>\
        </shelf>";

    fn harness(query: &str, relax: RelaxMode, f: impl FnOnce(&QueryContext<'_>, usize)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(query).unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax,
                ..Default::default()
            },
        );
        f(&ctx, pattern.server_ids().count());
    }

    #[test]
    fn agrees_with_reference_for_all_k() {
        let query = "//book[./title and ./isbn and ./price]";
        for k in [1, 3, 6] {
            let mut reference = Vec::new();
            harness(query, RelaxMode::Relaxed, |ctx, servers| {
                reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), k);
            });
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    k,
                    &WhirlpoolMConfig::default(),
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
                assert_eq!(gs, rs, "k={k}");
            });
        }
    }

    #[test]
    fn processor_limit_does_not_change_answers() {
        let query = "//book[./title and ./isbn and ./price]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 3);
        });
        for procs in [1, 2, 4] {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    &WhirlpoolMConfig {
                        processors: Some(procs),
                        ..WhirlpoolMConfig::default()
                    },
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
                assert_eq!(gs, rs, "procs={procs}");
            });
        }
    }

    #[test]
    fn exact_mode_terminates_and_agrees() {
        let query = "//book[./title and ./isbn]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Exact, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 10);
        });
        harness(query, RelaxMode::Exact, |ctx, _| {
            let got = run_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                10,
                &WhirlpoolMConfig::default(),
            );
            let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
            let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
            assert_eq!(gs, rs);
        });
    }

    #[test]
    fn extra_threads_per_server_do_not_change_answers() {
        let query = "//book[./title and ./isbn and ./price]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 4);
        });
        for tps in [2usize, 4] {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    4,
                    &WhirlpoolMConfig {
                        threads_per_server: tps,
                        ..WhirlpoolMConfig::default()
                    },
                );
                assert!(
                    crate::topk::answers_equivalent(&got, &reference, 1e-9),
                    "threads_per_server={tps}"
                );
            });
        }
    }

    #[test]
    fn empty_root_set_returns_immediately() {
        harness("//nosuchroot[./title]", RelaxMode::Relaxed, |ctx, _| {
            let got = run_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                5,
                &WhirlpoolMConfig::default(),
            );
            assert!(got.is_empty());
        });
    }

    #[test]
    fn shutdown_handshake_survives_many_iterations() {
        // Regression test for a lost-wakeup deadlock: `wake_all` must
        // take the queue lock before notifying, or a thread that
        // checked `done == false` but had not yet parked sleeps
        // forever. The window is narrow — hammer the full
        // start/evaluate/terminate cycle.
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        for i in 0..300 {
            let ctx = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
            let got = run_whirlpool_m(
                &ctx,
                &RoutingStrategy::MinAlive,
                3,
                &WhirlpoolMConfig::default(),
            );
            assert!(!got.is_empty(), "iteration {i}");
        }
    }

    #[test]
    fn repeated_runs_are_consistent() {
        // The thread interleaving varies; the answer set must not.
        let query = "//book[./title and ./price]";
        let mut first: Option<Vec<(whirlpool_xml::NodeId, whirlpool_score::Score)>> = None;
        for _ in 0..10 {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    &WhirlpoolMConfig::default(),
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                match &first {
                    None => first = Some(gs),
                    Some(f) => assert_eq!(&gs, f),
                }
            });
        }
    }
}
