//! Whirlpool-M: the multi-threaded adaptive engine, scheduled by a
//! work-stealing worker pool.
//!
//! The paper assigns "each server ... an individual thread" (§6.1.2),
//! which caps parallelism at the number of query nodes and leaves
//! threads idle whenever routing skews load toward one server. Here
//! the per-server priority queues stay (they carry the paper's
//! prioritization semantics), but they are *served* by a pool of N
//! workers (N = `threads`, independent of query size): every server
//! queue has a home worker (`queue index mod N`), each worker drains
//! its home queues round-robin in [`DRAIN_BATCH`]-sized batches, and a
//! worker whose home queues are dry *steals* one whole batch from the
//! most-loaded foreign queue. Batches pop in heap order, so per-server
//! priority order is preserved within every batch, stolen or not. A
//! dedicated router thread assigns survivors their next server; the
//! top-k set is shared.
//!
//! Termination: a global in-flight counter tracks matches in queues or
//! being processed; it reaches zero exactly when "there are no more
//! partial matches in any of the server queues, the router queue, or
//! being compared against the top-k set" (§5.1). Each worker settles
//! its batch's net count change in one atomic op *before* publishing
//! the batch's survivors, so the count never undercounts live matches
//! — the settling protocol is per-batch, not per-queue, and therefore
//! unaffected by which worker drained the batch.
//!
//! Fault tolerance: a server whose injected fault fires (or that
//! panics) is isolated — the worker processing it marks it dead,
//! closes its queue, and rescues the queued matches; the router stops
//! routing to it and finishes stranded matches through degradation
//! (relaxed mode binds the dead server to the outer-join null, scoring
//! the predicate as the leaf-deletion relaxation). The worker itself
//! does *not* retire: it moves on to its other queues. A panic that
//! escapes the fault layer entirely (no fault plan — e.g. a panicking
//! score model) is caught at batch granularity: the in-hand match and
//! the rest of the batch are accounted into the truncation certificate
//! and the worker continues, so the run still terminates with a valid
//! anytime bound. Every rescued match either re-enters the router
//! queue (count unchanged) or leaves the system (count decremented).

use crate::context::{Located, QueryContext, RelaxMode};
use crate::fault::{guarded_process, guarded_process_located, EngineRun, RunControl, Truncation};
use crate::partial::PartialMatch;
use crate::pool::{MatchPool, PoolHub};
use crate::queue::{MatchQueue, QueuePolicy};
use crate::router::RoutingStrategy;
use crate::topk::{RankedAnswer, SharedTopK};
use crate::util::Semaphore;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use whirlpool_pattern::QNodeId;

/// Matches a worker moves per queue-lock acquisition: servers drain up
/// to this many waiting matches in one pop, the router drains up to
/// this many survivors in one pop and hands each server its routed
/// group in one push. Batching cuts lock traffic ~`DRAIN_BATCH`× at
/// the price of slightly staler priority order *within* a batch (a
/// higher-priority arrival cannot preempt matches already drained).
const DRAIN_BATCH: usize = 32;

/// Configuration for [`run_whirlpool_m`].
#[derive(Debug, Clone)]
pub struct WhirlpoolMConfig {
    /// Per-server queue prioritization (the paper settled on
    /// [`QueuePolicy::MaxFinalScore`]).
    pub queue_policy: QueuePolicy,
    /// Limit concurrent server operations to simulate a `p`-processor
    /// machine (`None`: no limit — the paper's "∞ processors" runs).
    /// Only observable when operations have real cost.
    pub processors: Option<usize>,
    /// Total worker threads in the scheduler pool, independent of query
    /// size. Server queues are assigned home workers round-robin and
    /// idle workers steal whole batches from loaded foreign queues;
    /// `1` serializes every server operation onto one worker (plus the
    /// router thread), larger values realize the paper's future-work
    /// proposal of "maximal parallelism" (§7) without one thread per
    /// server.
    pub threads: usize,
    /// When set, the run publishes an assist door on this registry for
    /// its lifetime: idle threads elsewhere (the collection driver's
    /// workers between shards) call through the door and join the pool
    /// as extra stealing workers with ids above the home range. The
    /// door closes — blocking until every assister has left — before
    /// the run returns, so assisted and unassisted runs return the same
    /// certified answer set.
    pub assist: Option<crate::assist::AssistRegistry>,
}

impl Default for WhirlpoolMConfig {
    fn default() -> Self {
        WhirlpoolMConfig {
            queue_policy: QueuePolicy::MaxFinalScore,
            processors: None,
            threads: 1,
            assist: None,
        }
    }
}

/// A match queue plus its closed flag, guarded by one lock so that
/// "push to a live queue" and "close and rescue everything queued" are
/// atomic with respect to each other.
struct QueueState {
    queue: MatchQueue,
    closed: bool,
}

/// A lock+condvar guarded match queue shared between producer and
/// consumer threads.
struct SharedQueue {
    inner: Mutex<QueueState>,
    cv: Condvar,
}

impl SharedQueue {
    fn new(policy: QueuePolicy, server: Option<QNodeId>) -> Self {
        SharedQueue {
            inner: Mutex::new(QueueState {
                queue: MatchQueue::new(policy, server),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Pushes `m` unless the queue has been closed; a closed queue
    /// hands the match back so the caller can re-route it.
    fn push(&self, ctx: &QueryContext<'_>, m: PartialMatch) -> Result<(), PartialMatch> {
        {
            let mut guard = self.inner.lock();
            if guard.closed {
                return Err(m);
            }
            guard.queue.push(ctx, m);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Pushes a whole batch under one lock acquisition, draining
    /// `batch`. A closed queue leaves `batch` untouched and returns
    /// `false` so the caller can re-route every match in it.
    fn push_batch(&self, ctx: &QueryContext<'_>, batch: &mut Vec<PartialMatch>) -> bool {
        if batch.is_empty() {
            return true;
        }
        let many = batch.len() > 1;
        {
            let mut guard = self.inner.lock();
            if guard.closed {
                return false;
            }
            for m in batch.drain(..) {
                guard.queue.push(ctx, m);
            }
        }
        // One wake per batch; notify_all only when there is work for
        // more than one sibling worker.
        if many {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
        true
    }

    /// Blocks until at least one match is available, then drains up to
    /// `max` of them into `out` — all under the single lock
    /// acquisition. Returns `false` (with `out` untouched) once the
    /// queue is closed or `done` is set with nothing left to drain.
    fn pop_wait_batch(&self, done: &AtomicBool, max: usize, out: &mut Vec<PartialMatch>) -> bool {
        let mut guard = self.inner.lock();
        loop {
            if !guard.queue.is_empty() {
                while out.len() < max {
                    match guard.queue.pop() {
                        Some(m) => out.push(m),
                        None => break,
                    }
                }
                return true;
            }
            if guard.closed || done.load(Ordering::Acquire) {
                return false;
            }
            self.cv.wait(&mut guard);
        }
    }

    /// Drains up to `max` matches into `out` without blocking — the
    /// worker-pool drain/steal primitive. Returns `true` when at least
    /// one match was moved; an empty or closed queue returns `false`
    /// immediately. Popping preserves heap order, so the batch carries
    /// the queue's priority order with it wherever it is processed.
    fn try_pop_batch(&self, max: usize, out: &mut Vec<PartialMatch>) -> bool {
        let mut guard = self.inner.lock();
        if guard.closed || guard.queue.is_empty() {
            return false;
        }
        while out.len() < max {
            match guard.queue.pop() {
                Some(m) => out.push(m),
                None => break,
            }
        }
        !out.is_empty()
    }

    /// Closes the queue and removes everything still in it, in one lock
    /// acquisition: any push that loses the race gets its match back
    /// (`push` returns `Err`) and re-routes, so no match is stranded in
    /// a closed queue. Notifying after the drop is safe here — unlike
    /// the `done` flag, `closed` is set under the queue lock itself, so
    /// a waiter that saw `closed == false` was parked before we took
    /// the lock and receives the notification.
    fn close_and_drain(&self) -> Vec<PartialMatch> {
        let mut rescued = Vec::new();
        {
            let mut guard = self.inner.lock();
            guard.closed = true;
            while let Some(m) = guard.queue.pop() {
                rescued.push(m);
            }
        }
        self.cv.notify_all();
        rescued
    }

    /// Current queue depth (takes the lock; used only by the tracing
    /// layer when it samples queue depths).
    fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Wakes every waiter. Must acquire the queue lock first: a waiter
    /// that has checked the `done` flag (false) but not yet parked holds
    /// the lock, and notifying without it would be a *lost wakeup* —
    /// the notification fires before the wait begins and the thread
    /// sleeps forever. Taking the lock orders this notify after that
    /// waiter's `wait()`, which re-checks `done` on wake.
    fn wake_all(&self) {
        let _guard = self.inner.lock();
        self.cv.notify_all();
    }
}

struct Shared<'c, 'a> {
    ctx: &'c QueryContext<'a>,
    /// Top-k set behind a lock-free threshold snapshot: the hot prune
    /// paths read the snapshot (one relaxed load) and take the lock
    /// only for offers that could actually change the set.
    topk: SharedTopK,
    /// Reservoir rebalancing binding buffers between the per-worker
    /// pool shards in whole blocks.
    pool_hub: PoolHub,
    router_queue: SharedQueue,
    server_queues: Vec<SharedQueue>,
    /// Matches alive in the system (queued or being processed).
    in_flight: AtomicI64,
    done: AtomicBool,
    done_cv: Condvar,
    done_lock: Mutex<()>,
    /// Bumped after every push that makes server-queue work visible
    /// (and on termination). Workers snapshot it before scanning their
    /// queues and re-check it under `work_lock` before parking, which
    /// closes the scan/park lost-wakeup window.
    work_version: AtomicU64,
    work_lock: Mutex<()>,
    work_cv: Condvar,
    offer_partial: bool,
    full_mask: u64,
    sem: Option<Semaphore>,
}

impl Shared<'_, '_> {
    /// Applies a net change to the in-flight count; the caller must have
    /// already pushed any children it created. Signals completion when
    /// the count reaches zero.
    fn adjust_in_flight(&self, delta: i64) {
        let now = self.in_flight.fetch_add(delta, Ordering::AcqRel) + delta;
        debug_assert!(now >= 0, "in-flight count went negative");
        if now == 0 {
            self.done.store(true, Ordering::Release);
            self.router_queue.wake_all();
            self.signal_work();
            let _g = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }

    /// Publishes new server-queue work (or termination) to the worker
    /// pool. The version bump is `Release`, so a worker whose `Acquire`
    /// snapshot observes it also observes the push that preceded it;
    /// the notify takes `work_lock` first, which orders it after any
    /// in-progress park decision (the same lost-wakeup argument as
    /// [`SharedQueue::wake_all`]).
    fn signal_work(&self) {
        self.work_version.fetch_add(1, Ordering::Release);
        let _g = self.work_lock.lock();
        self.work_cv.notify_all();
    }

    fn server_queue(&self, server: QNodeId) -> &SharedQueue {
        &self.server_queues[server.index() - 1]
    }
}

/// Runs Whirlpool-M: a pool of [`WhirlpoolMConfig::threads`] workers
/// serving every server queue (with batch stealing), one router
/// thread, and the calling thread acting as the paper's "main thread
/// \[that\] checks for termination".
pub fn run_whirlpool_m(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    config: &WhirlpoolMConfig,
) -> Vec<RankedAnswer> {
    run_whirlpool_m_anytime(ctx, routing, k, config, &RunControl::unlimited()).answers
}

/// Whirlpool-M under a [`RunControl`]: deadlines and op budgets turn
/// every consumer into a draining one (each abandoned match's score
/// bound is recorded before the run returns its anytime prefix), and a
/// server killed by an injected fault or panic is isolated without
/// aborting or hanging the run — its queued matches are redistributed
/// to the survivors or completed through degradation.
pub fn run_whirlpool_m_anytime(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    config: &WhirlpoolMConfig,
    control: &RunControl,
) -> EngineRun {
    let server_ids = ctx.server_ids();
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full_mask = ctx.full_mask();

    let shared = Shared {
        ctx,
        topk: SharedTopK::with_floor(k, control.threshold_floor()),
        pool_hub: PoolHub::new(),
        router_queue: SharedQueue::new(QueuePolicy::MaxFinalScore, None),
        server_queues: server_ids
            .iter()
            .map(|&s| SharedQueue::new(config.queue_policy, Some(s)))
            .collect(),
        in_flight: AtomicI64::new(0),
        done: AtomicBool::new(false),
        done_cv: Condvar::new(),
        done_lock: Mutex::new(()),
        work_version: AtomicU64::new(0),
        work_lock: Mutex::new(()),
        work_cv: Condvar::new(),
        offer_partial,
        full_mask,
        sem: config.processors.map(Semaphore::new),
    };

    // Seed the router queue with the root server's output.
    let mut seed_tr = control.trace_worker("main");
    seed_tr.span_begin("seed");
    let mut seeds = Vec::new();
    {
        let mut topk = shared.topk.lock();
        for m in ctx.make_root_matches() {
            seed_tr.spawned(&m);
            let complete = m.is_complete(full_mask);
            if offer_partial || complete {
                topk.offer_match(&m);
            }
            if complete {
                seed_tr.completed(&m);
            } else {
                seeds.push(m);
            }
        }
    }
    let seeded = seeds.len() as i64;
    push_to_router_batch(&shared, &mut seeds);
    seed_tr.span_end("seed");
    drop(seed_tr);
    if seeded == 0 {
        return EngineRun::exact(shared.topk.into_inner().ranked());
    }
    shared.in_flight.store(seeded, Ordering::Release);

    let trunc = Truncation::new();
    let workers = config.threads.max(1);
    // Open the assist door (if a registry was supplied) for the whole
    // run: assisters become stealing workers with ids above the home
    // range, a mode the pool supports for any worker count. The guard
    // drop below blocks until the last assister has left, so the
    // borrows of `shared`/`control`/`trunc` never escape this frame.
    let assist_guard = config.assist.as_ref().map(|registry| {
        let (shared, trunc) = (&shared, &trunc);
        registry.publish(move |seq| worker_loop(shared, workers + seq, workers, control, trunc))
    });
    std::thread::scope(|scope| {
        // Router thread.
        {
            let (shared, trunc) = (&shared, &trunc);
            scope.spawn(move || router_loop(shared, routing, control, trunc));
        }
        // Worker pool: N workers serve all the server queues between
        // them, N independent of the query size.
        for worker_id in 0..workers {
            let (shared, trunc) = (&shared, &trunc);
            scope.spawn(move || worker_loop(shared, worker_id, workers, control, trunc));
        }
        // Main thread: wait for termination.
        let mut guard = shared.done_lock.lock();
        while !shared.done.load(Ordering::Acquire) {
            shared.done_cv.wait(&mut guard);
        }
    });
    // Close the door and drain assisters before reading the result:
    // `done` is set, so anyone still inside (or entering before the
    // close lands) exits the worker loop promptly.
    drop(assist_guard);

    let answers = shared.topk.into_inner().ranked();
    let completeness = trunc.finish(&answers);
    EngineRun {
        answers,
        completeness,
    }
}

/// Pushes a batch to the router queue (one lock acquisition), which is
/// never closed.
fn push_to_router_batch(shared: &Shared<'_, '_>, batch: &mut Vec<PartialMatch>) {
    if !shared.router_queue.push_batch(shared.ctx, batch) {
        unreachable!("the router queue is never closed");
    }
}

/// Drains one match on budget expiry: its bound is recorded and it
/// leaves the system.
fn drain_expired(
    shared: &Shared<'_, '_>,
    control: &RunControl,
    trunc: &Truncation,
    m: PartialMatch,
    pool: &mut crate::pool::MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    if trunc.expire() {
        control.count_stop(&shared.ctx.metrics);
    }
    trunc.account(m.max_final);
    tr.abandoned(&m);
    pool.release(m);
    shared.adjust_in_flight(-1);
}

fn router_loop(
    shared: &Shared<'_, '_>,
    routing: &RoutingStrategy,
    control: &RunControl,
    trunc: &Truncation,
) {
    let ctx = shared.ctx;
    // The router only needs a pool on the degraded paths; it is idle
    // (and allocates nothing) in fault-free runs.
    let mut pool = ctx.new_pool_shared(&shared.pool_hub);
    let mut tr = control.trace_worker("router");
    tr.span_begin("route");
    let mut batch = Vec::new();
    // One out-queue per server: decisions stay per-match, queue pushes
    // are per (batch × server).
    let mut groups: Vec<Vec<PartialMatch>> =
        shared.server_queues.iter().map(|_| Vec::new()).collect();
    while shared
        .router_queue
        .pop_wait_batch(&shared.done, DRAIN_BATCH, &mut batch)
    {
        let threshold = shared.topk.threshold_snapshot();
        let queue_len = if tr.enabled() {
            let len = shared.router_queue.len();
            tr.queue_depth(crate::trace::QueueId::Router, len);
            len
        } else {
            0
        };
        for m in batch.drain(..) {
            if trunc.is_expired() || control.exhausted(&ctx.metrics) {
                drain_expired(shared, control, trunc, m, &mut pool, &mut tr);
                continue;
            }
            let candidates = if tr.enabled() {
                routing.explain(ctx, &m, threshold, |s| !control.is_dead(s))
            } else {
                Vec::new()
            };
            let choice = routing.try_choose(ctx, &m, threshold, |s| !control.is_dead(s));
            if tr.enabled() {
                tr.routed(crate::trace::RouteExplain {
                    seq: m.seq,
                    strategy: routing.name(),
                    threshold: threshold.value(),
                    queue_len,
                    group: 1,
                    chosen: choice,
                    candidates,
                });
            }
            match choice {
                Some(server) => groups[server.index() - 1].push(m),
                // Every remaining server for this match is dead.
                None => finish_unroutable(shared, trunc, m, &mut pool, &mut tr),
            }
        }
        let mut pushed = false;
        for (i, group) in groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            if shared.server_queues[i].push_batch(ctx, group) {
                pushed = true;
            } else {
                // The queue closed between the aliveness check and the
                // push (its server just died): re-route each match
                // among the survivors.
                for m in group.drain(..) {
                    ctx.metrics.add_match_redistributed();
                    reroute(shared, routing, control, trunc, m, &mut pool, &mut tr);
                }
            }
        }
        if pushed {
            shared.signal_work();
        }
    }
    tr.span_end("route");
}

/// Re-routes one match that lost a race with a closing queue,
/// re-choosing among the surviving servers until a push lands or no
/// server remains.
fn reroute(
    shared: &Shared<'_, '_>,
    routing: &RoutingStrategy,
    control: &RunControl,
    trunc: &Truncation,
    mut m: PartialMatch,
    pool: &mut crate::pool::MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    let ctx = shared.ctx;
    loop {
        let threshold = shared.topk.threshold_snapshot();
        let candidates = if tr.enabled() {
            routing.explain(ctx, &m, threshold, |s| !control.is_dead(s))
        } else {
            Vec::new()
        };
        let choice = routing.try_choose(ctx, &m, threshold, |s| !control.is_dead(s));
        if tr.enabled() {
            tr.routed(crate::trace::RouteExplain {
                seq: m.seq,
                strategy: routing.name(),
                threshold: threshold.value(),
                queue_len: shared.router_queue.len(),
                group: 1,
                chosen: choice,
                candidates,
            });
        }
        let Some(server) = choice else {
            finish_unroutable(shared, trunc, m, pool, tr);
            return;
        };
        match shared.server_queue(server).push(ctx, m) {
            Ok(()) => {
                shared.signal_work();
                return;
            }
            Err(back) => {
                ctx.metrics.add_match_redistributed();
                m = back;
            }
        }
    }
}

/// Completes a match none of whose remaining servers is alive: relaxed
/// mode degrades it to completion and offers it; exact mode can only
/// drop it. Either way its bound is recorded and it leaves the system.
fn finish_unroutable(
    shared: &Shared<'_, '_>,
    trunc: &Truncation,
    m: PartialMatch,
    pool: &mut crate::pool::MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    let ctx = shared.ctx;
    trunc.account(m.max_final);
    tr.abandoned(&m);
    if shared.offer_partial {
        ctx.metrics.add_match_redistributed();
        let done = crate::fault::degrade_to_completion(ctx, m, pool);
        tr.spawned(&done);
        shared.topk.lock().offer_match(&done);
        tr.completed(&done);
        ctx.metrics.add_answer_degraded();
        pool.release(done);
    } else {
        pool.release(m);
    }
    shared.adjust_in_flight(-1);
}

/// Rescues one match that reached dead `server`: relaxed mode degrades
/// it past the server and sends it back to the router (unless it is
/// now complete or prunable); exact mode drops it with its bound
/// recorded.
fn handle_dead_server_match(
    shared: &Shared<'_, '_>,
    trunc: &Truncation,
    server: QNodeId,
    m: PartialMatch,
    pool: &mut crate::pool::MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    let ctx = shared.ctx;
    trunc.account(m.max_final);
    tr.abandoned(&m);
    if !shared.offer_partial {
        pool.release(m);
        shared.adjust_in_flight(-1);
        return;
    }
    let e = ctx.degrade_at_server(server, &m, pool);
    ctx.metrics.add_match_redistributed();
    pool.release(m);
    tr.spawned(&e);
    let complete = e.is_complete(shared.full_mask);
    let (keep, threshold) = {
        let mut topk = shared.topk.lock();
        topk.offer_match(&e);
        let keep = if complete {
            false
        } else if topk.should_prune(&e) {
            ctx.metrics.add_pruned();
            false
        } else {
            true
        };
        (keep, topk.threshold())
    };
    if keep {
        // The rescued match stays in flight: net count change is zero.
        if shared.router_queue.push(ctx, e).is_err() {
            unreachable!("the router queue is never closed");
        }
    } else {
        if complete {
            ctx.metrics.add_answer_degraded();
            tr.completed(&e);
        } else {
            tr.pruned(&e, threshold);
        }
        pool.release(e);
        shared.adjust_in_flight(-1);
    }
}

/// Per-batch working state. It lives outside the batch loop so a panic
/// that escapes the fault layer can be settled at batch granularity:
/// [`abandon_batch`] accounts the in-hand match and the unprocessed
/// remainder into the truncation certificate and still publishes the
/// survivors the batch had already produced.
#[derive(Default)]
struct BatchWork {
    /// Drained batch, highest priority last (processed back-to-front).
    local: Vec<PartialMatch>,
    /// Candidate ranges aligned with `local` (batched locate mode).
    locs: Vec<Located>,
    /// Extensions produced by the match currently being processed.
    exts: Vec<PartialMatch>,
    /// Extensions that survived pruning, awaiting the router.
    survivors: Vec<PartialMatch>,
    /// Net in-flight change accumulated across the batch; applied in
    /// one atomic op at settle time, before the survivors are pushed.
    net: i64,
    /// The match whose server op is running right now. Stored here —
    /// not in a loop local — so `abandon_batch` can account it.
    in_hand: Option<PartialMatch>,
}

/// One scheduler worker: drains its home queues (indices congruent to
/// `worker_id` mod `n_workers`) round-robin one batch at a time, steals
/// a whole batch from the most-loaded foreign queue when every home
/// queue is dry, and parks on the global work signal when there is
/// nothing to do anywhere.
fn worker_loop(
    shared: &Shared<'_, '_>,
    worker_id: usize,
    n_workers: usize,
    control: &RunControl,
    trunc: &Truncation,
) {
    let ctx = shared.ctx;
    // One pool shard per worker thread: per-match recycling needs no
    // synchronization; whole blocks of buffers rebalance through the
    // shared hub when a shard runs dry or overflows.
    let mut pool = ctx.new_pool_shared(&shared.pool_hub);
    let server_ids = ctx.server_ids();
    let n_servers = shared.server_queues.len();
    let mut work = BatchWork::default();
    let mut tr = if control.tracing() {
        control.trace_worker(&format!("worker {worker_id}"))
    } else {
        crate::trace::WorkerTrace::disabled()
    };
    tr.span_begin("serve");
    loop {
        // Snapshot the version *before* scanning: any push the scan
        // could miss bumps the version afterwards (Release ordering),
        // so the park at the bottom sees a changed version and rescans
        // instead of sleeping — the scan/park lost-wakeup window is
        // closed by the version, the notify by `work_lock`.
        let version = shared.work_version.load(Ordering::Acquire);
        let mut found = false;
        // Home queues first, one batch each per sweep so no home queue
        // starves another. With one worker every queue is home, so
        // `steal_events` is zero by construction in serial runs.
        for qi in (worker_id..n_servers).step_by(n_workers) {
            if shared.server_queues[qi].try_pop_batch(DRAIN_BATCH, &mut work.local) {
                found = true;
                let server = server_ids[qi];
                serve_batch(
                    shared, server, &mut work, control, trunc, &mut pool, &mut tr,
                );
            }
        }
        if !found && !shared.done.load(Ordering::Acquire) {
            // Every home queue is dry: steal one whole batch from the
            // most-loaded foreign queue. The batch pops in heap order,
            // so the stolen work is exactly that server's current
            // highest-priority prefix and per-server priority order is
            // preserved within the batch.
            let victim = (0..n_servers)
                .filter(|qi| qi % n_workers != worker_id)
                .map(|qi| (shared.server_queues[qi].len(), qi))
                .max();
            if let Some((len, qi)) = victim {
                if len > 0 && shared.server_queues[qi].try_pop_batch(DRAIN_BATCH, &mut work.local) {
                    found = true;
                    let server = server_ids[qi];
                    ctx.metrics.add_steal(1);
                    tr.stolen(server, work.local.len());
                    serve_batch(
                        shared, server, &mut work, control, trunc, &mut pool, &mut tr,
                    );
                }
            }
        }
        if found {
            continue;
        }
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        let mut guard = shared.work_lock.lock();
        if shared.done.load(Ordering::Acquire)
            || shared.work_version.load(Ordering::Acquire) != version
        {
            continue;
        }
        shared.work_cv.wait(&mut guard);
    }
    tr.span_end("serve");
}

/// Serves one drained batch on behalf of `server`, catching any panic
/// that escapes the fault layer (e.g. a panicking score model when no
/// fault plan is active, so [`guarded_process`] runs unguarded). The
/// panic is settled at batch granularity — see [`abandon_batch`] — and
/// the worker keeps running, so a poisoned batch truncates the result
/// instead of hanging or aborting the run.
fn serve_batch(
    shared: &Shared<'_, '_>,
    server: QNodeId,
    work: &mut BatchWork,
    control: &RunControl,
    trunc: &Truncation,
    pool: &mut MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        process_batch(shared, server, work, control, trunc, pool, tr);
    }));
    if caught.is_err() {
        abandon_batch(shared, trunc, work, pool, tr);
    }
}

/// Settles a batch whose processing panicked outside the fault layer.
/// The in-hand match and the unprocessed remainder are accounted into
/// the truncation certificate and leave the system; extensions of the
/// in-hand match were never admitted (no spawn event, not yet counted
/// in-flight), so their buffers are simply recycled. The net count
/// change — including the kills — lands in one atomic op *before* the
/// already-produced survivors are pushed, preserving the settling
/// protocol's no-undercount invariant.
fn abandon_batch(
    shared: &Shared<'_, '_>,
    trunc: &Truncation,
    work: &mut BatchWork,
    pool: &mut MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    trunc.mark();
    let mut killed = 0i64;
    if let Some(m) = work.in_hand.take() {
        trunc.account(m.max_final);
        tr.abandoned(&m);
        pool.release(m);
        killed += 1;
    }
    while let Some(m) = work.local.pop() {
        trunc.account(m.max_final);
        tr.abandoned(&m);
        pool.release(m);
        killed += 1;
    }
    for e in work.exts.drain(..) {
        pool.release(e);
    }
    work.locs.clear();
    let delta = work.net - killed;
    work.net = 0;
    // `net` credits every survivor, so the count cannot reach zero
    // while the survivors below are still unpublished.
    if delta != 0 {
        shared.adjust_in_flight(delta);
    }
    push_to_router_batch(shared, &mut work.survivors);
}

fn process_batch(
    shared: &Shared<'_, '_>,
    server: QNodeId,
    work: &mut BatchWork,
    control: &RunControl,
    trunc: &Truncation,
    pool: &mut MatchPool<'_>,
    tr: &mut crate::trace::WorkerTrace,
) {
    let ctx = shared.ctx;
    let batching = ctx.op_batching();
    let queue = shared.server_queue(server);
    if tr.enabled() {
        tr.queue_depth(crate::trace::QueueId::Server(server), queue.len());
    }
    // Process the drained batch highest-priority first (the drain
    // preserved heap order; reverse so pop() walks it front-first).
    work.local.reverse();
    // One document-order locate sweep resolves every drained match's
    // candidate range before any is evaluated; `locs` stays aligned
    // with `local` and the two are popped in lockstep.
    if batching {
        let roots: Vec<_> = work.local.iter().map(|m| m.root()).collect();
        ctx.locate_batch_at_server(server, &roots, &mut work.locs);
    }
    // Net in-flight change accumulated across the batch; applied in
    // one atomic op at settle time, before the survivors are pushed,
    // so the count never undercounts live matches.
    work.net = 0;
    while let Some(m) = work.local.pop() {
        let loc = if batching {
            work.locs.pop().expect("locs stays aligned with local")
        } else {
            Located::Absent
        };
        if trunc.is_expired() || control.exhausted(&ctx.metrics) {
            drain_expired(shared, control, trunc, m, pool, tr);
            continue;
        }
        if shared.topk.should_prune(&m) {
            // Conservative lock-free check: the snapshot only
            // condemns matches the live threshold also would.
            ctx.metrics.add_pruned();
            tr.pruned(&m, shared.topk.threshold_snapshot());
            pool.release(m);
            work.net -= 1;
            continue;
        }

        work.exts.clear();
        let t0 = tr.op_start();
        // The match lives in the batch state while the join runs so a
        // panic escaping the fault layer can still account it.
        work.in_hand = Some(m);
        let ran = {
            let BatchWork {
                ref in_hand,
                ref mut exts,
                ..
            } = *work;
            let m = in_hand.as_ref().expect("in-hand match was just stored");
            // The processor budget covers the join work itself.
            let _permit = shared.sem.as_ref().map(Semaphore::acquire);
            if batching {
                guarded_process_located(ctx, control, trunc, server, m, loc, exts, pool)
            } else {
                guarded_process(ctx, control, trunc, server, m, exts, pool)
            }
        };
        let m = work.in_hand.take().expect("in-hand match is present");
        if !ran {
            // This server is dead (it may have just died under us).
            // Settle the batch so far, then close its queue and rescue
            // everything still waiting — the match in hand, the rest of
            // the drained batch, and the queue. The *worker* does not
            // retire: it moves on to the other queues it serves.
            if work.net != 0 {
                shared.adjust_in_flight(work.net);
                work.net = 0;
            }
            push_to_router_batch(shared, &mut work.survivors);
            handle_dead_server_match(shared, trunc, server, m, pool, tr);
            while let Some(rest) = work.local.pop() {
                handle_dead_server_match(shared, trunc, server, rest, pool, tr);
            }
            for rescued in queue.close_and_drain() {
                handle_dead_server_match(shared, trunc, server, rescued, pool, tr);
            }
            work.locs.clear();
            return;
        }
        tr.server_op(server, m.seq, work.exts.len(), t0);
        pool.release(m);
        work.net -= 1;

        // The threshold snapshot decides, without the lock, whether
        // any extension's offer could change the top-k set; the
        // lock is taken only when one could.
        let snap = shared.topk.threshold_snapshot();
        let offers_needed = work
            .exts
            .iter()
            .any(|e| (shared.offer_partial || e.is_complete(shared.full_mask)) && e.score >= snap);
        if offers_needed {
            let mut topk = shared.topk.lock();
            for e in work.exts.drain(..) {
                tr.spawned(&e);
                let complete = e.is_complete(shared.full_mask);
                if shared.offer_partial || complete {
                    topk.offer_match(&e);
                }
                if complete {
                    tr.completed(&e);
                    if e.degraded {
                        ctx.metrics.add_answer_degraded();
                    }
                    pool.release(e);
                    continue;
                }
                if topk.should_prune(&e) {
                    ctx.metrics.add_pruned();
                    tr.pruned(&e, topk.threshold());
                    pool.release(e);
                    continue;
                }
                work.net += 1;
                work.survivors.push(e);
            }
            if tr.enabled() {
                tr.threshold(topk.threshold());
            }
        } else {
            // Every offer is provably a no-op on the live set (see
            // SharedTopK): stay off the lock and prune against the
            // snapshot, which is conservative.
            for e in work.exts.drain(..) {
                tr.spawned(&e);
                if e.is_complete(shared.full_mask) {
                    tr.completed(&e);
                    if e.degraded {
                        ctx.metrics.add_answer_degraded();
                    }
                    pool.release(e);
                    continue;
                }
                if e.max_final < snap {
                    ctx.metrics.add_pruned();
                    tr.pruned(&e, snap);
                    pool.release(e);
                    continue;
                }
                work.net += 1;
                work.survivors.push(e);
            }
            // No threshold sample here: the snapshot is stale by
            // construction, and a stale value timestamped now would
            // break the merged stream's monotonicity. The locked
            // branch samples the live value whenever it changes.
        }
    }
    // Settle the batch: the net count change lands in one atomic op
    // *before* the survivors become visible to other workers, so the
    // count never dips below the true number of live matches (the
    // survivors are part of `net`, so it cannot reach zero while any
    // exist).
    if work.net != 0 {
        shared.adjust_in_flight(work.net);
        work.net = 0;
    }
    push_to_router_batch(shared, &mut work.survivors);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextOptions;
    use crate::lockstep::run_lockstep_noprune;
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::{parse_pattern, StaticPlan};
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><extra><title>t</title><price>3</price></extra></book>\
        <book><name/></book>\
        <book><isbn>5</isbn><price>1</price></book>\
        </shelf>";

    fn harness(query: &str, relax: RelaxMode, f: impl FnOnce(&QueryContext<'_>, usize)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(query).unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax,
                ..Default::default()
            },
        );
        f(&ctx, pattern.server_ids().count());
    }

    #[test]
    fn agrees_with_reference_for_all_k() {
        let query = "//book[./title and ./isbn and ./price]";
        for k in [1, 3, 6] {
            let mut reference = Vec::new();
            harness(query, RelaxMode::Relaxed, |ctx, servers| {
                reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), k);
            });
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    k,
                    &WhirlpoolMConfig::default(),
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
                assert_eq!(gs, rs, "k={k}");
            });
        }
    }

    #[test]
    fn processor_limit_does_not_change_answers() {
        let query = "//book[./title and ./isbn and ./price]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 3);
        });
        for procs in [1, 2, 4] {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    &WhirlpoolMConfig {
                        processors: Some(procs),
                        ..WhirlpoolMConfig::default()
                    },
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
                assert_eq!(gs, rs, "procs={procs}");
            });
        }
    }

    #[test]
    fn exact_mode_terminates_and_agrees() {
        let query = "//book[./title and ./isbn]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Exact, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 10);
        });
        harness(query, RelaxMode::Exact, |ctx, _| {
            let got = run_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                10,
                &WhirlpoolMConfig::default(),
            );
            let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
            let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
            assert_eq!(gs, rs);
        });
    }

    #[test]
    fn extra_workers_do_not_change_answers() {
        let query = "//book[./title and ./isbn and ./price]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 4);
        });
        // Worker counts below, at, and above the number of server
        // queues: above, the surplus workers have no home queues and
        // live entirely off stealing.
        for threads in [2usize, 4, 8] {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    4,
                    &WhirlpoolMConfig {
                        threads,
                        ..WhirlpoolMConfig::default()
                    },
                );
                assert!(
                    crate::topk::answers_equivalent(&got, &reference, 1e-9),
                    "threads={threads}"
                );
            });
        }
    }

    #[test]
    fn assisted_runs_return_the_same_answers() {
        let query = "//book[./title and ./isbn and ./price]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 4);
        });
        // Run single-threaded pools with a registry attached and a gang
        // of outside threads hammering `assist_any` for the duration:
        // every assist enters the pool as a stealing worker above the
        // home range. Answers must match the unassisted reference.
        harness(query, RelaxMode::Relaxed, |ctx, _| {
            let registry = crate::assist::AssistRegistry::new();
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let (registry, stop) = (&registry, &stop);
                    scope.spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            if !registry.assist_any() {
                                registry.wait_for_work(std::time::Duration::from_micros(200));
                            }
                        }
                    });
                }
                for _ in 0..10 {
                    let got = run_whirlpool_m(
                        ctx,
                        &RoutingStrategy::MinAlive,
                        4,
                        &WhirlpoolMConfig {
                            threads: 1,
                            assist: Some(registry.clone()),
                            ..WhirlpoolMConfig::default()
                        },
                    );
                    assert!(crate::topk::answers_equivalent(&got, &reference, 1e-9));
                }
                stop.store(true, Ordering::Release);
            });
        });
    }

    #[test]
    fn empty_root_set_returns_immediately() {
        harness("//nosuchroot[./title]", RelaxMode::Relaxed, |ctx, _| {
            let got = run_whirlpool_m(
                ctx,
                &RoutingStrategy::MinAlive,
                5,
                &WhirlpoolMConfig::default(),
            );
            assert!(got.is_empty());
        });
    }

    #[test]
    fn shutdown_handshake_survives_many_iterations() {
        // Regression test for a lost-wakeup deadlock: `wake_all` must
        // take the queue lock before notifying, or a thread that
        // checked `done == false` but had not yet parked sleeps
        // forever. The window is narrow — hammer the full
        // start/evaluate/terminate cycle.
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//book[./title and ./isbn]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        for i in 0..300 {
            let ctx = QueryContext::new(&doc, &index, &pattern, &model, ContextOptions::default());
            let got = run_whirlpool_m(
                &ctx,
                &RoutingStrategy::MinAlive,
                3,
                &WhirlpoolMConfig::default(),
            );
            assert!(!got.is_empty(), "iteration {i}");
        }
    }

    #[test]
    fn repeated_runs_are_consistent() {
        // The thread interleaving varies; the answer set must not.
        let query = "//book[./title and ./price]";
        let mut first: Option<Vec<(whirlpool_xml::NodeId, whirlpool_score::Score)>> = None;
        for _ in 0..10 {
            harness(query, RelaxMode::Relaxed, |ctx, _| {
                let got = run_whirlpool_m(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    3,
                    &WhirlpoolMConfig::default(),
                );
                let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
                match &first {
                    None => first = Some(gs),
                    Some(f) => assert_eq!(&gs, f),
                }
            });
        }
    }
}
