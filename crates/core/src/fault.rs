//! Fault injection and evaluation budgets — the anytime control plane.
//!
//! A [`FaultPlan`] makes chosen servers *delay* (per-op latency drawn
//! from the seeded shim RNG), *fail* (return an error after N ops), or
//! *panic* (poison themselves mid-extension). A [`Budget`] bounds the
//! run by wall-clock deadline and/or a server-operation cap. Both are
//! carried by a [`RunControl`], which every engine consults at
//! queue-pop granularity; `RunControl::unlimited()` is a no-op fast
//! path so the robustness layer costs nothing when idle.

use crate::error::{Completeness, EngineError};
use crate::metrics::Metrics;
use crate::topk::RankedAnswer;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whirlpool_pattern::QNodeId;
use whirlpool_score::Score;

/// What an injected fault does to its server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Every operation busy-waits a latency drawn uniformly from
    /// `[0, 2 * mean]` (seeded, deterministic per op).
    Delay {
        /// Mean injected latency per operation.
        mean: Duration,
    },
    /// Operations succeed `after_ops` times, then return
    /// [`EngineError::ServerFailed`] forever.
    Fail {
        /// Operations completed before the failure.
        after_ops: u64,
    },
    /// Operations succeed `after_ops` times, then panic — poisoning the
    /// server thread mid-extension.
    Panic {
        /// Operations completed before the panic.
        after_ops: u64,
    },
}

/// A seeded, per-server fault assignment, wired through
/// [`EvalOptions`](crate::EvalOptions) and the CLI `--fault` flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the delay-latency stream.
    pub seed: u64,
    faults: Vec<(QNodeId, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault for `server`, replacing any previous one.
    pub fn with(mut self, server: QNodeId, kind: FaultKind) -> Self {
        self.faults.retain(|(s, _)| *s != server);
        self.faults.push((server, kind));
        self
    }

    /// The configured faults.
    pub fn faults(&self) -> &[(QNodeId, FaultKind)] {
        &self.faults
    }

    /// Parses a CLI-style spec: `server=<id>:<kind>@<arg>` where kind is
    /// `panic` or `fail` (arg = ops before the fault) or `delay`
    /// (arg = mean latency in microseconds). Examples:
    /// `server=2:panic@100`, `server=1:fail@0`, `server=3:delay@250`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, EngineError> {
        let bad = || EngineError::InvalidFaultSpec(crate::error::FaultSpecError::new(spec));
        let mut plan = FaultPlan::seeded(seed);
        for part in spec.split(',') {
            let rest = part.trim().strip_prefix("server=").ok_or_else(bad)?;
            let (id, action) = rest.split_once(':').ok_or_else(bad)?;
            let id: u8 = id.parse().map_err(|_| bad())?;
            if id == 0 {
                // The root server runs before evaluation proper; it
                // cannot be faulted.
                return Err(bad());
            }
            let (kind, arg) = action.split_once('@').ok_or_else(bad)?;
            let arg: u64 = arg.parse().map_err(|_| bad())?;
            let kind = match kind {
                "panic" => FaultKind::Panic { after_ops: arg },
                "fail" => FaultKind::Fail { after_ops: arg },
                "delay" => FaultKind::Delay {
                    mean: Duration::from_micros(arg),
                },
                _ => return Err(bad()),
            };
            plan = plan.with(QNodeId(id), kind);
        }
        if plan.faults.is_empty() {
            return Err(bad());
        }
        Ok(plan)
    }
}

/// Per-server runtime fault state: op counters and the dead flag.
struct ServerFaultState {
    kind: Option<FaultKind>,
    ops: AtomicU64,
    dead: AtomicBool,
}

/// Instantiated fault state for one evaluation.
pub struct FaultState {
    seed: u64,
    /// Indexed by `QNodeId::index()`; slot 0 (the root) is never
    /// faulted.
    servers: Vec<ServerFaultState>,
}

impl FaultState {
    fn new(plan: &FaultPlan, query_len: usize) -> Self {
        let servers = (0..query_len)
            .map(|i| ServerFaultState {
                kind: plan
                    .faults
                    .iter()
                    .find(|(s, _)| s.index() == i)
                    .map(|(_, k)| *k),
                ops: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            })
            .collect();
        FaultState {
            seed: plan.seed,
            servers,
        }
    }

    /// Runs the injected fault, if any, for one operation at `server`:
    /// delays busy-wait, failures return `Err`, panics panic. Called
    /// *before* the server mutates any state, so a caught panic leaves
    /// the match intact for degradation.
    fn before_op(&self, server: QNodeId) -> Result<(), EngineError> {
        let slot = &self.servers[server.index()];
        let Some(kind) = slot.kind else {
            return Ok(());
        };
        if slot.dead.load(Ordering::Acquire) {
            return Err(EngineError::ServerFailed {
                server,
                after_ops: slot.ops.load(Ordering::Relaxed),
            });
        }
        let op = slot.ops.fetch_add(1, Ordering::Relaxed);
        match kind {
            FaultKind::Delay { mean } => {
                let micros = mean.as_micros() as u64;
                if micros > 0 {
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(
                        self.seed ^ ((server.0 as u64) << 48) ^ op,
                    );
                    let drawn = rng.gen_range(0..=2 * micros);
                    busy_wait(Duration::from_micros(drawn));
                }
                Ok(())
            }
            FaultKind::Fail { after_ops } => {
                if op >= after_ops {
                    Err(EngineError::ServerFailed { server, after_ops })
                } else {
                    Ok(())
                }
            }
            FaultKind::Panic { after_ops } => {
                if op >= after_ops {
                    panic!("injected fault: server q{} panicked at op {op}", server.0);
                }
                Ok(())
            }
        }
    }

    fn is_dead(&self, server: QNodeId) -> bool {
        self.servers[server.index()].dead.load(Ordering::Acquire)
    }

    /// Marks `server` dead; `true` the first time.
    fn mark_dead(&self, server: QNodeId) -> bool {
        !self.servers[server.index()]
            .dead
            .swap(true, Ordering::AcqRel)
    }
}

/// A shared cancellation flag for one evaluation.
///
/// The holder (a serving layer's watchdog, a driving thread, a signal
/// handler) keeps one clone and calls [`cancel`](CancelToken::cancel);
/// the engines observe the flag through their [`Budget`] at queue-pop
/// granularity *and* inside the columnar kernels every
/// [`INTERRUPT_SPAN`] candidates, so a cancelled run drains promptly —
/// returning its workers — and comes back as a certified
/// [`Completeness::Truncated`] anytime answer, never an error.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Wall-clock and operation-count limits for one evaluation.
pub struct Budget {
    start: Instant,
    deadline: Option<Duration>,
    max_ops: Option<u64>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget {
            start: Instant::now(),
            deadline: None,
            max_ops: None,
            cancel: None,
        }
    }

    /// A budget starting now.
    pub fn new(deadline: Option<Duration>, max_ops: Option<u64>) -> Self {
        Budget {
            start: Instant::now(),
            deadline,
            max_ops,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token: once tripped, the
    /// budget reports exhausted and the run drains to an anytime
    /// answer.
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Has the attached token (if any) been tripped?
    #[inline]
    pub fn cancelled(&self) -> bool {
        matches!(&self.cancel, Some(c) if c.is_cancelled())
    }

    /// Has the budget expired? Checked at queue-pop granularity; the
    /// no-limit path is three `Option` tests.
    #[inline]
    pub fn exhausted(&self, metrics: &Metrics) -> bool {
        if self.cancelled() {
            return true;
        }
        if let Some(max) = self.max_ops {
            if metrics.server_ops.load(Ordering::Relaxed) >= max {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if self.start.elapsed() >= d {
                return true;
            }
        }
        false
    }

    /// The absolute instant the deadline falls on, if one is set.
    fn deadline_at(&self) -> Option<Instant> {
        self.deadline.map(|d| self.start + d)
    }
}

/// Fixed-width kernel lanes processed between [`OpInterrupt`] checks
/// inside the columnar evaluate kernels.
pub const INTERRUPT_LANES: usize = 64;

/// Candidates processed between [`OpInterrupt`] checks inside the
/// columnar evaluate kernels: [`INTERRUPT_LANES`] lanes of
/// [`KERNEL_LANE`](whirlpool_index::KERNEL_LANE) candidates each. A
/// single oversized server operation can overshoot a deadline (or
/// outlive a cancelled client) by at most the work of one span, rather
/// than by the whole candidate range.
pub const INTERRUPT_SPAN: usize = INTERRUPT_LANES * whirlpool_index::KERNEL_LANE;

/// The mid-operation half of a [`Budget`]: deadline and cancellation
/// checks cheap enough to run *inside* a server operation, every
/// [`INTERRUPT_SPAN`] candidates, next to the queue-pop granularity
/// checks the engines already make. Operation budgets are deliberately
/// excluded — they stay at queue-pop granularity so op-budget runs
/// remain deterministic.
pub struct OpInterrupt {
    cancel: Option<CancelToken>,
    deadline_at: Option<Instant>,
}

impl OpInterrupt {
    /// Should the running operation stop producing extensions?
    #[inline]
    pub fn tripped(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return true;
            }
        }
        false
    }
}

/// Everything an engine consults while running: the budget, the
/// instantiated fault state, and the (optional) tracer. `Sync`, shared
/// by reference across the Whirlpool-M threads.
pub struct RunControl {
    budget: Budget,
    faults: Option<FaultState>,
    tracer: Option<crate::trace::Tracer>,
    /// Precomputed mid-operation check, `Some` iff the budget carries a
    /// deadline or a cancel token (op budgets stay at pop granularity).
    interrupt: Option<OpInterrupt>,
    /// Lower bound seeded into the run's top-k threshold (see
    /// [`TopKSet::with_floor`](crate::TopKSet::with_floor)). Zero —
    /// i.e. inert — outside collection runs.
    threshold_floor: Score,
}

impl RunControl {
    /// No budget, no faults, no tracer — the zero-overhead default.
    pub fn unlimited() -> Self {
        RunControl {
            budget: Budget::unlimited(),
            faults: None,
            tracer: None,
            interrupt: None,
            threshold_floor: Score::ZERO,
        }
    }

    /// Builds the control plane for one run. `query_len` sizes the
    /// per-server fault slots.
    pub fn new(budget: Budget, plan: Option<&FaultPlan>, query_len: usize) -> Self {
        let interrupt = if budget.cancel.is_some() || budget.deadline.is_some() {
            Some(OpInterrupt {
                cancel: budget.cancel.clone(),
                deadline_at: budget.deadline_at(),
            })
        } else {
            None
        };
        RunControl {
            budget,
            faults: plan.map(|p| FaultState::new(p, query_len)),
            tracer: None,
            interrupt,
            threshold_floor: Score::ZERO,
        }
    }

    /// Attaches a tracer: every engine running under this control
    /// records its event stream into it.
    pub fn with_tracer(mut self, tracer: crate::trace::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Seeds the run's top-k threshold with an external lower bound:
    /// the engines build their top-k set with this floor, so pruning
    /// starts from it instead of from zero. The collection driver
    /// passes the current *global* k-th score when evaluating a shard.
    /// Sound because the caller guarantees no answer scoring strictly
    /// below the floor can enter the final result (the global
    /// threshold is monotone non-decreasing).
    pub fn with_threshold_floor(mut self, floor: Score) -> Self {
        self.threshold_floor = floor;
        self
    }

    /// The seeded top-k threshold floor (zero unless set).
    #[inline]
    pub fn threshold_floor(&self) -> Score {
        self.threshold_floor
    }

    /// Is a tracer attached (and tracing compiled in)? Engines use this
    /// to skip building worker names for handles that would be
    /// disabled anyway.
    #[inline]
    pub fn tracing(&self) -> bool {
        crate::trace::tracing_compiled() && self.tracer.is_some()
    }

    /// Opens a per-worker recording handle: disabled (every emit is an
    /// inlined no-op branch) unless a tracer is attached.
    pub fn trace_worker(&self, name: &str) -> crate::trace::WorkerTrace {
        match &self.tracer {
            Some(t) => t.worker(name),
            None => crate::trace::WorkerTrace::disabled(),
        }
    }

    /// Has the run's budget expired?
    #[inline]
    pub fn exhausted(&self, metrics: &Metrics) -> bool {
        self.budget.exhausted(metrics)
    }

    /// Was the run cancelled through its [`CancelToken`]?
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.budget.cancelled()
    }

    /// The mid-operation interruption check for this run, if its budget
    /// carries a deadline or a cancel token. `None` (the common case)
    /// keeps the kernels on their single-segment path.
    #[inline]
    pub fn op_interrupt(&self) -> Option<&OpInterrupt> {
        self.interrupt.as_ref()
    }

    /// Counts the stop that just truncated the run: a tripped cancel
    /// token counts as a cancellation, anything else as a deadline/op-
    /// budget hit. Called once per run, guarded by
    /// `Truncation::expire` returning `true`.
    pub fn count_stop(&self, metrics: &Metrics) {
        if self.cancelled() {
            metrics.add_cancellation();
        } else {
            metrics.add_deadline_hit();
        }
    }

    /// Injects the fault (if any) for one operation at `server`.
    #[inline]
    pub fn before_op(&self, server: QNodeId) -> Result<(), EngineError> {
        match &self.faults {
            None => Ok(()),
            Some(f) => f.before_op(server),
        }
    }

    /// Is `server` marked dead?
    #[inline]
    pub fn is_dead(&self, server: QNodeId) -> bool {
        match &self.faults {
            None => false,
            Some(f) => f.is_dead(server),
        }
    }

    /// Marks `server` dead; `true` the first time (callers count
    /// `servers_failed` on `true`).
    pub fn mark_dead(&self, server: QNodeId) -> bool {
        match &self.faults {
            None => false,
            Some(f) => f.mark_dead(server),
        }
    }

    /// Does this run inject any faults at all?
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }
}

/// The outcome of one anytime engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Top-k answers, best first.
    pub answers: Vec<RankedAnswer>,
    /// Whether `answers` is the true top-k or an anytime prefix.
    pub completeness: Completeness,
}

impl EngineRun {
    /// An exact (complete) run.
    pub fn exact(answers: Vec<RankedAnswer>) -> Self {
        EngineRun {
            answers,
            completeness: Completeness::Exact,
        }
    }
}

/// Shared truncation accounting: whether the run stopped early, how
/// many matches were abandoned or degraded, and the max-score bound
/// over them. Thread-safe (Whirlpool-M workers all report into one).
pub(crate) struct Truncation {
    truncated: AtomicBool,
    /// Set only on budget expiry: engines stop consuming and drain.
    /// (`truncated` alone — e.g. from a server death — keeps the run
    /// going in degraded mode.)
    expired: AtomicBool,
    pending: AtomicU64,
    /// Max `max_final` over dropped/degraded matches, as f64 bits.
    /// Scores are non-negative, so the zero initializer is the identity.
    bound_bits: AtomicU64,
}

impl Truncation {
    pub(crate) fn new() -> Self {
        Truncation {
            truncated: AtomicBool::new(false),
            expired: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            bound_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Flags the run as truncated; `true` the first time.
    pub(crate) fn mark(&self) -> bool {
        !self.truncated.swap(true, Ordering::AcqRel)
    }

    pub(crate) fn is_truncated(&self) -> bool {
        self.truncated.load(Ordering::Acquire)
    }

    /// Flags the run's budget as expired (which truncates it); `true`
    /// the first time.
    pub(crate) fn expire(&self) -> bool {
        self.truncated.store(true, Ordering::Release);
        !self.expired.swap(true, Ordering::AcqRel)
    }

    pub(crate) fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Acquire)
    }

    /// Accounts one match abandoned unprocessed or completed through
    /// degradation: its `max_final` caps what the true evaluation could
    /// have scored it.
    pub(crate) fn account(&self, max_final: Score) {
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.track(max_final.value());
    }

    fn track(&self, v: f64) {
        let mut cur = self.bound_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bound_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Folds the accounting into a [`Completeness`]: the certificate is
    /// the max over abandoned/degraded matches joined with the best
    /// returned score (a returned answer is its own bound).
    pub(crate) fn finish(&self, answers: &[RankedAnswer]) -> Completeness {
        if !self.is_truncated() {
            return Completeness::Exact;
        }
        let mut bound = f64::from_bits(self.bound_bits.load(Ordering::Acquire));
        if let Some(best) = answers.first() {
            bound = bound.max(best.score.value());
        }
        Completeness::Truncated {
            pending_matches: self.pending.load(Ordering::Acquire),
            score_bound: bound,
        }
    }
}

/// Runs one fault-guarded server operation: the injected fault (if
/// any) fires first, then the real work. Returns `true` if the
/// operation ran; `false` if the server is — or just became — dead, in
/// which case the caller degrades the match. A failing operation is
/// retried once before the server is declared dead; panics are isolated
/// with `catch_unwind` (sound because faults fire *before* any state
/// mutation, and a caught real panic only abandons that one
/// extension batch).
///
/// The fault-free path adds a single branch over calling
/// [`QueryContext::process_at_server_pooled`] directly.
pub(crate) fn guarded_process(
    ctx: &crate::context::QueryContext<'_>,
    control: &RunControl,
    trunc: &Truncation,
    server: QNodeId,
    m: &crate::partial::PartialMatch,
    exts: &mut Vec<crate::partial::PartialMatch>,
    pool: &mut crate::pool::MatchPool<'_>,
) -> bool {
    let interrupt = control.op_interrupt();
    if !control.has_faults() {
        let o = ctx.process_at_server_interruptible(server, m, exts, pool, interrupt);
        if o.interrupted {
            account_interrupted(ctx, control, trunc, m);
        }
        return true;
    }
    if control.is_dead(server) {
        return false;
    }
    for attempt in 0..2 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<crate::context::OpOutcome, EngineError> {
                control.before_op(server)?;
                Ok(ctx.process_at_server_interruptible(server, m, exts, pool, interrupt))
            },
        ));
        match outcome {
            Ok(Ok(o)) => {
                if o.interrupted {
                    account_interrupted(ctx, control, trunc, m);
                }
                return true;
            }
            Ok(Err(_)) | Err(_) => {
                // Release anything produced before the abort, then
                // retry once; a second abort marks the server dead.
                for e in exts.drain(..) {
                    pool.release(e);
                }
                if attempt == 1 {
                    if control.mark_dead(server) {
                        ctx.metrics.add_server_failed();
                    }
                    trunc.mark();
                }
            }
        }
    }
    false
}

/// Books an operation that stopped at a mid-kernel [`OpInterrupt`]
/// check: the run's budget is expired (truncating it), and the match's
/// `max_final` caps every extension the aborted tail could have
/// produced, keeping the [`Completeness::Truncated`] certificate valid.
/// The extensions produced *before* the trip are real and stay.
fn account_interrupted(
    ctx: &crate::context::QueryContext<'_>,
    control: &RunControl,
    trunc: &Truncation,
    m: &crate::partial::PartialMatch,
) {
    if trunc.expire() {
        control.count_stop(&ctx.metrics);
    }
    trunc.account(m.max_final);
}

/// [`guarded_process`] for the batched path: the match's candidate
/// range was already resolved by
/// [`QueryContext::locate_batch_at_server`], so the guarded work is the
/// evaluation half only. Fault semantics are identical — locating is a
/// pure read with no per-server fault site.
#[allow(clippy::too_many_arguments)] // guarded_process's signature plus the plan entry
pub(crate) fn guarded_process_located(
    ctx: &crate::context::QueryContext<'_>,
    control: &RunControl,
    trunc: &Truncation,
    server: QNodeId,
    m: &crate::partial::PartialMatch,
    loc: crate::context::Located,
    exts: &mut Vec<crate::partial::PartialMatch>,
    pool: &mut crate::pool::MatchPool<'_>,
) -> bool {
    let interrupt = control.op_interrupt();
    if !control.has_faults() {
        let o = ctx.process_located_at_server_interruptible(server, m, loc, exts, pool, interrupt);
        if o.interrupted {
            account_interrupted(ctx, control, trunc, m);
        }
        return true;
    }
    if control.is_dead(server) {
        return false;
    }
    for attempt in 0..2 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<crate::context::OpOutcome, EngineError> {
                control.before_op(server)?;
                Ok(ctx
                    .process_located_at_server_interruptible(server, m, loc, exts, pool, interrupt))
            },
        ));
        match outcome {
            Ok(Ok(o)) => {
                if o.interrupted {
                    account_interrupted(ctx, control, trunc, m);
                }
                return true;
            }
            Ok(Err(_)) | Err(_) => {
                for e in exts.drain(..) {
                    pool.release(e);
                }
                if attempt == 1 {
                    if control.mark_dead(server) {
                        ctx.metrics.add_server_failed();
                    }
                    trunc.mark();
                }
            }
        }
    }
    false
}

/// Degrades `m` to completion: every remaining unvisited server —
/// the caller has established that none of them is alive — is bound to
/// the outer-join null with the leaf-deletion score. Only meaningful in
/// relaxed mode; exact mode drops such matches instead.
pub(crate) fn degrade_to_completion(
    ctx: &crate::context::QueryContext<'_>,
    m: crate::partial::PartialMatch,
    pool: &mut crate::pool::MatchPool<'_>,
) -> crate::partial::PartialMatch {
    let full = ctx.full_mask();
    let mut cur = m;
    while !cur.is_complete(full) {
        let s = cur
            .unvisited(ctx.pattern.len())
            .next()
            .expect("incomplete match has an unvisited server");
        let e = ctx.degrade_at_server(s, &cur, pool);
        pool.release(cur);
        cur = e;
    }
    cur
}

/// Spins for (at least) `duration` — sleeping would distort the
/// multi-threaded latency experiments just as it would for `op_cost`.
fn busy_wait(duration: Duration) {
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        let p = FaultPlan::parse("server=2:panic@100", 7).unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(
            p.faults(),
            &[(QNodeId(2), FaultKind::Panic { after_ops: 100 })]
        );
        let p = FaultPlan::parse("server=1:fail@0,server=3:delay@250", 1).unwrap();
        assert_eq!(p.faults().len(), 2);
        assert_eq!(
            p.faults()[1],
            (
                QNodeId(3),
                FaultKind::Delay {
                    mean: Duration::from_micros(250)
                }
            )
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "server=",
            "server=1",
            "server=1:panic",
            "server=1:explode@3",
            "server=x:panic@1",
            "server=1:panic@x",
            "server=0:panic@1", // the root server cannot be faulted
            "panic@1",
        ] {
            assert!(
                matches!(
                    FaultPlan::parse(bad, 0),
                    Err(EngineError::InvalidFaultSpec(_))
                ),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn fail_fault_fires_after_n_ops() {
        let plan = FaultPlan::seeded(0).with(QNodeId(1), FaultKind::Fail { after_ops: 2 });
        let state = FaultState::new(&plan, 3);
        assert!(state.before_op(QNodeId(1)).is_ok());
        assert!(state.before_op(QNodeId(1)).is_ok());
        assert_eq!(
            state.before_op(QNodeId(1)),
            Err(EngineError::ServerFailed {
                server: QNodeId(1),
                after_ops: 2
            })
        );
        // Unfaulted servers never fail.
        for _ in 0..10 {
            assert!(state.before_op(QNodeId(2)).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        let plan = FaultPlan::seeded(0).with(QNodeId(1), FaultKind::Panic { after_ops: 0 });
        let state = FaultState::new(&plan, 2);
        let _ = state.before_op(QNodeId(1));
    }

    #[test]
    fn dead_marking_is_idempotent() {
        let plan = FaultPlan::seeded(0).with(QNodeId(1), FaultKind::Fail { after_ops: 0 });
        let state = FaultState::new(&plan, 2);
        assert!(!state.is_dead(QNodeId(1)));
        assert!(state.mark_dead(QNodeId(1)), "first marking reports true");
        assert!(!state.mark_dead(QNodeId(1)), "second marking reports false");
        assert!(state.is_dead(QNodeId(1)));
        // A dead server fails fast without advancing its op counter.
        assert!(state.before_op(QNodeId(1)).is_err());
    }

    #[test]
    fn budget_max_ops_trips() {
        let metrics = Metrics::new();
        let b = Budget::new(None, Some(2));
        assert!(!b.exhausted(&metrics));
        metrics.add_server_op();
        metrics.add_server_op();
        assert!(b.exhausted(&metrics));
    }

    #[test]
    fn budget_deadline_trips() {
        let metrics = Metrics::new();
        let b = Budget::new(Some(Duration::ZERO), None);
        assert!(b.exhausted(&metrics));
        let b = Budget::new(Some(Duration::from_secs(3600)), None);
        assert!(!b.exhausted(&metrics));
    }

    #[test]
    fn cancel_token_trips_the_budget() {
        let metrics = Metrics::new();
        let token = CancelToken::new();
        let b = Budget::new(None, None).with_cancel(Some(token.clone()));
        assert!(!b.exhausted(&metrics));
        assert!(!b.cancelled());
        token.cancel();
        assert!(b.exhausted(&metrics));
        assert!(b.cancelled());
        // Every clone observes the trip.
        assert!(token.clone().is_cancelled());
    }

    #[test]
    fn op_interrupt_exists_iff_deadline_or_cancel() {
        let c = RunControl::unlimited();
        assert!(c.op_interrupt().is_none());
        let c = RunControl::new(Budget::new(None, Some(100)), None, 2);
        assert!(
            c.op_interrupt().is_none(),
            "op budgets stay at pop granularity"
        );
        let c = RunControl::new(Budget::new(Some(Duration::from_secs(3600)), None), None, 2);
        let i = c.op_interrupt().expect("deadline compiles an interrupt");
        assert!(!i.tripped(), "an hour-long deadline is not tripped yet");
        let token = CancelToken::new();
        let c = RunControl::new(
            Budget::new(None, None).with_cancel(Some(token.clone())),
            None,
            2,
        );
        assert!(!c.op_interrupt().unwrap().tripped());
        token.cancel();
        assert!(c.op_interrupt().unwrap().tripped());
        assert!(c.cancelled());
    }

    #[test]
    fn count_stop_distinguishes_cancellation_from_deadline() {
        let metrics = Metrics::new();
        let token = CancelToken::new();
        token.cancel();
        let c = RunControl::new(Budget::new(None, None).with_cancel(Some(token)), None, 2);
        c.count_stop(&metrics);
        let c = RunControl::new(Budget::new(Some(Duration::ZERO), None), None, 2);
        c.count_stop(&metrics);
        let s = metrics.snapshot();
        assert_eq!(s.cancellations, 1);
        assert_eq!(s.deadline_hits, 1);
    }

    #[test]
    fn unlimited_control_is_inert() {
        let metrics = Metrics::new();
        let c = RunControl::unlimited();
        assert!(!c.exhausted(&metrics));
        assert!(c.before_op(QNodeId(1)).is_ok());
        assert!(!c.is_dead(QNodeId(1)));
        assert!(!c.mark_dead(QNodeId(1)));
        assert!(!c.has_faults());
    }

    #[test]
    fn truncation_accumulates_the_bound() {
        let t = Truncation::new();
        assert!(matches!(t.finish(&[]), Completeness::Exact));
        t.mark();
        t.account(Score::new(1.5));
        t.account(Score::new(0.5));
        match t.finish(&[]) {
            Completeness::Truncated {
                pending_matches,
                score_bound,
            } => {
                assert_eq!(pending_matches, 2);
                assert!((score_bound - 1.5).abs() < 1e-12);
            }
            c => panic!("expected truncated, got {c:?}"),
        }
    }

    #[test]
    fn delay_fault_is_deterministic_and_slow() {
        let plan = FaultPlan::seeded(42).with(
            QNodeId(1),
            FaultKind::Delay {
                mean: Duration::from_micros(200),
            },
        );
        let state = FaultState::new(&plan, 2);
        let start = Instant::now();
        for _ in 0..20 {
            state.before_op(QNodeId(1)).unwrap();
        }
        // 20 draws with mean 200µs: even a very unlucky stream takes
        // visible time.
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
