//! Shared, immutable evaluation state plus the server operation itself.

use crate::fault::{OpInterrupt, INTERRUPT_SPAN};
use crate::metrics::Metrics;
use crate::partial::{Binding, PartialMatch};
use crate::pool::MatchPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use whirlpool_index::{
    estimate_selectivity_view, mask_count, DocView, RangeCursor, ServerSelectivity, TagIndex,
    TagIndexView,
};
use whirlpool_pattern::{
    compile_servers, Direction, QNodeId, ServerSpec, TreePattern, ValueTest, WILDCARD,
};
use whirlpool_score::{MatchLevel, ScoreModel};
use whirlpool_xml::{Document, NodeId};

/// Whether relaxations are admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxMode {
    /// Only exact matches: every structural predicate must hold in its
    /// original form; a server with no valid candidate kills the match
    /// (inner-join semantics).
    Exact,
    /// The paper's approximate evaluation: relaxations are encoded in
    /// the plan; any tag/value-compatible descendant of the root match
    /// is a candidate, predicates decide the *score level*, and a
    /// server with no candidate emits a null (leaf deletion) extension
    /// (outer-join semantics).
    #[default]
    Relaxed,
}

/// How a server's candidate universe resolves against the document,
/// with the per-root candidate ranges precomputed at construction.
enum ServerRange<'a> {
    /// The tag never occurs: the server always takes the null path.
    Absent,
    /// The wildcard: every descendant of the root match is a candidate —
    /// an id-contiguous range, scanned without materializing anything.
    Any,
    /// A normal tag (or tag+value) posting list. `bounds` is aligned
    /// with the context's `root_candidates`: `bounds[rank]` is the
    /// `(lo, hi)` sub-slice of `list` holding that root's proper
    /// descendants, computed in one cursor merge pass per server
    /// instead of two binary searches per root at runtime. Matches
    /// rooted outside the precomputed candidate set partition `list`
    /// directly (it is already value-resolved).
    Postings {
        list: &'a [NodeId],
        bounds: Vec<(u32, u32)>,
    },
}

/// One match's candidate range at a server, resolved ahead of
/// evaluation: the *locate* half of the split server operation.
///
/// Produced by [`QueryContext::locate_batch_at_server`] (one galloping
/// cursor sweep per batch, document order) and consumed by
/// [`QueryContext::process_located_at_server_pooled`] (the columnar
/// predicate kernel). Plain index pairs, so a batch plan is a flat
/// `Vec<Located>` with no borrows into the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Located {
    /// The server's tag never occurs in the document: the evaluation
    /// half goes straight to the outer-join null path.
    Absent,
    /// Wildcard universe: the raw node-id range `[lo, hi)` under the
    /// match's root.
    Any(u32, u32),
    /// The sub-slice `[lo, hi)` of the server's posting list holding
    /// the root's proper descendants.
    Slice(u32, u32),
}

/// Outcome of one interruptible server operation.
#[derive(Debug, Clone, Copy)]
pub struct OpOutcome {
    /// Extensions pushed onto `out` (including the outer-join null,
    /// when that path was taken).
    pub produced: usize,
    /// The operation stopped at a mid-kernel [`OpInterrupt`] check
    /// before exhausting its candidate range. The extensions already
    /// produced are valid; the caller must account the match's
    /// `max_final` into the run's truncation certificate to cover the
    /// unproduced tail.
    pub interrupted: bool,
}

/// A server's candidate stream for one match: either a posting
/// sub-slice or the raw subtree id range (wildcard). Iterating
/// allocates nothing.
enum Candidates<'s> {
    Slice(std::slice::Iter<'s, NodeId>),
    Range(u32, u32),
}

impl Iterator for Candidates<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            Candidates::Slice(it) => it.next().copied(),
            Candidates::Range(lo, hi) => {
                if lo < hi {
                    let n = NodeId::from_index(*lo as usize);
                    *lo += 1;
                    Some(n)
                } else {
                    None
                }
            }
        }
    }
}

/// Everything the engines share for one query evaluation: the document
/// and index, compiled server specs, the score model, selectivity
/// estimates, and the metric counters. Immutable after construction
/// (counters are atomic), hence freely shared across threads.
pub struct QueryContext<'a> {
    /// The document under evaluation — owned arena or mapped snapshot
    /// behind one accessor surface.
    pub doc: DocView<'a>,
    /// Its tag/value postings, same two backings.
    pub index: TagIndexView<'a>,
    /// The query.
    pub pattern: &'a TreePattern,
    /// Per-binding score contributions.
    pub model: &'a dyn ScoreModel,
    /// Exact or relaxed evaluation.
    pub relax: RelaxMode,
    /// Shared work counters.
    pub metrics: Metrics,
    /// Compiled spec for each server; `servers[i]` serves `QNodeId(i+1)`.
    servers: Vec<ServerSpec>,
    /// Resolved candidate universe per server, with per-root ranges.
    server_ranges: Vec<ServerRange<'a>>,
    /// Node id → rank in `root_candidates` (`u32::MAX` for non-roots);
    /// O(1) access to the precomputed candidate ranges.
    root_rank: Vec<u32>,
    /// Sampled selectivity per server (same indexing as `servers`).
    selectivity: Vec<ServerSelectivity>,
    /// Max possible contribution per query node (indexed by QNodeId).
    max_contrib: Vec<f64>,
    /// Sum of all servers' max contributions.
    total_server_max: f64,
    /// Candidate bindings for the pattern root, in document order.
    root_candidates: Vec<NodeId>,
    full_mask: u64,
    /// Injected artificial cost per server operation (busy-wait), for
    /// the Figure 8 experiment.
    op_cost: Option<Duration>,
    /// Whether pools handed out by [`QueryContext::new_pool`] recycle
    /// binding buffers (otherwise they degrade to plain allocation).
    pooling: bool,
    /// Whether the engines should locate candidate ranges for whole
    /// batches of same-server matches up front (one cursor sweep per
    /// batch) instead of per match.
    op_batching: bool,
    seq: AtomicU64,
}

/// Construction-time options for [`QueryContext::new`].
#[derive(Debug, Clone)]
pub struct ContextOptions {
    /// Exact or relaxed evaluation.
    pub relax: RelaxMode,
    /// Root-candidate sample size for selectivity estimation.
    pub selectivity_sample: usize,
    /// Busy-wait per server operation (Figure 8's op-cost sweep).
    pub op_cost: Option<Duration>,
    /// Recycle partial-match binding buffers through [`MatchPool`]s
    /// (`true`, the default) or allocate each extension fresh. Answer
    /// sets are identical either way; disabling exists for A/B
    /// measurement of the allocator traffic.
    pub pooling: bool,
    /// Resolve candidate ranges for whole same-server batches up front
    /// (`true`, the default) or per match. The evaluation order, trace
    /// events, metrics, and routing decisions are identical either way
    /// (the locate half is a pure function of the match root); the
    /// differential suite pins batched == unbatched.
    pub op_batching: bool,
}

impl Default for ContextOptions {
    fn default() -> Self {
        ContextOptions {
            relax: RelaxMode::Relaxed,
            selectivity_sample: 64,
            op_cost: None,
            pooling: true,
            op_batching: true,
        }
    }
}

impl<'a> QueryContext<'a> {
    /// Compiles the query against the document: resolves server tags,
    /// collects root candidates, samples selectivity, and precomputes
    /// the per-server maximum contributions.
    pub fn new(
        doc: &'a Document,
        index: &'a TagIndex,
        pattern: &'a TreePattern,
        model: &'a dyn ScoreModel,
        options: ContextOptions,
    ) -> Self {
        Self::new_view(doc.into(), index.view(), pattern, model, options)
    }

    /// [`new`](QueryContext::new) over borrowed views — the entry point
    /// for snapshot-attached evaluation, where no owned [`Document`] or
    /// [`TagIndex`] exists. All engines and kernels run identically on
    /// either backing.
    pub fn new_view(
        doc: DocView<'a>,
        index: TagIndexView<'a>,
        pattern: &'a TreePattern,
        model: &'a dyn ScoreModel,
        options: ContextOptions,
    ) -> Self {
        let servers = compile_servers(pattern);
        let root_node = pattern.node(pattern.root());
        let root_universe: Vec<NodeId> = if root_node.tag == WILDCARD {
            doc.elements().collect()
        } else {
            doc.tag_id(&root_node.tag)
                .map(|tag| index.nodes_with_tag(tag).to_vec())
                .unwrap_or_default()
        };
        let root_candidates: Vec<NodeId> = root_universe
            .into_iter()
            .filter(|&n| match root_node.axis {
                // `/tag`: a top-level element.
                whirlpool_pattern::Axis::Child => doc.depth(n) == 1,
                // `//tag`: anywhere.
                whirlpool_pattern::Axis::Descendant => true,
            })
            .filter(|&n| {
                root_node
                    .value
                    .as_ref()
                    .map_or(true, |v| v.matches(doc.text(n)))
            })
            .filter(|&n| {
                root_node
                    .attrs
                    .iter()
                    .all(|a| a.matches(doc.attribute(n, &a.name)))
            })
            .collect();

        // One merge pass per server: resolve its posting list once (the
        // value-equality lookup included, so no repeated hashing at
        // runtime) and record each root candidate's descendant range.
        // Roots ascend in document order, so the cursor gallops.
        let mut root_rank = vec![u32::MAX; doc.len()];
        for (rank, &r) in root_candidates.iter().enumerate() {
            root_rank[r.index()] = rank as u32;
        }
        let server_ranges = servers
            .iter()
            .map(|s| {
                if s.tag == WILDCARD {
                    return ServerRange::Any;
                }
                let Some(tag) = doc.tag_id(&s.tag) else {
                    return ServerRange::Absent;
                };
                let list = match &s.value {
                    Some(ValueTest::Eq(v)) => index.nodes_with_tag_value(tag, v),
                    _ => index.nodes_with_tag(tag),
                };
                let mut cursor = RangeCursor::new(list);
                let bounds = root_candidates
                    .iter()
                    .map(|&r| {
                        let end = index.subtree_end(r).index() as u32;
                        let (lo, hi) = cursor.bounds(r, end);
                        (lo as u32, hi as u32)
                    })
                    .collect();
                ServerRange::Postings { list, bounds }
            })
            .collect();

        let selectivity = estimate_selectivity_view(
            doc,
            index,
            &root_candidates,
            &servers,
            options.selectivity_sample,
        );

        let mut max_contrib = vec![0.0; pattern.len()];
        max_contrib[0] = model.max_contribution(QNodeId::ROOT);
        for s in &servers {
            max_contrib[s.qnode.index()] = model.max_contribution(s.qnode);
        }
        let total_server_max = servers.iter().map(|s| max_contrib[s.qnode.index()]).sum();

        QueryContext {
            doc,
            index,
            pattern,
            model,
            relax: options.relax,
            metrics: Metrics::new(),
            servers,
            server_ranges,
            root_rank,
            selectivity,
            max_contrib,
            total_server_max,
            root_candidates,
            full_mask: PartialMatch::full_mask(pattern.len()),
            op_cost: options.op_cost,
            pooling: options.pooling,
            op_batching: options.op_batching,
            seq: AtomicU64::new(0),
        }
    }

    // -- accessors -------------------------------------------------------

    /// The non-root query nodes, i.e. the server ids.
    pub fn server_ids(&self) -> Vec<QNodeId> {
        self.servers.iter().map(|s| s.qnode).collect()
    }

    /// The compiled Algorithm-1 spec of a server.
    pub fn server_spec(&self, server: QNodeId) -> &ServerSpec {
        &self.servers[server.index() - 1]
    }

    /// The sampled selectivity estimates of a server.
    pub fn selectivity_of(&self, server: QNodeId) -> &ServerSelectivity {
        &self.selectivity[server.index() - 1]
    }

    /// The server's maximum possible contribution.
    pub fn max_contribution(&self, q: QNodeId) -> f64 {
        self.max_contrib[q.index()]
    }

    /// The visited bitmask of a complete match.
    pub fn full_mask(&self) -> u64 {
        self.full_mask
    }

    /// A pre-execution cost estimate for this query on this document,
    /// from the root-candidate count and the sampled per-server
    /// selectivity (see
    /// [`estimate_query_cost`](whirlpool_index::estimate_query_cost)).
    /// Admission controllers use it to reject queries whose predicted
    /// work would not fit the current capacity.
    pub fn cost_estimate(&self) -> whirlpool_index::QueryCostEstimate {
        whirlpool_index::estimate_query_cost(self.root_candidates.len(), &self.selectivity)
    }

    /// Candidate bindings for the pattern root, in document order.
    pub fn root_candidates(&self) -> &[NodeId] {
        &self.root_candidates
    }

    /// Should the engines locate candidate ranges batch-at-a-time?
    pub fn op_batching(&self) -> bool {
        self.op_batching
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// A fresh binding-buffer pool honoring this context's pooling flag
    /// and reporting into its metrics. Engines create one per run (one
    /// per worker thread in Whirlpool-M — pools are intentionally not
    /// thread-safe).
    pub fn new_pool(&self) -> MatchPool<'_> {
        MatchPool::reporting(self.pooling, &self.metrics)
    }

    /// Like [`QueryContext::new_pool`], but as a shard of `hub`:
    /// Whirlpool-M's worker pools rebalance whole blocks of buffers
    /// through the shared hub so that consumer-heavy workers stop
    /// hoarding buffers that producer-heavy workers keep allocating.
    pub fn new_pool_shared<'p>(&'p self, hub: &'p crate::pool::PoolHub) -> MatchPool<'p> {
        MatchPool::reporting_shared(self.pooling, &self.metrics, hub)
    }

    // -- match generation -------------------------------------------------

    /// The root server's output: one initial partial match per candidate
    /// root node ("the book server ... generates candidate matches to
    /// the root of the XPath query, which initializes the set of partial
    /// matches", §5.1).
    pub fn make_root_matches(&self) -> Vec<PartialMatch> {
        let matches: Vec<PartialMatch> = self
            .root_candidates
            .iter()
            .map(|&node| {
                PartialMatch::new_root(
                    self.next_seq(),
                    self.pattern.len(),
                    node,
                    self.model
                        .contribution(QNodeId::ROOT, node, MatchLevel::Exact),
                    self.total_server_max,
                )
            })
            .collect();
        self.metrics.add_created(matches.len() as u64);
        matches
    }

    /// Degrades `m` past a dead server: binds `server` to the
    /// outer-join null, scoring the predicate as the leaf-deletion
    /// relaxation (contribution 0). No server operation is counted —
    /// the server never ran.
    pub fn degrade_at_server(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        pool: &mut MatchPool<'_>,
    ) -> PartialMatch {
        let mut e = m.extend_in(
            pool,
            self.next_seq(),
            server,
            Binding::Null,
            0.0,
            self.max_contrib[server.index()],
        );
        e.degraded = true;
        self.metrics.add_created(1);
        e
    }

    /// One server operation: extends `m` at `server` with every valid
    /// candidate (or the outer-join null), pushing the extensions onto
    /// `out`. Returns the number of extensions produced.
    ///
    /// This is Algorithm 1's runtime half: candidates are located with
    /// an index range scan on the relaxed root predicate, then compared
    /// against the bound part of the match through the conditional
    /// predicate sequence, exact forms first.
    pub fn process_at_server(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        out: &mut Vec<PartialMatch>,
    ) -> usize {
        self.process_at_server_pooled(server, m, out, &mut self.new_pool())
    }

    /// [`process_at_server`](Self::process_at_server), but drawing the
    /// extensions' binding buffers from `pool`. Locates the match's
    /// candidate range and evaluates it; the engines' batch paths split
    /// the two halves ([`locate_batch_at_server`]
    /// [`process_located_at_server_pooled`]) so a whole drained batch
    /// is located in one sweep.
    ///
    /// [`locate_batch_at_server`]: Self::locate_batch_at_server
    /// [`process_located_at_server_pooled`]: Self::process_located_at_server_pooled
    pub fn process_at_server_pooled(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
    ) -> usize {
        let loc = self.locate_one(server, m.root());
        self.process_located_at_server_pooled(server, m, loc, out, pool)
    }

    /// [`process_at_server_pooled`](Self::process_at_server_pooled)
    /// with a mid-kernel interruption check (see
    /// [`process_located_at_server_interruptible`]).
    ///
    /// [`process_located_at_server_interruptible`]: Self::process_located_at_server_interruptible
    pub fn process_at_server_interruptible(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
        interrupt: Option<&OpInterrupt>,
    ) -> OpOutcome {
        let loc = self.locate_one(server, m.root());
        self.process_located_at_server_interruptible(server, m, loc, out, pool, interrupt)
    }

    /// Resolves one match root's candidate range at `server`: the
    /// *locate* half of a server operation, a pure function of the
    /// root (no metrics, no extensions).
    fn locate_one(&self, server: QNodeId, root: NodeId) -> Located {
        match &self.server_ranges[server.index() - 1] {
            ServerRange::Absent => Located::Absent,
            ServerRange::Any => Located::Any(
                root.index() as u32 + 1,
                self.index.subtree_end(root).index() as u32,
            ),
            ServerRange::Postings { list, bounds } => {
                match self.root_rank.get(root.index()).copied() {
                    Some(rank) if rank != u32::MAX => {
                        let (lo, hi) = bounds[rank as usize];
                        Located::Slice(lo, hi)
                    }
                    // A match rooted outside the precomputed candidate
                    // set (reachable only by calling process_at_server
                    // directly): fall back to the binary-search scan.
                    _ => {
                        let lo = list.partition_point(|&n| n <= root);
                        let end = self.index.subtree_end(root).index() as u32;
                        let hi = list.partition_point(|&n| (n.index() as u32) < end);
                        Located::Slice(lo as u32, hi as u32)
                    }
                }
            }
        }
    }

    /// Locates the candidate ranges of a whole batch of matches bound
    /// for `server`, given their roots in the engine's processing
    /// order. The plan is written into `plan` (cleared first), aligned
    /// with `roots`.
    ///
    /// Roots inside the precomputed candidate set resolve O(1) against
    /// the per-root `bounds` table (itself the product of one galloping
    /// [`RangeCursor`] sweep per server at construction). Any stragglers
    /// rooted outside that set are sorted into document order and
    /// resolved in one further galloping cursor sweep over the server's
    /// postings — never per-match binary searches.
    ///
    /// Locating is a pure function of each root, so the plan is
    /// insensitive to batch order and the evaluation half can run in
    /// whatever priority order the engine chooses: batched and
    /// unbatched runs produce identical extensions, metrics, traces,
    /// and routing decisions.
    pub fn locate_batch_at_server(
        &self,
        server: QNodeId,
        roots: &[NodeId],
        plan: &mut Vec<Located>,
    ) {
        plan.clear();
        self.metrics.add_server_op_batch();
        match &self.server_ranges[server.index() - 1] {
            ServerRange::Absent => plan.extend(roots.iter().map(|_| Located::Absent)),
            ServerRange::Any => plan.extend(roots.iter().map(|&r| {
                Located::Any(
                    r.index() as u32 + 1,
                    self.index.subtree_end(r).index() as u32,
                )
            })),
            ServerRange::Postings { list, bounds } => {
                let mut misses: Vec<(u32, NodeId)> = Vec::new();
                plan.extend(roots.iter().enumerate().map(|(i, &r)| {
                    match self.root_rank.get(r.index()).copied() {
                        Some(rank) if rank != u32::MAX => {
                            let (lo, hi) = bounds[rank as usize];
                            Located::Slice(lo, hi)
                        }
                        _ => {
                            misses.push((i as u32, r));
                            Located::Slice(0, 0)
                        }
                    }
                }));
                if !misses.is_empty() {
                    misses.sort_unstable_by_key(|&(_, r)| r);
                    let mut cursor = RangeCursor::new(list);
                    for (i, r) in misses {
                        let end = self.index.subtree_end(r).index() as u32;
                        let (lo, hi) = cursor.bounds(r, end);
                        plan[i as usize] = Located::Slice(lo as u32, hi as u32);
                    }
                }
            }
        }
    }

    /// One batched server operation over a slice of matches bound for
    /// the same server: locates every match's candidate range in one
    /// sweep ([`locate_batch_at_server`](Self::locate_batch_at_server)),
    /// then evaluates the matches in slice order. Returns the number of
    /// extensions pushed onto `out`.
    ///
    /// The engines inline this composition so they can interleave their
    /// per-match bookkeeping (pruning, tracing, routing) between the
    /// evaluation steps; semantics are identical.
    pub fn process_batch_at_server_pooled(
        &self,
        server: QNodeId,
        batch: &[PartialMatch],
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
    ) -> usize {
        let roots: Vec<NodeId> = batch.iter().map(PartialMatch::root).collect();
        let mut plan = Vec::new();
        self.locate_batch_at_server(server, &roots, &mut plan);
        batch
            .iter()
            .zip(&plan)
            .map(|(m, &loc)| self.process_located_at_server_pooled(server, m, loc, out, pool))
            .sum()
    }

    /// The *evaluate* half of a server operation: extends `m` with
    /// every valid candidate in its pre-located range `loc` (or the
    /// outer-join null), drawing buffers from `pool`.
    ///
    /// The candidate range is evaluated *columnar*: candidate ids are
    /// gathered into a flat scratch vector (a straight copy unless the
    /// spec carries value/attribute tests, which are filtered scalar
    /// first — they touch strings, not columns), then every structural
    /// predicate runs as a branch-free
    /// [`KERNEL_LANE`](whirlpool_index::KERNEL_LANE)-chunked byte-mask
    /// sweep over the flat
    /// [`StructuralColumns`](whirlpool_index::StructuralColumns): one
    /// level sweep for the root predicate, then one refining sweep per
    /// bound conditional predicate. Per-candidate branching only
    /// returns for the survivors' extension pushes. Comparison counts
    /// replicate the scalar loop exactly (the root sweep costs one
    /// comparison per candidate; each conditional sweep costs one per
    /// candidate still alive when it runs, which is precisely the
    /// scalar early-break). No Dewey materialization anywhere (pinned
    /// by a `debug_assert` on [`Document::dewey`]'s read counter).
    pub fn process_located_at_server_pooled(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        loc: Located,
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
    ) -> usize {
        self.process_located_at_server_interruptible(server, m, loc, out, pool, None)
            .produced
    }

    /// [`process_located_at_server_pooled`] with a mid-kernel
    /// interruption check: with `interrupt` present, the kernel runs in
    /// segments of [`INTERRUPT_SPAN`] candidates and consults
    /// [`OpInterrupt::tripped`] between segments (and every span of a
    /// filtered gather), so one oversized operation overshoots a
    /// deadline — or outlives a cancelled client — by at most one
    /// span's work instead of the whole candidate range.
    ///
    /// With `interrupt` absent (or never tripped) the extensions,
    /// comparison counts, and lane counts are identical to the plain
    /// path: segment boundaries are lane-aligned and every predicate is
    /// still evaluated per candidate in the same order. A tripped check
    /// stops the kernel before its next segment; extensions already
    /// pushed are valid, no outer-join null is emitted for the aborted
    /// tail, and [`OpOutcome::interrupted`] tells the caller to account
    /// the match into the truncation certificate.
    ///
    /// [`process_located_at_server_pooled`]: Self::process_located_at_server_pooled
    pub fn process_located_at_server_interruptible(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        loc: Located,
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
        interrupt: Option<&OpInterrupt>,
    ) -> OpOutcome {
        debug_assert!(!m.has_visited(server));
        self.metrics.add_server_op();
        if let Some(cost) = self.op_cost {
            busy_wait(cost);
        }

        let spec = self.server_spec(server);
        let root = m.root();
        let server_max = self.max_contrib[server.index()];
        let before = out.len();
        let columns = self.index.columns();

        // Per-thread snapshot: concurrent requests over a shared
        // document may read Dewey paths legitimately on *their*
        // threads while this kernel runs.
        #[cfg(debug_assertions)]
        let dewey_reads_before = whirlpool_xml::Document::dewey_reads_this_thread();

        let mut comparisons = 0u64;
        let mut lanes = 0u64;
        let mut interrupted = false;
        KERNEL_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let ids = &mut scratch.ids;
            ids.clear();

            // Gather: candidate raw ids surviving the (scalar) value
            // and attribute prefilters, in range order. With neither
            // test present — the common case — this is a bulk copy.
            let is_wildcard = matches!(loc, Located::Any(..));
            let value_test = if is_wildcard {
                // A wildcard universe may still carry a value test,
                // checked here rather than through the value postings.
                spec.value.as_ref()
            } else {
                // Contains-style value tests are not indexable; filter
                // here. (Eq tests resolved into the posting list.)
                match &spec.value {
                    Some(v @ ValueTest::Contains(_)) => Some(v),
                    _ => None,
                }
            };
            let candidates = match loc {
                Located::Absent => Candidates::Slice([].iter()),
                Located::Any(lo, hi) => Candidates::Range(lo, hi),
                Located::Slice(lo, hi) => {
                    let ServerRange::Postings { list, .. } =
                        &self.server_ranges[server.index() - 1]
                    else {
                        unreachable!("Located::Slice at a server without postings");
                    };
                    Candidates::Slice(list[lo as usize..hi as usize].iter())
                }
            };
            if value_test.is_none() && spec.attrs.is_empty() {
                match candidates {
                    Candidates::Slice(it) => ids.extend(it.map(|n| n.index() as u32)),
                    Candidates::Range(lo, hi) => ids.extend(lo..hi),
                }
            } else {
                // The filtered gather touches strings per candidate, so
                // it gets the same span-periodic interruption check as
                // the sweeps below; a trip truncates the gather and
                // skips the kernel entirely.
                let mut since_check = 0usize;
                for cand in candidates {
                    if let Some(i) = interrupt {
                        since_check += 1;
                        if since_check >= INTERRUPT_SPAN {
                            since_check = 0;
                            if i.tripped() {
                                interrupted = true;
                                break;
                            }
                        }
                    }
                    if let Some(v) = value_test {
                        comparisons += 1;
                        if !v.matches(self.doc.text(cand)) {
                            continue;
                        }
                    }
                    if !spec.attrs.is_empty() {
                        comparisons += spec.attrs.len() as u64;
                        if !spec
                            .attrs
                            .iter()
                            .all(|a| a.matches(self.doc.attribute(cand, &a.name)))
                        {
                            continue;
                        }
                    }
                    ids.push(cand.index() as u32);
                }
            }

            // Root predicate: the exact composed form decides the score
            // level; the relaxed form (ad) holds by construction of the
            // range scan, so the columnar in-range sweep suffices (pc
            // is one parent compare, depth-bounded chains one depth
            // compare, per lane element). Scoring is *root-relative*
            // (the component predicates of Definition 4.1 all relate
            // the returned node to the server node), which keeps a
            // tuple's score independent of the order servers ran in — a
            // property the engine-equivalence guarantees rely on.
            //
            // The sweeps run in lane-aligned segments: one segment of
            // everything without an interrupt, INTERRUPT_SPAN
            // candidates per segment with one. Refinement is
            // per-candidate, so segmentation changes neither the
            // extensions nor the comparison/lane counts.
            let ids: &[u32] = ids;
            let span = if interrupt.is_some() {
                INTERRUPT_SPAN
            } else {
                usize::MAX
            };
            let level = &mut scratch.level;
            level.clear();
            level.resize(ids.len(), 0);
            let alive = &mut scratch.alive;
            if self.relax == RelaxMode::Exact {
                alive.clear();
                alive.resize(ids.len(), 0);
            }
            let mut seg = 0usize;
            while seg < ids.len() && !interrupted {
                let end = seg.saturating_add(span).min(ids.len());
                let seg_ids = &ids[seg..end];
                let seg_level = &mut level[seg..end];
                comparisons += seg_ids.len() as u64;
                lanes += columns.sweep_in_range(spec.root_exact, root, seg_ids, seg_level);

                if self.relax == RelaxMode::Exact {
                    // Exact mode: non-exact candidates die at the root
                    // predicate, then the conditional predicate
                    // sequence refines the alive mask against bound
                    // neighbours. These are *join* predicates — every
                    // pair of related query nodes is checked exactly
                    // once, at whichever of the two servers runs
                    // second, so validity is order-independent too.
                    let seg_alive = &mut alive[seg..end];
                    seg_alive.copy_from_slice(seg_level);
                    for cp in &spec.conditional {
                        let Binding::Matched { node: other, .. } = m.bindings[cp.other.index()]
                        else {
                            continue;
                        };
                        let alive_now = mask_count(seg_alive);
                        if alive_now == 0 {
                            break;
                        }
                        comparisons += alive_now;
                        lanes += match cp.direction {
                            Direction::FromAncestor => columns
                                .sweep_refine_from_ancestor(cp.exact, other, seg_ids, seg_alive),
                            Direction::ToDescendant => columns
                                .sweep_refine_to_descendant(cp.exact, other, seg_ids, seg_alive),
                        };
                    }
                    for (&c, &ok) in seg_ids.iter().zip(seg_alive.iter()) {
                        if ok == 0 {
                            continue;
                        }
                        let cand = NodeId::from_index(c as usize);
                        let level = MatchLevel::Exact;
                        let contribution = self.model.contribution(server, cand, level);
                        out.push(m.extend_in(
                            pool,
                            self.next_seq(),
                            server,
                            Binding::Matched { node: cand, level },
                            contribution,
                            server_max,
                        ));
                    }
                } else {
                    // Relaxed mode: every candidate in the (ad)
                    // universe is valid — subtree promotion and edge
                    // generalization have already weakened every
                    // conditional predicate — and the level mask
                    // decides the score level.
                    for (&c, &exact) in seg_ids.iter().zip(seg_level.iter()) {
                        let cand = NodeId::from_index(c as usize);
                        let level = if exact != 0 {
                            MatchLevel::Exact
                        } else {
                            MatchLevel::Relaxed
                        };
                        let contribution = self.model.contribution(server, cand, level);
                        out.push(m.extend_in(
                            pool,
                            self.next_seq(),
                            server,
                            Binding::Matched { node: cand, level },
                            contribution,
                            server_max,
                        ));
                    }
                }

                seg = end;
                if seg < ids.len() {
                    if let Some(i) = interrupt {
                        if i.tripped() {
                            interrupted = true;
                        }
                    }
                }
            }
        });

        // The grep-able no-Dewey guarantee: the candidate kernel above
        // must not have touched doc.dewey.
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            whirlpool_xml::Document::dewey_reads_this_thread(),
            dewey_reads_before,
            "hot candidate kernel materialized a Dewey path"
        );

        self.metrics.add_comparisons(comparisons);
        if lanes > 0 {
            self.metrics.add_kernel_lanes(lanes);
        }

        // Outer-join semantics: no candidate ⇒ one null extension (the
        // leaf-deletion relaxation). In exact mode the match simply
        // dies. An interrupted kernel emits no null — the match is
        // accounted into the truncation certificate instead, so the
        // unexplored candidates are never misrepresented as absent.
        if out.len() == before && self.relax == RelaxMode::Relaxed && !interrupted {
            out.push(m.extend_in(
                pool,
                self.next_seq(),
                server,
                Binding::Null,
                0.0,
                server_max,
            ));
        }

        let produced = out.len() - before;
        self.metrics.add_created(produced as u64);
        OpOutcome {
            produced,
            interrupted,
        }
    }

    /// The pre-columnar server operation, kept verbatim as the
    /// measurement baseline for the kernel microbench (`perfsnap`'s
    /// `kernel` section) and as a differential oracle in tests: every
    /// structural predicate is evaluated by materializing and
    /// prefix-comparing Dewey paths (O(depth) per candidate) exactly as
    /// the engines did before the columnar kernels.
    ///
    /// Counts the same metrics as the live kernel; not called by any
    /// engine.
    pub fn process_at_server_dewey_reference(
        &self,
        server: QNodeId,
        m: &PartialMatch,
        out: &mut Vec<PartialMatch>,
        pool: &mut MatchPool<'_>,
    ) -> usize {
        debug_assert!(!m.has_visited(server));
        self.metrics.add_server_op();
        if let Some(cost) = self.op_cost {
            busy_wait(cost);
        }

        let spec = self.server_spec(server);
        let root = m.root();
        let owned = self
            .doc
            .as_document()
            .expect("Dewey reference oracle requires an owned document");
        let root_dewey = owned.dewey(root);
        let server_max = self.max_contrib[server.index()];
        let before = out.len();

        let loc = self.locate_one(server, root);
        let candidates = match loc {
            Located::Absent => Candidates::Slice([].iter()),
            Located::Any(lo, hi) => Candidates::Range(lo, hi),
            Located::Slice(lo, hi) => {
                let ServerRange::Postings { list, .. } = &self.server_ranges[server.index() - 1]
                else {
                    unreachable!("Located::Slice at a server without postings");
                };
                Candidates::Slice(list[lo as usize..hi as usize].iter())
            }
        };
        let is_wildcard = matches!(loc, Located::Any(..));

        let mut comparisons = 0u64;
        for cand in candidates {
            if is_wildcard {
                if let Some(v) = &spec.value {
                    comparisons += 1;
                    if !v.matches(self.doc.text(cand)) {
                        continue;
                    }
                }
            } else if let Some(v @ ValueTest::Contains(_)) = &spec.value {
                comparisons += 1;
                if !v.matches(self.doc.text(cand)) {
                    continue;
                }
            }

            if !spec.attrs.is_empty() {
                comparisons += spec.attrs.len() as u64;
                if !spec
                    .attrs
                    .iter()
                    .all(|a| a.matches(self.doc.attribute(cand, &a.name)))
                {
                    continue;
                }
            }

            let cand_dewey = owned.dewey(cand);
            comparisons += 1;
            let level = if spec.root_exact.holds(root_dewey, cand_dewey) {
                MatchLevel::Exact
            } else {
                MatchLevel::Relaxed
            };
            if self.relax == RelaxMode::Exact && level != MatchLevel::Exact {
                continue;
            }

            let mut valid = true;
            if self.relax == RelaxMode::Exact {
                for cp in &spec.conditional {
                    let Binding::Matched { node: other, .. } = m.bindings[cp.other.index()] else {
                        continue;
                    };
                    comparisons += 1;
                    let holds_exact = match cp.direction {
                        Direction::FromAncestor => cp.exact.holds(owned.dewey(other), cand_dewey),
                        Direction::ToDescendant => cp.exact.holds(cand_dewey, owned.dewey(other)),
                    };
                    if !holds_exact {
                        valid = false;
                        break;
                    }
                }
            }
            if !valid {
                continue;
            }

            let contribution = self.model.contribution(server, cand, level);
            out.push(m.extend_in(
                pool,
                self.next_seq(),
                server,
                Binding::Matched { node: cand, level },
                contribution,
                server_max,
            ));
        }
        self.metrics.add_comparisons(comparisons);

        if out.len() == before && self.relax == RelaxMode::Relaxed {
            out.push(m.extend_in(
                pool,
                self.next_seq(),
                server,
                Binding::Null,
                0.0,
                server_max,
            ));
        }

        let produced = out.len() - before;
        self.metrics.add_created(produced as u64);
        produced
    }
}

/// Reusable per-thread buffers for the columnar evaluate kernel:
/// gathered candidate ids plus the level/alive byte masks. Thread-local
/// so the kernel allocates nothing per operation after warm-up, on any
/// engine's worker threads, without widening the `QueryContext` sharing
/// contract.
struct KernelScratch {
    ids: Vec<u32>,
    level: Vec<u8>,
    alive: Vec<u8>,
}

thread_local! {
    static KERNEL_SCRATCH: std::cell::RefCell<KernelScratch> =
        const {
            std::cell::RefCell::new(KernelScratch {
                ids: Vec::new(),
                level: Vec::new(),
                alive: Vec::new(),
            })
        };
}

/// Spins for (at least) `duration`. Used to inject per-operation cost:
/// sleeping would let the OS deschedule the thread and distort the
/// multi-threaded measurements, so we burn cycles like a real join
/// would.
fn busy_wait(duration: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    struct Fixture {
        doc: Document,
        index: TagIndex,
        pattern: TreePattern,
        model: TfIdfModel,
    }

    impl Fixture {
        fn new(src: &str, query: &str) -> Self {
            let doc = parse_document(src).unwrap();
            let index = TagIndex::build(&doc);
            let pattern = parse_pattern(query).unwrap();
            let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
            Fixture {
                doc,
                index,
                pattern,
                model,
            }
        }

        fn ctx(&self, relax: RelaxMode) -> QueryContext<'_> {
            QueryContext::new(
                &self.doc,
                &self.index,
                &self.pattern,
                &self.model,
                ContextOptions {
                    relax,
                    ..ContextOptions::default()
                },
            )
        }
    }

    const BOOKS: &str = "<shelf>\
        <book><title>wodehouse</title><info><isbn>1</isbn></info></book>\
        <book><reviews><title>wodehouse</title></reviews></book>\
        <book><name/></book>\
        </shelf>";

    #[test]
    fn root_candidates_respect_axis_and_depth() {
        let f = Fixture::new(BOOKS, "//book[./title]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        assert_eq!(ctx.root_candidates().len(), 3);

        // `/book` requires top-level books; here books are under shelf.
        let f2 = Fixture::new(BOOKS, "/book[./title]");
        let ctx2 = f2.ctx(RelaxMode::Relaxed);
        assert_eq!(ctx2.root_candidates().len(), 0);

        let f3 = Fixture::new("<book/><book/>", "/book");
        let ctx3 = f3.ctx(RelaxMode::Relaxed);
        assert_eq!(ctx3.root_candidates().len(), 2);
    }

    #[test]
    fn root_matches_carry_max_final() {
        let f = Fixture::new(BOOKS, "//book[./title and ./info/isbn]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        assert_eq!(roots.len(), 3);
        for m in &roots {
            // Sparse normalization: each of 3 servers can contribute 1.0.
            assert!((m.max_final.value() - 3.0).abs() < 1e-9);
            assert_eq!(m.score.value(), 0.0);
        }
        assert_eq!(ctx.metrics.snapshot().partials_created, 3);
    }

    #[test]
    fn server_op_exact_vs_relaxed_levels() {
        let f = Fixture::new(BOOKS, "//book[./title]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        let title = QNodeId(1);

        // Book 0: direct title child → exact level.
        let mut out = Vec::new();
        ctx.process_at_server(title, &roots[0], &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].bindings[1],
            Binding::Matched {
                level: MatchLevel::Exact,
                ..
            }
        ));

        // Book 1: title under reviews → relaxed level, lower score.
        let mut out1 = Vec::new();
        ctx.process_at_server(title, &roots[1], &mut out1);
        assert_eq!(out1.len(), 1);
        assert!(matches!(
            out1[0].bindings[1],
            Binding::Matched {
                level: MatchLevel::Relaxed,
                ..
            }
        ));
        assert!(out1[0].score < out[0].score);

        // Book 2: no title → null extension with zero score.
        let mut out2 = Vec::new();
        ctx.process_at_server(title, &roots[2], &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].bindings[1], Binding::Null);
        assert_eq!(out2[0].score.value(), 0.0);
        // A complete match's max_final equals its score.
        assert_eq!(out2[0].max_final, out2[0].score);
    }

    #[test]
    fn exact_mode_kills_non_exact_candidates() {
        let f = Fixture::new(BOOKS, "//book[./title]");
        let ctx = f.ctx(RelaxMode::Exact);
        let roots = ctx.make_root_matches();
        let title = QNodeId(1);

        let mut out = Vec::new();
        ctx.process_at_server(title, &roots[0], &mut out);
        assert_eq!(out.len(), 1, "exact child match survives");

        let mut out1 = Vec::new();
        ctx.process_at_server(title, &roots[1], &mut out1);
        assert!(out1.is_empty(), "descendant-only match dies in exact mode");

        let mut out2 = Vec::new();
        ctx.process_at_server(title, &roots[2], &mut out2);
        assert!(out2.is_empty(), "no null extensions in exact mode");
    }

    #[test]
    fn composed_root_predicates_decide_levels() {
        // publisher bound under info exactly vs promoted elsewhere: the
        // component predicate p(book, publisher) composes to
        // book/*/publisher (ChildChain(2)), which only book 0 satisfies.
        let src = "<shelf>\
            <book><info><publisher><name>psmith</name></publisher></info></book>\
            <book><publisher><name>psmith</name></publisher><info/></book>\
            </shelf>";
        let f = Fixture::new(src, "//book[./info/publisher/name]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        // Server ids: info=1, publisher=2, name=3.
        let info = QNodeId(1);
        let publisher = QNodeId(2);

        for (i, expect_exact) in [(0usize, true), (1usize, false)] {
            let mut after_info = Vec::new();
            ctx.process_at_server(info, &roots[i], &mut after_info);
            assert_eq!(after_info.len(), 1);
            let mut after_pub = Vec::new();
            ctx.process_at_server(publisher, &after_info[0], &mut after_pub);
            assert_eq!(after_pub.len(), 1);
            let level_is_exact = matches!(
                after_pub[0].bindings[2],
                Binding::Matched {
                    level: MatchLevel::Exact,
                    ..
                }
            );
            assert_eq!(
                level_is_exact, expect_exact,
                "book {i}: publisher level; info binding {:?}",
                after_info[0].bindings[1]
            );
        }
    }

    #[test]
    fn multiple_candidates_fan_out() {
        let src = "<r><item><name>a</name><name>b</name><name>c</name></item></r>";
        let f = Fixture::new(src, "//item[./name]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        let mut out = Vec::new();
        let produced = ctx.process_at_server(QNodeId(1), &roots[0], &mut out);
        assert_eq!(produced, 3);
        let snapshot = ctx.metrics.snapshot();
        assert_eq!(snapshot.server_ops, 1);
        assert_eq!(snapshot.partials_created, 1 + 3);
        assert!(snapshot.predicate_comparisons >= 3);
    }

    #[test]
    fn value_eq_uses_index_postings() {
        let f = Fixture::new(BOOKS, "//book[./title = 'wodehouse']");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        let mut out = Vec::new();
        ctx.process_at_server(QNodeId(1), &roots[0], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].bindings[1].node().is_some());
    }

    #[test]
    fn missing_tag_takes_null_path() {
        let f = Fixture::new(BOOKS, "//book[./nosuchtag]");
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        let mut out = Vec::new();
        ctx.process_at_server(QNodeId(1), &roots[0], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings[1], Binding::Null);
    }

    /// Builds one root with `children` direct `<c/>` children so a
    /// single server op has a candidate population far larger than one
    /// interrupt span.
    fn wide_fixture(children: usize) -> Fixture {
        let mut src = String::with_capacity(children * 4 + 16);
        src.push_str("<r>");
        for _ in 0..children {
            src.push_str("<c/>");
        }
        src.push_str("</r>");
        Fixture::new(&src, "//r[./c]")
    }

    #[test]
    fn tripped_interrupt_stops_within_one_span() {
        let total = INTERRUPT_SPAN * 4;
        let f = wide_fixture(total);
        let ctx = f.ctx(RelaxMode::Relaxed);
        let roots = ctx.make_root_matches();
        let mut pool = ctx.new_pool();
        let mut out = Vec::new();

        let token = crate::fault::CancelToken::new();
        token.cancel();
        let control = crate::fault::RunControl::new(
            crate::fault::Budget::new(None, None).with_cancel(Some(token)),
            None,
            f.pattern.len(),
        );
        let o = ctx.process_at_server_interruptible(
            QNodeId(1),
            &roots[0],
            &mut out,
            &mut pool,
            control.op_interrupt(),
        );

        assert!(o.interrupted);
        assert_eq!(o.produced, out.len());
        // The trip is detected at segment boundaries, so an op can
        // overshoot by at most one span — never by the whole candidate
        // population.
        assert_eq!(o.produced, INTERRUPT_SPAN);
        assert!(o.produced < total);
    }

    #[test]
    fn untripped_interrupt_leaves_the_kernel_bit_identical() {
        // Deliberately not a multiple of the span or the lane width, so
        // the segmented sweep exercises a ragged tail.
        let total = INTERRUPT_SPAN * 2 + 37;
        for relax in [RelaxMode::Exact, RelaxMode::Relaxed] {
            let f = wide_fixture(total);

            let plain_ctx = f.ctx(relax);
            let roots = plain_ctx.make_root_matches();
            let mut plain_out = Vec::new();
            let produced_plain = plain_ctx.process_at_server_pooled(
                QNodeId(1),
                &roots[0],
                &mut plain_out,
                &mut plain_ctx.new_pool(),
            );

            let seg_ctx = f.ctx(relax);
            let seg_roots = seg_ctx.make_root_matches();
            let token = crate::fault::CancelToken::new();
            let control = crate::fault::RunControl::new(
                crate::fault::Budget::new(None, None).with_cancel(Some(token)),
                None,
                f.pattern.len(),
            );
            let mut seg_out = Vec::new();
            let o = seg_ctx.process_at_server_interruptible(
                QNodeId(1),
                &seg_roots[0],
                &mut seg_out,
                &mut seg_ctx.new_pool(),
                control.op_interrupt(),
            );

            assert!(!o.interrupted);
            assert_eq!(o.produced, produced_plain);
            let bindings =
                |v: &Vec<PartialMatch>| v.iter().map(|m| m.bindings.clone()).collect::<Vec<_>>();
            assert_eq!(bindings(&seg_out), bindings(&plain_out));

            // Work accounting must not drift either: the segmented
            // sweep does the same comparisons over the same lanes.
            let plain = plain_ctx.metrics.snapshot();
            let seg = seg_ctx.metrics.snapshot();
            assert_eq!(seg.predicate_comparisons, plain.predicate_comparisons);
            assert_eq!(seg.kernel_lanes, plain.kernel_lanes);
            assert_eq!(seg.partials_created, plain.partials_created);
        }
    }
}
