//! Routing decisions (paper §6.1.4).
//!
//! "Given a partial match at the head of the router queue, the router
//! needs to make a decision on which server to choose next ... a partial
//! match should not be sent to a server that it has already gone
//! through." Strategies: **static** (fixed permutation), **score-based**
//! (`max_score` / `min_score`), and **size-based**
//! (`min_alive_partial_matches`) — the paper's winner, which estimates
//! how many extensions would survive pruning after each candidate server
//! and picks the server minimizing that.

use crate::context::QueryContext;
use crate::partial::PartialMatch;
use whirlpool_pattern::{QNodeId, StaticPlan};
use whirlpool_score::Score;

/// A routing strategy.
#[derive(Debug, Clone)]
pub enum RoutingStrategy {
    /// Every match visits servers in the same fixed order.
    Static(StaticPlan),
    /// Send to the unvisited server expected to *increase* the match's
    /// score the most. "does not result in fast executions as it reduces
    /// the pruning opportunities."
    MaxScore,
    /// Send to the server expected to increase the score the *least*
    /// ("performs reasonably well").
    MinScore,
    /// Send to the server expected to leave the fewest alive extensions
    /// after pruning — `min_alive_partial_matches`, the default.
    MinAlive,
}

impl RoutingStrategy {
    /// Short name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingStrategy::Static(_) => "static",
            RoutingStrategy::MaxScore => "max_score",
            RoutingStrategy::MinScore => "min_score",
            RoutingStrategy::MinAlive => "min_alive_partial_matches",
        }
    }

    /// Picks the next server for `m` (which must not be complete).
    /// `threshold` is the current k-th score, used by the size-based
    /// estimate.
    pub fn choose(&self, ctx: &QueryContext<'_>, m: &PartialMatch, threshold: Score) -> QNodeId {
        self.try_choose(ctx, m, threshold, |_| true)
            .expect("routing a complete match")
    }

    /// Picks the next server for `m` among the unvisited servers that
    /// `eligible` admits (the fault layer passes "is alive"). Returns
    /// `None` when no admitted server remains — a complete match, or
    /// one whose every remaining server is dead.
    pub fn try_choose(
        &self,
        ctx: &QueryContext<'_>,
        m: &PartialMatch,
        threshold: Score,
        eligible: impl Fn(QNodeId) -> bool,
    ) -> Option<QNodeId> {
        ctx.metrics.add_routing_decision();
        match self {
            RoutingStrategy::Static(plan) => plan
                .order()
                .iter()
                .copied()
                .find(|&s| !m.has_visited(s) && eligible(s)),
            RoutingStrategy::MaxScore => {
                self.pick(ctx, m, |s| expected_contribution(ctx, s), true, eligible)
            }
            RoutingStrategy::MinScore => {
                self.pick(ctx, m, |s| expected_contribution(ctx, s), false, eligible)
            }
            RoutingStrategy::MinAlive => self.pick(
                ctx,
                m,
                |s| estimated_alive(ctx, m, s, threshold),
                false,
                eligible,
            ),
        }
    }

    /// Scores every unvisited server of `m` the way
    /// [`try_choose`](RoutingStrategy::try_choose) would, without
    /// choosing (or counting a routing decision). This is the router's
    /// *explain* record: the observability layer captures it alongside
    /// each traced decision so a trace shows not just where a match
    /// went but what the alternatives scored. For the score-based
    /// strategies the estimate is the expected contribution, for
    /// `min_alive_partial_matches` the expected number of surviving
    /// extensions, and for `static` the server's plan position.
    pub fn explain(
        &self,
        ctx: &QueryContext<'_>,
        m: &PartialMatch,
        threshold: Score,
        eligible: impl Fn(QNodeId) -> bool,
    ) -> Vec<crate::trace::RouteCandidate> {
        m.unvisited(ctx.pattern.len())
            .map(|s| {
                let estimate = match self {
                    RoutingStrategy::Static(plan) => plan
                        .order()
                        .iter()
                        .position(|&p| p == s)
                        .map(|i| i as f64)
                        .unwrap_or(f64::MAX),
                    RoutingStrategy::MaxScore | RoutingStrategy::MinScore => {
                        expected_contribution(ctx, s)
                    }
                    RoutingStrategy::MinAlive => estimated_alive(ctx, m, s, threshold),
                };
                crate::trace::RouteCandidate {
                    server: s,
                    estimate,
                    eligible: eligible(s),
                }
            })
            .collect()
    }

    fn pick(
        &self,
        ctx: &QueryContext<'_>,
        m: &PartialMatch,
        score_fn: impl Fn(QNodeId) -> f64,
        maximize: bool,
        eligible: impl Fn(QNodeId) -> bool,
    ) -> Option<QNodeId> {
        let mut best: Option<(QNodeId, f64)> = None;
        for s in m.unvisited(ctx.pattern.len()) {
            if !eligible(s) {
                continue;
            }
            let v = score_fn(s);
            let better = match best {
                None => true,
                Some((_, bv)) => {
                    if maximize {
                        v > bv
                    } else {
                        v < bv
                    }
                }
            };
            if better {
                best = Some((s, v));
            }
        }
        best.map(|(s, _)| s)
    }
}

/// Expected score contribution of `server` for an average candidate:
/// the exact/relaxed bounds weighted by the sampled exact fraction, and
/// zero for the sampled empty (null-path) fraction.
fn expected_contribution(ctx: &QueryContext<'_>, server: QNodeId) -> f64 {
    let sel = ctx.selectivity_of(server);
    let exact = ctx.max_contribution(server);
    let relaxed = ctx.model.max_relaxed_contribution(server);
    let per_candidate = sel.exact_fraction * exact + (1.0 - sel.exact_fraction) * relaxed;
    (1.0 - sel.empty_fraction) * per_candidate
}

/// Size-based estimate: how many extensions of `m` would be alive after
/// processing at `server`, given the current `threshold`?
///
/// An extension with contribution `c` survives iff
/// `m.max_final - max_contrib(server) + c ≥ threshold`, i.e.
/// `c ≥ need`. Candidates score `exact` with the sampled exact fraction
/// and `relaxed` otherwise; the null (empty) path contributes `c = 0`.
fn estimated_alive(
    ctx: &QueryContext<'_>,
    m: &PartialMatch,
    server: QNodeId,
    threshold: Score,
) -> f64 {
    let sel = ctx.selectivity_of(server);
    let server_max = ctx.max_contribution(server);
    let need = threshold.value() - (m.max_final.value() - server_max);

    let exact = ctx.max_contribution(server);
    let relaxed = ctx.model.max_relaxed_contribution(server);

    let surviving_fraction = sel.exact_fraction * survives(exact, need)
        + (1.0 - sel.exact_fraction) * survives(relaxed, need);
    let mut alive = sel.mean_candidates * surviving_fraction;
    // The empty path yields one null extension per empty root.
    if 0.0 >= need {
        alive += sel.empty_fraction;
    }
    alive
}

fn survives(contribution: f64, need: f64) -> f64 {
    if contribution >= need {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextOptions, QueryContext, RelaxMode};
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::{parse_pattern, StaticPlan};
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    /// items with very different server fanouts: `many` has 4 matches
    /// per item, `rare` has at most one and is often missing.
    const SRC: &str = "<r>\
        <item><many/><many/><many/><many/><rare/></item>\
        <item><many/><many/><many/><many/></item>\
        <item><many/><many/><many/><many/><rare/></item>\
        <item><many/><many/><many/><many/></item>\
        </r>";

    fn with_ctx(f: impl FnOnce(&QueryContext<'_>)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//item[./many and ./rare]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax: RelaxMode::Relaxed,
                ..Default::default()
            },
        );
        f(&ctx);
    }

    #[test]
    fn static_routing_follows_the_plan() {
        with_ctx(|ctx| {
            let plan = StaticPlan::new(vec![QNodeId(2), QNodeId(1)]);
            let strategy = RoutingStrategy::Static(plan);
            let m = ctx.make_root_matches().remove(0);
            assert_eq!(strategy.choose(ctx, &m, Score::ZERO), QNodeId(2));
        });
    }

    #[test]
    fn min_alive_prefers_low_fanout_servers() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            // With threshold 0 everything survives, so the estimate is the
            // fanout: many≈4, rare≈0.5 — min_alive must pick rare (q2).
            let s = RoutingStrategy::MinAlive.choose(ctx, &m, Score::ZERO);
            assert_eq!(s, QNodeId(2));
        });
    }

    #[test]
    fn min_alive_accounts_for_pruning() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            // With sparse weights both servers max out at 1.0 and the
            // root match has max_final = 2.0. A threshold of 2.1 means
            // need = 2.1 - (2.0 - 1.0) = 1.1 > 1.0 at either server: no
            // extension can survive, both estimates collapse to 0, and
            // the tie resolves to the first unvisited server (q1) —
            // showing the threshold flipping the low-fanout choice of
            // `min_alive_prefers_low_fanout_servers`.
            let s = RoutingStrategy::MinAlive.choose(ctx, &m, Score::new(2.1));
            assert_eq!(s, QNodeId(1), "high threshold flips the choice");
        });
    }

    #[test]
    fn max_score_picks_the_generous_server() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            // Every item has a `many` child, so per Definition 4.2 the
            // `many` predicate's idf — and with it the server's expected
            // contribution — is 0. `rare` discriminates (idf ln 2) and,
            // even discounted by its 50% empty fraction, contributes
            // more. max_score therefore picks `rare`, min_score `many`.
            let max = RoutingStrategy::MaxScore.choose(ctx, &m, Score::ZERO);
            let min = RoutingStrategy::MinScore.choose(ctx, &m, Score::ZERO);
            assert_eq!(max, QNodeId(2));
            assert_eq!(min, QNodeId(1));
        });
    }

    #[test]
    fn visited_servers_are_skipped() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            let mut out = Vec::new();
            ctx.process_at_server(QNodeId(1), &m, &mut out);
            let next = RoutingStrategy::MinAlive.choose(ctx, &out[0], Score::ZERO);
            assert_eq!(next, QNodeId(2), "only q2 remains");
        });
    }

    #[test]
    fn dead_servers_are_never_chosen() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            // The fault layer filters candidates through `eligible`:
            // with q2 dead, every strategy must fall back to q1 — even
            // those that would otherwise prefer q2 — and with both
            // servers dead no route exists at all.
            let q2_dead = |s: QNodeId| s != QNodeId(2);
            for strategy in [
                RoutingStrategy::Static(StaticPlan::new(vec![QNodeId(2), QNodeId(1)])),
                RoutingStrategy::MaxScore,
                RoutingStrategy::MinScore,
                RoutingStrategy::MinAlive,
            ] {
                assert_eq!(
                    strategy.try_choose(ctx, &m, Score::ZERO, q2_dead),
                    Some(QNodeId(1)),
                    "{}",
                    strategy.name()
                );
                assert_eq!(
                    strategy.try_choose(ctx, &m, Score::ZERO, |_| false),
                    None,
                    "{}",
                    strategy.name()
                );
            }
        });
    }

    #[test]
    fn routing_decisions_are_counted() {
        with_ctx(|ctx| {
            let m = ctx.make_root_matches().remove(0);
            let before = ctx.metrics.snapshot().routing_decisions;
            let _ = RoutingStrategy::MinAlive.choose(ctx, &m, Score::ZERO);
            let _ = RoutingStrategy::MaxScore.choose(ctx, &m, Score::ZERO);
            assert_eq!(ctx.metrics.snapshot().routing_decisions, before + 2);
        });
    }
}
