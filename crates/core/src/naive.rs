//! A naive tree-pattern evaluator, used as the differential-testing
//! oracle for the engines' *exact* mode.
//!
//! Straightforward recursive embedding search with no indexes, no
//! scores and no pruning — slow but obviously correct.

use whirlpool_pattern::{Axis, QNodeId, TreePattern};
use whirlpool_xml::{Document, NodeId};

/// The document nodes that root at least one *exact* embedding of the
/// pattern, in document order.
pub fn exact_match_roots(doc: &Document, pattern: &TreePattern) -> Vec<NodeId> {
    let root_q = pattern.root();
    let root_spec = pattern.node(root_q);
    doc.elements()
        .filter(|&n| {
            // Root axis from the synthetic document root.
            match root_spec.axis {
                Axis::Child => doc.depth(n) == 1,
                Axis::Descendant => true,
            }
        })
        .filter(|&n| embeds(doc, pattern, root_q, n))
        .collect()
}

/// The number of distinct exact embeddings rooted at `root`.
pub fn count_exact_embeddings(doc: &Document, pattern: &TreePattern, root: NodeId) -> usize {
    count(doc, pattern, pattern.root(), root)
}

/// Can `qnode` embed at `node` (tag, value, and all pattern children
/// recursively)?
fn embeds(doc: &Document, pattern: &TreePattern, qnode: QNodeId, node: NodeId) -> bool {
    count_limited(doc, pattern, qnode, node, 1) > 0
}

fn count(doc: &Document, pattern: &TreePattern, qnode: QNodeId, node: NodeId) -> usize {
    count_limited(doc, pattern, qnode, node, usize::MAX)
}

/// Counts embeddings of the subtree rooted at `qnode` onto `node`,
/// stopping early once `limit` is reached.
fn count_limited(
    doc: &Document,
    pattern: &TreePattern,
    qnode: QNodeId,
    node: NodeId,
    limit: usize,
) -> usize {
    let spec = pattern.node(qnode);
    if !pattern.tag_matches(qnode, doc.tag_str(node)) {
        return 0;
    }
    if let Some(v) = &spec.value {
        if !v.matches(doc.text(node)) {
            return 0;
        }
    }
    if !spec
        .attrs
        .iter()
        .all(|a| a.matches(doc.attribute(node, &a.name)))
    {
        return 0;
    }
    let mut total = 1usize;
    for &child_q in &spec.children {
        let axis = pattern.node(child_q).axis;
        let mut ways = 0usize;
        match axis {
            Axis::Child => {
                for c in doc.children(node) {
                    ways = ways.saturating_add(count_limited(doc, pattern, child_q, c, limit));
                    if ways >= limit {
                        break;
                    }
                }
            }
            Axis::Descendant => {
                for c in doc.descendants_or_self(node).skip(1) {
                    ways = ways.saturating_add(count_limited(doc, pattern, child_q, c, limit));
                    if ways >= limit {
                        break;
                    }
                }
            }
        }
        if ways == 0 {
            return 0;
        }
        total = total.saturating_mul(ways);
        if total >= limit {
            total = limit;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_xml::parse_document;

    #[test]
    fn finds_exact_embeddings() {
        let doc = parse_document(
            "<shelf>\
             <book><title>x</title><isbn>1</isbn></book>\
             <book><title>x</title></book>\
             <book><nested><title>x</title></nested><isbn>2</isbn></book>\
             </shelf>",
        )
        .unwrap();
        let q = parse_pattern("//book[./title and ./isbn]").unwrap();
        let roots = exact_match_roots(&doc, &q);
        assert_eq!(roots.len(), 1);
        let q_relaxed = parse_pattern("//book[.//title and ./isbn]").unwrap();
        assert_eq!(exact_match_roots(&doc, &q_relaxed).len(), 2);
    }

    #[test]
    fn counts_multiplicities() {
        let doc = parse_document("<r><item><a/><a/><b/><b/><b/></item></r>").unwrap();
        let q = parse_pattern("//item[./a and ./b]").unwrap();
        let roots = exact_match_roots(&doc, &q);
        assert_eq!(roots.len(), 1);
        assert_eq!(count_exact_embeddings(&doc, &q, roots[0]), 6);
    }

    #[test]
    fn respects_value_tests_and_depth() {
        let doc = parse_document(
            "<r><book><title>wodehouse</title></book><book><title>other</title></book></r>",
        )
        .unwrap();
        let q = parse_pattern("//book[./title = 'wodehouse']").unwrap();
        assert_eq!(exact_match_roots(&doc, &q).len(), 1);
        // `/book` wants a top-level book; these are under <r>.
        let q2 = parse_pattern("/book[./title = 'wodehouse']").unwrap();
        assert!(exact_match_roots(&doc, &q2).is_empty());
    }

    #[test]
    fn nested_predicates() {
        let doc = parse_document(
            "<r>\
             <item><mail><text><bold/><keyword/></text></mail></item>\
             <item><mail><text><bold/></text></mail></item>\
             </r>",
        )
        .unwrap();
        let q = parse_pattern("//item[./mail/text[./bold and ./keyword]]").unwrap();
        assert_eq!(exact_match_roots(&doc, &q).len(), 1);
    }
}
