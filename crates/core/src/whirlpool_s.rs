//! Whirlpool-S: the single-threaded adaptive engine.
//!
//! "A partial match is processed by a server as soon as it is routed to
//! it, therefore the servers' priority queues are not needed, and
//! partial matches are only kept in the router's queue. ... the
//! algorithm always chooses the partial match with the maximum possible
//! final score as it is the one on top of the router queue" (§6.1.2) —
//! the order MPro/Upper prove necessary for instance-optimal probing.

use crate::context::{Located, QueryContext, RelaxMode};
use crate::fault::{
    degrade_to_completion, guarded_process, guarded_process_located, EngineRun, RunControl,
    Truncation,
};
use crate::queue::{MatchQueue, QueuePolicy};
use crate::router::RoutingStrategy;
use crate::topk::{RankedAnswer, TopKSet};

/// Runs Whirlpool-S.
///
/// `queue_policy` defaults to [`QueuePolicy::MaxFinalScore`] in the
/// public API; other policies are accepted for the ablation benches.
pub fn run_whirlpool_s(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    queue_policy: QueuePolicy,
) -> Vec<RankedAnswer> {
    run_whirlpool_s_batched(ctx, routing, k, queue_policy, 1)
}

/// Runs Whirlpool-S with *bulk routing* (`batch > 1`): up to `batch`
/// queued matches that have visited the same server set share one
/// routing decision. This implements the paper's §6.3.3 future-work
/// proposal ("performing adaptivity operations 'in bulk', by grouping
/// tuples based on similarity of scores or nodes, in order to decrease
/// adaptivity overhead") — grouping by visited-set keeps the decision
/// applicable to every member, and members are adjacent in the
/// max-final-score queue, so their scores are similar by construction.
pub fn run_whirlpool_s_batched(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    queue_policy: QueuePolicy,
    batch: usize,
) -> Vec<RankedAnswer> {
    run_whirlpool_s_anytime(
        ctx,
        routing,
        k,
        queue_policy,
        batch,
        &RunControl::unlimited(),
    )
    .answers
}

/// Whirlpool-S under a [`RunControl`]: the budget is checked at every
/// queue pop (expiry drains the router queue, recording each abandoned
/// match's score bound), routing skips dead servers, and a match whose
/// every remaining server is dead is degraded to completion (relaxed
/// mode) or dropped with its bound recorded (exact mode).
pub fn run_whirlpool_s_anytime(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
    queue_policy: QueuePolicy,
    batch: usize,
    control: &RunControl,
) -> EngineRun {
    let batch = batch.max(1);
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full = ctx.full_mask();
    let trunc = Truncation::new();
    let mut topk = TopKSet::with_floor(k, control.threshold_floor());
    let mut pool = ctx.new_pool();
    let mut queue = MatchQueue::new(queue_policy, None);
    let mut tr = control.trace_worker("whirlpool-s");

    tr.span_begin("seed");
    for m in ctx.make_root_matches() {
        tr.spawned(&m);
        let complete = m.is_complete(full); // single-node patterns
        if offer_partial || complete {
            topk.offer_match(&m);
        }
        if complete {
            tr.completed(&m);
            pool.release(m);
        } else {
            queue.push(ctx, m);
        }
    }
    tr.span_end("seed");

    tr.span_begin("route-and-process");
    let batching = ctx.op_batching();
    let mut exts = Vec::new();
    let mut group = Vec::new();
    let mut put_back = Vec::new();
    let mut locs: Vec<Located> = Vec::new();
    while let Some(m) = queue.pop() {
        if control.exhausted(&ctx.metrics) {
            if trunc.expire() {
                control.count_stop(&ctx.metrics);
            }
            trunc.account(m.max_final);
            tr.abandoned(&m);
            pool.release(m);
            while let Some(x) = queue.pop() {
                trunc.account(x.max_final);
                tr.abandoned(&x);
                pool.release(x);
            }
            break;
        }
        // Re-check at pop time: the threshold may have grown since the
        // match was queued.
        if topk.should_prune(&m) {
            ctx.metrics.add_pruned();
            tr.pruned(&m, topk.threshold());
            pool.release(m);
            continue;
        }
        debug_assert!(!m.is_complete(full), "complete matches are never queued");

        // Bulk routing: gather queue neighbours with the same visited
        // set; they all take the group head's routing decision.
        group.clear();
        let visited = m.visited;
        group.push(m);
        while group.len() < batch {
            let Some(x) = queue.pop() else { break };
            if topk.should_prune(&x) {
                ctx.metrics.add_pruned();
                tr.pruned(&x, topk.threshold());
                pool.release(x);
                continue;
            }
            if x.visited == visited {
                group.push(x);
            } else {
                put_back.push(x);
            }
        }
        for x in put_back.drain(..) {
            queue.push(ctx, x);
        }

        let threshold = topk.threshold();
        let candidates = if tr.enabled() {
            routing.explain(ctx, &group[0], threshold, |s| !control.is_dead(s))
        } else {
            Vec::new()
        };
        let choice = routing.try_choose(ctx, &group[0], threshold, |s| !control.is_dead(s));
        if tr.enabled() {
            tr.routed(crate::trace::RouteExplain {
                seq: group[0].seq,
                strategy: routing.name(),
                threshold: threshold.value(),
                queue_len: queue.len(),
                group: group.len(),
                chosen: choice,
                candidates,
            });
        }
        let Some(server) = choice else {
            // Every remaining server is dead: finish the group through
            // degradation, or drop it in exact mode.
            for m in group.drain(..) {
                trunc.account(m.max_final);
                tr.abandoned(&m);
                if offer_partial {
                    ctx.metrics.add_match_redistributed();
                    let done = degrade_to_completion(ctx, m, &mut pool);
                    tr.spawned(&done);
                    topk.offer_match(&done);
                    tr.completed(&done);
                    ctx.metrics.add_answer_degraded();
                    pool.release(done);
                } else {
                    pool.release(m);
                }
            }
            continue;
        };
        // One locate sweep for the whole routed group (a batch of one
        // when bulk routing is off), then per-member evaluation in the
        // group's queue order with bookkeeping unchanged.
        if batching {
            let roots: Vec<_> = group.iter().map(|x| x.root()).collect();
            ctx.locate_batch_at_server(server, &roots, &mut locs);
        }
        for (at, m) in group.drain(..).enumerate() {
            let loc = if batching { locs[at] } else { Located::Absent };
            exts.clear();
            let t0 = tr.op_start();
            let ran = if batching {
                guarded_process_located(ctx, control, &trunc, server, &m, loc, &mut exts, &mut pool)
            } else {
                guarded_process(ctx, control, &trunc, server, &m, &mut exts, &mut pool)
            };
            if !ran {
                // The chosen server died under us: requeue the match so
                // the next pop re-routes it among the survivors.
                ctx.metrics.add_match_redistributed();
                queue.push(ctx, m);
                continue;
            }
            tr.server_op(server, m.seq, exts.len(), t0);
            pool.release(m);
            for e in exts.drain(..) {
                tr.spawned(&e);
                let complete = e.is_complete(full);
                if offer_partial || complete {
                    topk.offer_match(&e);
                }
                if complete {
                    tr.completed(&e);
                    if e.degraded {
                        ctx.metrics.add_answer_degraded();
                    }
                    pool.release(e);
                    continue;
                }
                if topk.should_prune(&e) {
                    ctx.metrics.add_pruned();
                    tr.pruned(&e, topk.threshold());
                    pool.release(e);
                    continue;
                }
                queue.push(ctx, e);
            }
        }
        if tr.enabled() {
            tr.threshold(topk.threshold());
            tr.queue_depth(crate::trace::QueueId::Router, queue.len());
        }
    }
    tr.span_end("route-and-process");

    let answers = topk.ranked();
    let completeness = trunc.finish(&answers);
    EngineRun {
        answers,
        completeness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextOptions;
    use crate::lockstep::{run_lockstep, run_lockstep_noprune};
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::{parse_pattern, StaticPlan};
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    const SRC: &str = "<shelf>\
        <book><title>t</title><isbn>1</isbn><price>9</price></book>\
        <book><title>t</title><isbn>2</isbn></book>\
        <book><title>t</title></book>\
        <book><extra><title>t</title><price>3</price></extra></book>\
        <book><name/></book>\
        <book><isbn>5</isbn><price>1</price></book>\
        </shelf>";

    fn harness(query: &str, relax: RelaxMode, f: impl FnOnce(&QueryContext<'_>, usize)) {
        let doc = parse_document(SRC).unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern(query).unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax,
                ..Default::default()
            },
        );
        let servers = pattern.server_ids().count();
        f(&ctx, servers);
    }

    #[test]
    fn agrees_with_lockstep_noprune_reference() {
        let query = "//book[./title and ./isbn and ./price]";
        for k in [1, 2, 3, 6] {
            let mut reference = Vec::new();
            harness(query, RelaxMode::Relaxed, |ctx, servers| {
                reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), k);
            });
            for routing in [
                RoutingStrategy::MinAlive,
                RoutingStrategy::MaxScore,
                RoutingStrategy::MinScore,
            ] {
                harness(query, RelaxMode::Relaxed, |ctx, _| {
                    let got = run_whirlpool_s(ctx, &routing, k, QueuePolicy::MaxFinalScore);
                    assert!(
                        crate::topk::answers_equivalent(&got, &reference, 1e-9),
                        "k={k} routing={}: {got:?} vs {reference:?}",
                        routing.name()
                    );
                });
            }
        }
    }

    #[test]
    fn static_routing_matches_lockstep_answers() {
        let query = "//book[./title and ./price]";
        let mut a = Vec::new();
        let mut b = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            a = run_lockstep(
                ctx,
                &StaticPlan::in_id_order(servers),
                3,
                QueuePolicy::MaxFinalScore,
            );
        });
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            let routing = RoutingStrategy::Static(StaticPlan::in_id_order(servers));
            b = run_whirlpool_s(ctx, &routing, 3, QueuePolicy::MaxFinalScore);
        });
        let sa: Vec<_> = a.iter().map(|r| (r.root, r.score)).collect();
        let sb: Vec<_> = b.iter().map(|r| (r.root, r.score)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn exact_mode_agrees_with_lockstep() {
        let query = "//book[./title and ./isbn]";
        let mut a = Vec::new();
        let mut b = Vec::new();
        harness(query, RelaxMode::Exact, |ctx, servers| {
            a = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 10);
        });
        harness(query, RelaxMode::Exact, |ctx, _| {
            b = run_whirlpool_s(
                ctx,
                &RoutingStrategy::MinAlive,
                10,
                QueuePolicy::MaxFinalScore,
            );
        });
        assert_eq!(a.len(), b.len());
        let sa: Vec<_> = a.iter().map(|r| (r.root, r.score)).collect();
        let sb: Vec<_> = b.iter().map(|r| (r.root, r.score)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn pruning_happens_for_small_k() {
        harness(
            "//book[./title and ./isbn and ./price]",
            RelaxMode::Relaxed,
            |ctx, _| {
                let _ = run_whirlpool_s(
                    ctx,
                    &RoutingStrategy::MinAlive,
                    1,
                    QueuePolicy::MaxFinalScore,
                );
                assert!(ctx.metrics.snapshot().pruned > 0);
            },
        );
    }

    #[test]
    fn fifo_queue_still_terminates_with_right_answers() {
        let query = "//book[./title and ./isbn]";
        let mut reference = Vec::new();
        harness(query, RelaxMode::Relaxed, |ctx, servers| {
            reference = run_lockstep_noprune(ctx, &StaticPlan::in_id_order(servers), 4);
        });
        harness(query, RelaxMode::Relaxed, |ctx, _| {
            let got = run_whirlpool_s(ctx, &RoutingStrategy::MinAlive, 4, QueuePolicy::Fifo);
            let gs: Vec<_> = got.iter().map(|r| (r.root, r.score)).collect();
            let rs: Vec<_> = reference.iter().map(|r| (r.root, r.score)).collect();
            assert_eq!(gs, rs);
        });
    }
}
