//! Evaluation counters.
//!
//! The paper's measures (§6.2.3): query execution time, number of
//! server operations, number of partial matches created. We addition-
//! ally count individual join-predicate comparisons (the unit of
//! Figure 3) and pruning/routing activity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters. All engines update the same set so the
/// experiment harness can compare workloads directly.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Partial matches processed by a server ("server operations",
    /// Figure 7).
    pub server_ops: AtomicU64,
    /// Batched locate sweeps: calls to
    /// [`locate_batch_at_server`](crate::QueryContext::locate_batch_at_server),
    /// each resolving the candidate ranges of one drained same-server
    /// batch.
    pub server_op_batches: AtomicU64,
    /// Individual join-predicate comparisons (Figure 3's unit).
    pub predicate_comparisons: AtomicU64,
    /// Partial matches created, including the initial root matches
    /// (Table 2).
    pub partials_created: AtomicU64,
    /// Partial matches discarded against the top-k set.
    pub pruned: AtomicU64,
    /// Adaptive routing decisions taken.
    pub routing_decisions: AtomicU64,
    /// Binding buffers allocated fresh from the heap (pool misses plus
    /// all allocations when pooling is disabled).
    pub buffers_allocated: AtomicU64,
    /// Binding buffers recycled from a [`MatchPool`](crate::MatchPool)
    /// free list instead of being allocated.
    pub buffers_reused: AtomicU64,
    /// Evaluations cut short by a deadline or operation budget.
    pub deadline_hits: AtomicU64,
    /// Evaluations cut short by a tripped
    /// [`CancelToken`](crate::CancelToken) (client disconnect, watchdog
    /// timeout, or any other cooperative shutdown).
    pub cancellations: AtomicU64,
    /// Servers that failed or panicked and were isolated.
    pub servers_failed: AtomicU64,
    /// Partial matches rescued from a dead server and re-routed to
    /// survivors.
    pub matches_redistributed: AtomicU64,
    /// Answers completed through degradation (a dead server's predicate
    /// scored as the leaf-deletion relaxation).
    pub answers_degraded: AtomicU64,
    /// Times a worker ran out of home-queue work and successfully stole
    /// from another worker's server queue.
    pub steal_events: AtomicU64,
    /// Whole drain batches transferred by stealing (one steal event can
    /// move at most one batch, so this currently equals `steal_events`;
    /// kept separate so a future multi-batch steal shows up).
    pub batches_stolen: AtomicU64,
    /// Fixed-width lanes swept by the columnar evaluate kernels (one
    /// lane = one fixed-width chunk of candidates tested branch-free).
    pub kernel_lanes: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one server operation.
    #[inline]
    pub fn add_server_op(&self) {
        self.server_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batched locate sweep.
    #[inline]
    pub fn add_server_op_batch(&self) {
        self.server_op_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` join-predicate comparisons.
    #[inline]
    pub fn add_comparisons(&self, n: u64) {
        self.predicate_comparisons.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` newly created partial matches.
    #[inline]
    pub fn add_created(&self, n: u64) {
        self.partials_created.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one pruned partial match.
    #[inline]
    pub fn add_pruned(&self) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one routing decision.
    #[inline]
    pub fn add_routing_decision(&self) {
        self.routing_decisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` binding buffers allocated fresh from the heap.
    #[inline]
    pub fn add_buffers_allocated(&self, n: u64) {
        self.buffers_allocated.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` binding buffers recycled from a pool free list.
    #[inline]
    pub fn add_buffers_reused(&self, n: u64) {
        self.buffers_reused.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one budget expiry (deadline or op cap).
    #[inline]
    pub fn add_deadline_hit(&self) {
        self.deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one evaluation stopped by a tripped cancel token.
    #[inline]
    pub fn add_cancellation(&self) {
        self.cancellations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server failure (fault or panic, first detection).
    #[inline]
    pub fn add_server_failed(&self) {
        self.servers_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one partial match redistributed away from a dead server.
    #[inline]
    pub fn add_match_redistributed(&self) {
        self.matches_redistributed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one answer completed through degradation.
    #[inline]
    pub fn add_answer_degraded(&self) {
        self.answers_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successful steal moving `batches` drain batches.
    #[inline]
    pub fn add_steal(&self, batches: u64) {
        self.steal_events.fetch_add(1, Ordering::Relaxed);
        self.batches_stolen.fetch_add(batches, Ordering::Relaxed);
    }

    /// Counts `n` fixed-width kernel lanes swept.
    #[inline]
    pub fn add_kernel_lanes(&self, n: u64) {
        self.kernel_lanes.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value copy for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            server_ops: self.server_ops.load(Ordering::Relaxed),
            server_op_batches: self.server_op_batches.load(Ordering::Relaxed),
            predicate_comparisons: self.predicate_comparisons.load(Ordering::Relaxed),
            partials_created: self.partials_created.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            routing_decisions: self.routing_decisions.load(Ordering::Relaxed),
            buffers_allocated: self.buffers_allocated.load(Ordering::Relaxed),
            buffers_reused: self.buffers_reused.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            cancellations: self.cancellations.load(Ordering::Relaxed),
            servers_failed: self.servers_failed.load(Ordering::Relaxed),
            matches_redistributed: self.matches_redistributed.load(Ordering::Relaxed),
            answers_degraded: self.answers_degraded.load(Ordering::Relaxed),
            steal_events: self.steal_events.load(Ordering::Relaxed),
            batches_stolen: self.batches_stolen.load(Ordering::Relaxed),
            kernel_lanes: self.kernel_lanes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value counters, comparable and cheap to copy around.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Partial matches processed by servers.
    pub server_ops: u64,
    /// Batched locate sweeps over same-server match groups.
    pub server_op_batches: u64,
    /// Individual join-predicate comparisons.
    pub predicate_comparisons: u64,
    /// Partial matches created (root matches included).
    pub partials_created: u64,
    /// Partial matches discarded against the top-k set.
    pub pruned: u64,
    /// Adaptive routing decisions taken.
    pub routing_decisions: u64,
    /// Binding buffers allocated fresh from the heap.
    pub buffers_allocated: u64,
    /// Binding buffers recycled from a pool free list.
    pub buffers_reused: u64,
    /// Evaluations cut short by a deadline or operation budget.
    pub deadline_hits: u64,
    /// Evaluations cut short by a tripped cancel token.
    pub cancellations: u64,
    /// Servers that failed or panicked and were isolated.
    pub servers_failed: u64,
    /// Partial matches rescued from a dead server and re-routed.
    pub matches_redistributed: u64,
    /// Answers completed through degradation.
    pub answers_degraded: u64,
    /// Successful batch steals by idle workers.
    pub steal_events: u64,
    /// Whole drain batches moved by stealing.
    pub batches_stolen: u64,
    /// Fixed-width lanes swept by the columnar evaluate kernels.
    pub kernel_lanes: u64,
}

impl MetricsSnapshot {
    /// Fraction of binding-buffer requests served from the pool, in
    /// `[0, 1]`; zero when nothing was requested.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.buffers_allocated + self.buffers_reused;
        if total == 0 {
            0.0
        } else {
            self.buffers_reused as f64 / total as f64
        }
    }

    /// Fraction of drained batches that arrived by stealing rather than
    /// from a worker's own home queues, in `[0, 1]`; zero when no
    /// batches were drained at all.
    pub fn steal_rate(&self) -> f64 {
        if self.server_op_batches == 0 {
            0.0
        } else {
            self.batches_stolen as f64 / self.server_op_batches as f64
        }
    }

    /// Adds every counter of `other` into `self`. The collection driver
    /// folds its per-shard runs into one corpus-wide snapshot with this.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.server_ops += other.server_ops;
        self.server_op_batches += other.server_op_batches;
        self.predicate_comparisons += other.predicate_comparisons;
        self.partials_created += other.partials_created;
        self.pruned += other.pruned;
        self.routing_decisions += other.routing_decisions;
        self.buffers_allocated += other.buffers_allocated;
        self.buffers_reused += other.buffers_reused;
        self.deadline_hits += other.deadline_hits;
        self.cancellations += other.cancellations;
        self.servers_failed += other.servers_failed;
        self.matches_redistributed += other.matches_redistributed;
        self.answers_degraded += other.answers_degraded;
        self.steal_events += other.steal_events;
        self.batches_stolen += other.batches_stolen;
        self.kernel_lanes += other.kernel_lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_server_op();
        m.add_server_op();
        m.add_comparisons(5);
        m.add_created(3);
        m.add_pruned();
        m.add_routing_decision();
        m.add_deadline_hit();
        m.add_server_failed();
        m.add_match_redistributed();
        m.add_match_redistributed();
        m.add_answer_degraded();
        let s = m.snapshot();
        assert_eq!(s.server_ops, 2);
        assert_eq!(s.predicate_comparisons, 5);
        assert_eq!(s.partials_created, 3);
        assert_eq!(s.pruned, 1);
        assert_eq!(s.routing_decisions, 1);
        assert_eq!(s.deadline_hits, 1);
        assert_eq!(s.servers_failed, 1);
        assert_eq!(s.matches_redistributed, 2);
        assert_eq!(s.answers_degraded, 1);
    }

    #[test]
    fn snapshot_is_a_value() {
        let m = Metrics::new();
        let a = m.snapshot();
        m.add_server_op();
        let b = m.snapshot();
        assert_ne!(a, b);
        assert_eq!(a.server_ops, 0);
        assert_eq!(b.server_ops, 1);
    }
}
