//! Priority-queue policies (paper §6.1.3).
//!
//! "Various strategies can be used for server prioritization: FIFO ...
//! Current score ... Maximum possible next score ... Maximum possible
//! final score". The paper finds the last one best everywhere ("for all
//! configurations tested, a queue based on the maximum possible final
//! score performed better"), and Whirlpool-S is defined over it; the
//! others are kept for the ablation benches.

use crate::context::QueryContext;
use crate::partial::PartialMatch;
use std::collections::BinaryHeap;
use whirlpool_pattern::QNodeId;
use whirlpool_score::Score;

/// How a queue orders the partial matches waiting in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Arrival order.
    Fifo,
    /// Highest current score first.
    CurrentScore,
    /// Current score plus the maximum the *target server* could add.
    /// (Only distinct from `CurrentScore` on per-server queues.)
    MaxNextScore,
    /// Highest maximum possible final score first — the paper's winner.
    #[default]
    MaxFinalScore,
}

impl QueuePolicy {
    /// The priority key for `m` waiting on `server` (None for the
    /// router's server-agnostic queue).
    pub fn key(self, ctx: &QueryContext<'_>, m: &PartialMatch, server: Option<QNodeId>) -> Score {
        match self {
            // FIFO keys are handled by the tie-break (earlier seq wins);
            // a constant key makes the heap a FIFO-by-seq queue.
            QueuePolicy::Fifo => Score::ZERO,
            QueuePolicy::CurrentScore => m.score,
            QueuePolicy::MaxNextScore => match server {
                Some(s) => m.score.plus(ctx.max_contribution(s)),
                None => m.score,
            },
            QueuePolicy::MaxFinalScore => m.max_final,
        }
    }
}

/// A priority queue of partial matches under a fixed policy.
///
/// Ordering: higher key first; ties broken by *earlier* creation
/// sequence, which both makes FIFO exact and keeps runs deterministic.
pub struct MatchQueue {
    policy: QueuePolicy,
    /// The server this queue feeds (None: the router queue).
    server: Option<QNodeId>,
    heap: BinaryHeap<Entry>,
}

struct Entry {
    key: Score,
    seq: u64,
    m: PartialMatch,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key, then min-heap on seq.
        self.key
            .cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl MatchQueue {
    /// An empty queue under `policy`, feeding `server` (`None` for the
    /// router queue).
    pub fn new(policy: QueuePolicy, server: Option<QNodeId>) -> Self {
        MatchQueue {
            policy,
            server,
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues a match (its key is computed at push time).
    pub fn push(&mut self, ctx: &QueryContext<'_>, m: PartialMatch) {
        let key = self.policy.key(ctx, &m, self.server);
        self.heap.push(Entry { key, seq: m.seq, m });
    }

    /// Removes and returns the highest-priority match.
    pub fn pop(&mut self) -> Option<PartialMatch> {
        self.heap.pop().map(|e| e.m)
    }

    /// The key of the head entry, if any.
    pub fn peek_key(&self) -> Option<Score> {
        self.heap.peek().map(|e| e.key)
    }

    /// Number of queued matches.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextOptions, QueryContext, RelaxMode};
    use whirlpool_index::TagIndex;
    use whirlpool_pattern::parse_pattern;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xml::parse_document;

    fn with_ctx(f: impl FnOnce(&QueryContext<'_>)) {
        let doc = parse_document("<r><item><name>x</name></item><item/></r>").unwrap();
        let index = TagIndex::build(&doc);
        let pattern = parse_pattern("//item[./name]").unwrap();
        let model = TfIdfModel::build(&doc, &index, &pattern, Normalization::Sparse);
        let ctx = QueryContext::new(
            &doc,
            &index,
            &pattern,
            &model,
            ContextOptions {
                relax: RelaxMode::Relaxed,
                ..Default::default()
            },
        );
        f(&ctx);
    }

    fn m(seq: u64, score: f64, max_final: f64) -> PartialMatch {
        let mut pm =
            PartialMatch::new_root(seq, 2, whirlpool_xml::NodeId::from_index(1), score, 0.0);
        pm.max_final = Score::new(max_final);
        pm
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        with_ctx(|ctx| {
            let mut q = MatchQueue::new(QueuePolicy::Fifo, None);
            q.push(ctx, m(2, 9.0, 9.0));
            q.push(ctx, m(0, 1.0, 1.0));
            q.push(ctx, m(1, 5.0, 5.0));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|x| x.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2]);
        });
    }

    #[test]
    fn max_final_pops_highest_first() {
        with_ctx(|ctx| {
            let mut q = MatchQueue::new(QueuePolicy::MaxFinalScore, None);
            q.push(ctx, m(0, 0.0, 1.0));
            q.push(ctx, m(1, 0.0, 3.0));
            q.push(ctx, m(2, 0.0, 2.0));
            let finals: Vec<f64> = std::iter::from_fn(|| q.pop())
                .map(|x| x.max_final.value())
                .collect();
            assert_eq!(finals, vec![3.0, 2.0, 1.0]);
        });
    }

    #[test]
    fn current_score_ignores_max_final() {
        with_ctx(|ctx| {
            let mut q = MatchQueue::new(QueuePolicy::CurrentScore, None);
            q.push(ctx, m(0, 0.5, 9.0));
            q.push(ctx, m(1, 0.9, 1.0));
            assert_eq!(q.pop().unwrap().seq, 1);
        });
    }

    #[test]
    fn max_next_score_adds_server_bound() {
        with_ctx(|ctx| {
            let server = QNodeId(1);
            // Sparse normalization → name server max contribution = 1.0.
            let mut q = MatchQueue::new(QueuePolicy::MaxNextScore, Some(server));
            q.push(ctx, m(0, 0.2, 9.0));
            assert_eq!(q.peek_key(), Some(Score::new(1.2)));
        });
    }

    #[test]
    fn ties_break_by_seq_deterministically() {
        with_ctx(|ctx| {
            let mut q = MatchQueue::new(QueuePolicy::MaxFinalScore, None);
            q.push(ctx, m(5, 0.0, 1.0));
            q.push(ctx, m(3, 0.0, 1.0));
            q.push(ctx, m(4, 0.0, 1.0));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|x| x.seq).collect();
            assert_eq!(seqs, vec![3, 4, 5]);
        });
    }
}
