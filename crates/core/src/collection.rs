//! Collection-level (sharded) top-k evaluation.
//!
//! A [`Collection`] holds many documents — separate files, or subtree
//! shards split off one large document — and answers one top-k query
//! over all of them as if they were a single corpus:
//!
//! * **Corpus-level idf.** Scores come from one
//!   [`CorpusStats`]-derived weight table pooled over every shard, so
//!   an answer's score (and therefore its rank) does not depend on
//!   which shard holds it.
//! * **Global threshold sharing.** Shards are evaluated
//!   most-promising-first; each per-shard engine run is seeded with
//!   the current global k-th score as its pruning-threshold *floor*
//!   ([`EvalOptions::threshold_floor`]), so a late shard prunes
//!   against the best answers of every shard already done.
//! * **Shard pruning.** Before a shard is evaluated at all, its score
//!   *ceiling* — an upper bound derived from the per-shard
//!   [`ShardSynopsis`] — is compared against the global threshold. A
//!   shard whose ceiling cannot beat the current k-th answer is
//!   skipped without touching its postings. The ceiling never
//!   under-estimates (see [`Collection::shard_ceiling`]), so pruning
//!   never drops a true top-k answer.
//!
//! Both optimizations are individually switchable
//! ([`CollectionOptions`]); with both off the driver degrades to a
//! naive scan of every shard, which the benchmarks use as the
//! comparison baseline.
//!
//! # Disk-resident lazy collections
//!
//! [`Collection::open_dir`] builds a collection over a directory of
//! snapshot files *without attaching any of them*: each shard starts as
//! a path plus the synopses read by the cheap [`Snapshot::peek`]
//! (header and synopsis sections only — no payload mapping, no
//! whole-file checksum pass). Ceilings, visit order, and the corpus
//! score model all come from the peeked synopses, so a shard whose
//! ceiling cannot beat the global threshold is **pruned before it is
//! ever attached**. Shards the driver does visit are attached on first
//! access and detached again behind an LRU holding at most
//! [`Collection::set_max_resident`] lazy shards (`0` = unlimited), so
//! the resident set stays bounded no matter how large the corpus is.
//! A shard pinned by an in-progress evaluation is never evicted —
//! `max_resident` is a target, not a hard cap.

use crate::assist::AssistRegistry;
use crate::context::{ContextOptions, QueryContext, RelaxMode};
use crate::engine::{evaluate_with_context, Algorithm, EvalOptions};
use crate::error::Completeness;
use crate::metrics::MetricsSnapshot;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whirlpool_index::{DocView, PathAxis, PathSynopsis, ShardSynopsis, TagIndex, TagIndexView};
use whirlpool_pattern::{Axis, QNodeId, TreePattern, WILDCARD};
use whirlpool_score::{CorpusStats, Normalization, Score, TfIdfModel};
use whirlpool_store::{Snapshot, StoreError};
use whirlpool_xml::{parse_document, write_node, Document, NodeId, ParseError, WriteOptions};

/// A lazy shard: a snapshot file known only by its path and peeked
/// synopses until something actually evaluates it.
struct LazyShard {
    path: PathBuf,
    /// The attached snapshot, when resident. `Arc` so an in-progress
    /// evaluation pins the mapping across a concurrent eviction.
    resident: Mutex<Option<Arc<Snapshot>>>,
    /// Whether this shard entered the collection through a peek
    /// ([`Collection::attach_snapshot_file`]) rather than with its
    /// payload in hand ([`Collection::add_snapshot`]). Immutable after
    /// construction; decides the corpus-stats source (see
    /// [`Collection::corpus_stats`]) independently of residency.
    peeked: bool,
}

/// How a [`Shard`] holds its document: an owned arena built by the
/// parser, a snapshot attached (usually mmap'd) from disk, or a lazy
/// snapshot attached on first access and evictable between accesses.
/// Every consumer goes through the [`DocView`]/[`TagIndexView`]
/// accessors (via [`Collection::acquire`] for lazy shards), so the
/// backings are interchangeable at query time.
#[allow(clippy::large_enum_variant)] // one per document, never in bulk arrays
enum ShardBacking {
    Parsed { doc: Document, index: TagIndex },
    Snapshot(Box<Snapshot>),
    Lazy(LazyShard),
}

/// One member of a [`Collection`]: a document with its index and
/// synopsis, built at load time (parsed backing), attached in O(1)
/// from a prebuilt snapshot file, or peeked from one and attached only
/// when visited (lazy backing).
pub struct Shard {
    name: String,
    backing: ShardBacking,
    synopsis: ShardSynopsis,
    paths: Option<PathSynopsis>,
}

impl Shard {
    /// The shard's display name (file name, or `split-NNN` for subtree
    /// shards).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard's document, as a view over either eager backing.
    ///
    /// # Panics
    ///
    /// Panics on a lazy shard — the view's lifetime cannot outlive the
    /// residency slot. Go through [`Collection::acquire`] instead.
    pub fn doc(&self) -> DocView<'_> {
        match &self.backing {
            ShardBacking::Parsed { doc, .. } => doc.into(),
            ShardBacking::Snapshot(s) => s.doc_view(),
            ShardBacking::Lazy(_) => {
                panic!("lazy shard has no borrowable doc; use Collection::acquire")
            }
        }
    }

    /// The shard's tag/value postings, as a view over either eager
    /// backing.
    ///
    /// # Panics
    ///
    /// Panics on a lazy shard, like [`Shard::doc`].
    pub fn index(&self) -> TagIndexView<'_> {
        match &self.backing {
            ShardBacking::Parsed { index, .. } => index.view(),
            ShardBacking::Snapshot(s) => s.index_view(),
            ShardBacking::Lazy(_) => {
                panic!("lazy shard has no borrowable index; use Collection::acquire")
            }
        }
    }

    /// The owned document and index, when this shard was parsed rather
    /// than snapshot-attached. Reference/oracle paths that need Dewey
    /// paths go through this.
    pub fn as_parsed(&self) -> Option<(&Document, &TagIndex)> {
        match &self.backing {
            ShardBacking::Parsed { doc, index } => Some((doc, index)),
            _ => None,
        }
    }

    /// Is this shard backed by an attached snapshot?
    pub fn is_snapshot(&self) -> bool {
        matches!(self.backing, ShardBacking::Snapshot(_))
    }

    /// Is this shard lazily backed by a snapshot file on disk?
    pub fn is_lazy(&self) -> bool {
        matches!(self.backing, ShardBacking::Lazy(_))
    }

    /// Did this shard enter the collection through a peek — header and
    /// synopses only, payload never seen — rather than with its
    /// payload in hand? Fixed at insertion, so the corpus-stats source
    /// it selects ([`Collection::corpus_stats`]) cannot drift with
    /// residency.
    pub fn admitted_by_peek(&self) -> bool {
        matches!(&self.backing, ShardBacking::Lazy(l) if l.peeked)
    }

    /// Is this shard's data in memory right now? Eager backings are
    /// always resident; a lazy shard is resident between its first
    /// access and its eviction.
    pub fn is_resident(&self) -> bool {
        match &self.backing {
            ShardBacking::Lazy(l) => l.resident.lock().is_some(),
            _ => true,
        }
    }

    /// The shard's pruning synopsis.
    pub fn synopsis(&self) -> &ShardSynopsis {
        &self.synopsis
    }

    /// The shard's stored path synopsis, when one was peeked or carried
    /// by its snapshot (v3 files) or built at parse time. Drives the
    /// path-aware ceiling refinement in [`shard_ceiling_with_paths`].
    pub fn path_synopsis(&self) -> Option<&PathSynopsis> {
        self.paths.as_ref()
    }
}

/// A pinned view of one shard's data, returned by
/// [`Collection::acquire`]. Holding it keeps a lazy shard's snapshot
/// mapped (the eviction scan skips pinned shards); dropping it makes
/// the shard evictable again.
#[allow(clippy::large_enum_variant)] // one per in-flight shard evaluation
pub enum ShardAccess<'c> {
    /// An eager shard, borrowed straight from the collection.
    Borrowed {
        /// The shard's document view.
        doc: DocView<'c>,
        /// The shard's postings view.
        index: TagIndexView<'c>,
    },
    /// A lazy shard's attached snapshot, pinned by this handle.
    Resident(Arc<Snapshot>),
}

impl ShardAccess<'_> {
    /// The shard's document, as a view borrowed from this handle.
    pub fn doc(&self) -> DocView<'_> {
        match self {
            ShardAccess::Borrowed { doc, .. } => *doc,
            ShardAccess::Resident(s) => s.doc_view(),
        }
    }

    /// The shard's postings, as a view borrowed from this handle.
    pub fn index(&self) -> TagIndexView<'_> {
        match self {
            ShardAccess::Borrowed { index, .. } => *index,
            ShardAccess::Resident(s) => s.index_view(),
        }
    }
}

/// Residency bookkeeping for lazy shards: an MRU list (least recent
/// first) plus cumulative attach/eviction counters. Counters are
/// collection-lifetime, not per-run; the driver reports per-run deltas.
#[derive(Default)]
struct Residency {
    /// Target cap on resident lazy shards; `0` = unlimited.
    max_resident: AtomicUsize,
    /// Resident lazy shard indices, least recently used first.
    mru: Mutex<Vec<usize>>,
    attached: AtomicU64,
    evictions: AtomicU64,
}

/// A multi-document corpus queried as one unit.
#[derive(Default)]
pub struct Collection {
    shards: Vec<Shard>,
    residency: Residency,
}

impl Collection {
    /// An empty collection.
    pub fn new() -> Self {
        Collection::default()
    }

    /// Adds a parsed document as one shard, building its index,
    /// synopsis, and path synopsis.
    pub fn add_document(&mut self, name: impl Into<String>, doc: Document) {
        let index = TagIndex::build(&doc);
        let synopsis = ShardSynopsis::build(&doc);
        let paths = PathSynopsis::build(&doc);
        self.shards.push(Shard {
            name: name.into(),
            backing: ShardBacking::Parsed { doc, index },
            synopsis,
            paths: Some(paths),
        });
    }

    /// Adds an attached snapshot as one shard. No parse or index build
    /// happens: the snapshot's flat arrays serve queries directly and
    /// its synopses (derived or stored at attach) drive shard pruning.
    ///
    /// A snapshot that knows its source file goes in as a *lazy* shard
    /// with the attachment pre-resident, so the residency manager can
    /// evict it under [`Collection::set_max_resident`] pressure and
    /// re-attach it from disk when next visited. A snapshot without a
    /// source path (built in memory) stays eagerly resident forever.
    pub fn add_snapshot(&mut self, name: impl Into<String>, snapshot: Snapshot) {
        let synopsis = snapshot.synopsis().clone();
        let paths = snapshot.path_synopsis().cloned();
        let backing = match snapshot.source_path() {
            Some(p) => {
                let path = p.to_path_buf();
                let idx = self.shards.len();
                self.residency.mru.lock().push(idx);
                self.residency.attached.fetch_add(1, Ordering::Relaxed);
                ShardBacking::Lazy(LazyShard {
                    path,
                    resident: Mutex::new(Some(Arc::new(snapshot))),
                    peeked: false,
                })
            }
            None => ShardBacking::Snapshot(Box::new(snapshot)),
        };
        self.shards.push(Shard {
            name: name.into(),
            backing,
            synopsis,
            paths,
        });
    }

    /// Adds the snapshot file at `path` as one *lazy* shard, named by
    /// its file stem: only the header and synopsis sections are read
    /// ([`Snapshot::peek`]); the payload is mapped when (if) the shard
    /// is first visited by a query.
    pub fn attach_snapshot_file(&mut self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let peek = Snapshot::peek(path)?;
        self.shards.push(Shard {
            name,
            backing: ShardBacking::Lazy(LazyShard {
                path: path.to_path_buf(),
                resident: Mutex::new(None),
                peeked: true,
            }),
            synopsis: peek.synopsis,
            paths: peek.paths,
        });
        Ok(())
    }

    /// Opens every `.wps` snapshot in `dir` (sorted by file name) as a
    /// lazy shard. Nothing is attached: the per-shard cost is one peek
    /// — header plus synopsis sections — so opening a directory of
    /// thousands of shards costs milliseconds and near-zero memory.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "wps"))
            .collect();
        paths.sort();
        let mut collection = Collection::new();
        for p in paths {
            collection.attach_snapshot_file(&p)?;
        }
        Ok(collection)
    }

    /// Caps how many *lazy* shards stay attached at once (`0` =
    /// unlimited, the default). When an attach pushes the resident
    /// count over the cap, least-recently-used unpinned shards are
    /// detached until the count fits. Shards pinned by an in-progress
    /// [`ShardAccess`] are skipped, so the cap is a target under
    /// concurrency, not a hard ceiling.
    pub fn set_max_resident(&self, max: usize) {
        self.residency.max_resident.store(max, Ordering::Relaxed);
    }

    /// The current lazy-resident cap (`0` = unlimited).
    pub fn max_resident(&self) -> usize {
        self.residency.max_resident.load(Ordering::Relaxed)
    }

    /// How many lazy shards are attached right now.
    pub fn resident_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.is_lazy() && s.is_resident())
            .count()
    }

    /// Cumulative lazy-shard attaches over this collection's lifetime.
    pub fn attach_count(&self) -> u64 {
        self.residency.attached.load(Ordering::Relaxed)
    }

    /// Cumulative lazy-shard evictions over this collection's lifetime.
    pub fn eviction_count(&self) -> u64 {
        self.residency.evictions.load(Ordering::Relaxed)
    }

    /// Pins shard `idx` and returns a view handle over its data,
    /// attaching a lazy shard from disk if it is not resident. The
    /// handle keeps the shard safe from eviction until dropped.
    pub fn acquire(&self, idx: usize) -> Result<ShardAccess<'_>, StoreError> {
        let shard = &self.shards[idx];
        let lazy = match &shard.backing {
            ShardBacking::Parsed { doc, index } => {
                return Ok(ShardAccess::Borrowed {
                    doc: doc.into(),
                    index: index.view(),
                })
            }
            ShardBacking::Snapshot(s) => {
                return Ok(ShardAccess::Borrowed {
                    doc: s.doc_view(),
                    index: s.index_view(),
                })
            }
            ShardBacking::Lazy(l) => l,
        };
        let arc = {
            let mut slot = lazy.resident.lock();
            match &*slot {
                Some(a) => a.clone(),
                None => {
                    let a = Arc::new(Snapshot::attach(&lazy.path)?);
                    *slot = Some(a.clone());
                    self.residency.attached.fetch_add(1, Ordering::Relaxed);
                    a
                }
            }
            // The slot lock is released before the MRU lock below is
            // taken: the eviction scan holds the MRU lock and
            // *try*-locks slots, so the two locks are never both held
            // in the attach order.
        };
        self.touch(idx);
        Ok(ShardAccess::Resident(arc))
    }

    /// Moves `idx` to the MRU tail and evicts over-cap unpinned lazy
    /// shards, least recently used first.
    fn touch(&self, idx: usize) {
        let mut mru = self.residency.mru.lock();
        mru.retain(|&i| i != idx);
        mru.push(idx);
        let max = self.residency.max_resident.load(Ordering::Relaxed);
        if max == 0 {
            return;
        }
        let mut at = 0;
        while mru.len() > max && at < mru.len() {
            let victim = mru[at];
            let ShardBacking::Lazy(l) = &self.shards[victim].backing else {
                mru.remove(at);
                continue;
            };
            // try_lock: an attach in progress holds the slot lock, and
            // blocking here while holding the MRU lock would invert the
            // `acquire` lock order. A busy slot just stays resident.
            let Some(mut slot) = l.resident.try_lock() else {
                at += 1;
                continue;
            };
            match &*slot {
                // Strong count 1 = only the residency slot holds it:
                // no ShardAccess pins this shard, safe to unmap.
                Some(a) if Arc::strong_count(a) == 1 && victim != idx => {
                    *slot = None;
                    drop(slot);
                    mru.remove(at);
                    self.residency.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Stale entry (already detached elsewhere): drop it.
                None => {
                    drop(slot);
                    mru.remove(at);
                }
                // Pinned (or the shard just touched): keep, move on.
                _ => at += 1,
            }
        }
    }

    /// Parses `src` and adds it as one shard.
    pub fn add_source(&mut self, name: impl Into<String>, src: &str) -> Result<(), ParseError> {
        let doc = parse_document(src)?;
        self.add_document(name, doc);
        Ok(())
    }

    /// Splits one large document into (up to) `shards` subtree shards.
    ///
    /// The split point is the first element, walking down from the
    /// document element through single-child links, that has more than
    /// one child: its children are chunked contiguously, and each
    /// chunk is re-wrapped in the full chain of ancestor tags, so tag
    /// paths in the shards match the unsplit document. An XMark
    /// `<site><regions>…</regions></site>` document therefore splits
    /// at the region containers inside `<regions>`, not at `<site>`
    /// (which always has exactly one child and would yield one shard).
    /// Fewer shards come back when the split point has fewer children
    /// than requested. Attributes on the wrapper-chain elements are
    /// not carried over — patterns returning those elements themselves
    /// should query the unsplit document instead.
    pub fn split_document(doc: &Document, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut collection = Collection::new();
        let root = doc.document_root();
        let Some(top) = doc.children(root).next() else {
            return collection;
        };
        // Descend through single-child links to the real fanout point,
        // recording the wrapper tags passed on the way.
        let mut chain = vec![doc.tag_str(top).to_string()];
        let mut split_at = top;
        loop {
            let mut kids = doc.children(split_at);
            match (kids.next(), kids.next()) {
                (Some(only), None) => {
                    chain.push(doc.tag_str(only).to_string());
                    split_at = only;
                }
                _ => break,
            }
        }
        let children: Vec<NodeId> = doc.children(split_at).collect();
        if children.is_empty() {
            // A childless chain end cannot be split; round-trip the
            // whole document into a single shard.
            let src = whirlpool_xml::write_document(doc, &WriteOptions::default());
            let shard_doc = parse_document(&src).expect("round-tripped document must re-parse");
            collection.add_document("split-000", shard_doc);
            return collection;
        }
        let opts = WriteOptions::default();
        let per = children.len().div_ceil(shards);
        for (i, chunk) in children.chunks(per).enumerate() {
            let mut src = String::new();
            for tag in &chain {
                src.push_str(&format!("<{tag}>"));
            }
            for &child in chunk {
                src.push_str(&write_node(doc, child, &opts));
            }
            for tag in chain.iter().rev() {
                src.push_str(&format!("</{tag}>"));
            }
            let shard_doc = parse_document(&src).expect("serialized subtree chunk must re-parse");
            collection.add_document(format!("split-{i:03}"), shard_doc);
        }
        collection
    }

    /// The shards, in insertion order. [`CollectionAnswer::shard`]
    /// indexes into this slice.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Is the collection empty?
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Pools document-frequency counts over every shard (see
    /// [`CorpusStats`]). Callers derive the corpus score model from the
    /// result; [`evaluate_collection`] does this internally.
    ///
    /// When *any* shard was [admitted by peek](Shard::admitted_by_peek)
    /// — its payload never read — **every** shard contributes
    /// synopsis-derived estimates ([`CorpusStats::add_shard_synopsis`])
    /// instead of exact postings walks: attaching each shard just to
    /// count document frequencies would defeat lazy opening, and mixing
    /// exact with estimated counts would skew the model toward whichever
    /// shards happened to arrive with payloads. Collections whose every
    /// shard was inserted *with* its payload ([`Self::add_document`],
    /// [`Self::add_snapshot`]) keep exact counts — re-acquiring an
    /// evicted [`Self::add_snapshot`] shard if needed — so their scores
    /// match the equivalent all-parsed collection exactly. The choice is
    /// keyed on how shards were inserted, which never changes, not on
    /// what is resident, which does; the same collection always scores
    /// under the same model.
    pub fn corpus_stats(&self, pattern: &TreePattern) -> CorpusStats {
        let answer_tag = &pattern.node(pattern.root()).tag;
        let mut stats = CorpusStats::new(pattern);
        if self.shards.iter().any(Shard::admitted_by_peek) {
            for shard in &self.shards {
                stats.add_shard_synopsis(&shard.synopsis, answer_tag);
            }
        } else {
            for (idx, shard) in self.shards.iter().enumerate() {
                match self.acquire(idx) {
                    Ok(access) => {
                        stats.add_shard_view(access.doc(), access.index(), answer_tag);
                    }
                    // Unreachable short of the shard's backing file
                    // vanishing between eviction and this re-acquire;
                    // the synopsis estimate keeps stats total rather
                    // than failing the whole corpus for one shard.
                    Err(_) => stats.add_shard_synopsis(&shard.synopsis, answer_tag),
                }
            }
        }
        stats
    }

    /// The score ceiling of shard `shard_idx` for `pattern` under
    /// `model` — see [`shard_ceiling_with_paths`], which this delegates
    /// to with the shard's own synopses.
    pub fn shard_ceiling(
        &self,
        shard_idx: usize,
        pattern: &TreePattern,
        model: &TfIdfModel,
        relax: RelaxMode,
    ) -> Option<Score> {
        let shard = &self.shards[shard_idx];
        shard_ceiling_with_paths(&shard.synopsis, shard.paths.as_ref(), pattern, model, relax)
    }
}

/// The score *ceiling* of a shard summarized by `synopsis`, for
/// `pattern` under `model`: an upper bound on what any answer rooted in
/// the shard can score. `None` means the shard provably holds no answer
/// at all (its ceiling is −∞, so it can always be skipped).
///
/// The bound mirrors the engines' initial `max_final`
/// (root maximum plus the sum of per-server maxima) with one
/// synopsis-driven improvement: a server whose tag has **zero**
/// elements in the shard can only ever bind the outer-join null,
/// contributing zero, so its maximum drops out of the sum.
/// Wildcard servers always count. This never under-estimates —
/// every term kept is a true per-server upper bound and every term
/// dropped is exactly zero in this shard — which is the invariant
/// shard pruning relies on.
///
/// In exact mode a server with an absent tag cannot bind anything
/// (inner-join semantics), so *any* absent server tag — not just
/// the answer tag — empties the shard.
///
/// This is a free function (rather than only a [`Collection`] method)
/// so callers that hold their shards in their own structures — the
/// serve daemon's document registry, for instance — can run the same
/// pruning rule without rebuilding a `Collection`. It delegates to
/// [`shard_ceiling_with_paths`] with no path synopsis — tag counts
/// only.
pub fn shard_ceiling(
    synopsis: &ShardSynopsis,
    pattern: &TreePattern,
    model: &TfIdfModel,
    relax: RelaxMode,
) -> Option<Score> {
    shard_ceiling_with_paths(synopsis, None, pattern, model, relax)
}

/// Maps a pattern axis onto the (dependency-free) path-synopsis axis.
fn path_axis(axis: Axis) -> PathAxis {
    match axis {
        Axis::Child => PathAxis::Child,
        Axis::Descendant => PathAxis::Descendant,
    }
}

/// The literal root-to-`to` chain of `pattern` as path-synopsis steps:
/// every pattern node from the root down to `to`, each with its own
/// axis (the root carries the axis from the synthetic document root).
fn literal_steps(pattern: &TreePattern, to: QNodeId) -> Vec<(PathAxis, &str)> {
    let mut rev = Vec::new();
    let mut cur = to;
    loop {
        let node = pattern.node(cur);
        rev.push((path_axis(node.axis), node.tag.as_str()));
        match node.parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    rev.reverse();
    rev
}

/// [`shard_ceiling`] refined by a stored path synopsis, when one is
/// present and definitive (untruncated).
///
/// Tag counts alone cannot tell *arrangement*: a shard can hold every
/// tag the query names and still hold no answer because the tags never
/// nest the way the pattern requires. The path synopsis closes that
/// gap, and the refinement stays an upper bound — the invariant shard
/// pruning relies on — because each test below only asserts a server's
/// contribution is *exactly zero*:
///
/// * **Exact mode** requires every pattern edge to be realized
///   literally, so an exact match embeds each root-to-server chain as
///   a document path honoring the literal axes. If the synopsis (a
///   complete digest of every root-to-element path) realizes no such
///   chain for the answer root or for any server, the shard holds no
///   exact answer at all: ceiling `None`.
/// * **Relaxed mode** can generalize every edge to descendant and
///   promote subtrees, but a server binding always stays inside its
///   answer root's subtree. The weakest realizable requirement is
///   therefore *"some server-tag element lies below some answer-tag
///   element"* — the two-step descendant chain tested below. When even
///   that fails, every candidate answer binds the server to the
///   outer-join null, contributing exactly zero, so the server's
///   maximum drops out of the sum.
///
/// A truncated synopsis digests only *some* paths, so "no stored path
/// matches" stops being a proof of absence; in that case (and when
/// `paths` is `None` — v2 snapshots, opt-out builds) the tag-count
/// bound is used unrefined.
pub fn shard_ceiling_with_paths(
    synopsis: &ShardSynopsis,
    paths: Option<&PathSynopsis>,
    pattern: &TreePattern,
    model: &TfIdfModel,
    relax: RelaxMode,
) -> Option<Score> {
    use whirlpool_score::ScoreModel;
    let answer_tag = pattern.node(pattern.root()).tag.as_str();
    if answer_tag != WILDCARD && !synopsis.has_tag(answer_tag) {
        return None;
    }
    let paths = paths.filter(|p| p.is_definitive());
    if let Some(ps) = paths {
        if relax == RelaxMode::Exact
            && !ps.matches_query_path(&literal_steps(pattern, pattern.root()))
        {
            return None;
        }
    }
    let mut total = model.max_root_contribution();
    for s in pattern.server_ids() {
        let tag = pattern.node(s).tag.as_str();
        if tag != WILDCARD && !synopsis.has_tag(tag) {
            if relax == RelaxMode::Exact {
                return None;
            }
            continue;
        }
        if let Some(ps) = paths {
            match relax {
                RelaxMode::Exact => {
                    if !ps.matches_query_path(&literal_steps(pattern, s)) {
                        return None;
                    }
                }
                RelaxMode::Relaxed => {
                    // Wildcards (either end) make the descendant chain
                    // vacuous — fall back to tag presence, which held.
                    if answer_tag != WILDCARD
                        && tag != WILDCARD
                        && !ps.matches_query_path(&[
                            (PathAxis::Descendant, answer_tag),
                            (PathAxis::Descendant, tag),
                        ])
                    {
                        continue;
                    }
                }
            }
        }
        total += model.max_contribution(s);
    }
    Some(Score::new(total))
}

/// Collection-driver knobs, on top of the per-shard [`EvalOptions`].
#[derive(Debug, Clone)]
pub struct CollectionOptions {
    /// Skip shards whose ceiling cannot beat the global threshold.
    pub shard_pruning: bool,
    /// Seed each shard run's pruning threshold with the current global
    /// k-th score.
    pub share_threshold: bool,
    /// Shard-level worker threads. Workers claim shards from a shared
    /// cursor (most-promising-first); per-shard engine runs are forced
    /// to a single thread when this exceeds one, so the two levels of
    /// parallelism do not oversubscribe.
    pub threads: usize,
}

impl Default for CollectionOptions {
    /// Both optimizations on, single-threaded.
    fn default() -> Self {
        CollectionOptions {
            shard_pruning: true,
            share_threshold: true,
            threads: 1,
        }
    }
}

impl CollectionOptions {
    /// The naive baseline: every shard visited, no threshold sharing.
    pub fn scan_all() -> Self {
        CollectionOptions {
            shard_pruning: false,
            share_threshold: false,
            threads: 1,
        }
    }

    /// Sets the shard-level worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// One answer of a collection query: which shard, which node, what
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionAnswer {
    /// Index into [`Collection::shards`].
    pub shard: usize,
    /// The answer node, in its shard's id space.
    pub root: NodeId,
    /// The corpus-model score.
    pub score: Score,
}

/// Shard-level accounting of one collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionMetrics {
    /// Shards in the collection.
    pub shards_total: usize,
    /// Shards actually evaluated.
    pub shards_visited: usize,
    /// Shards skipped because their ceiling could not beat the global
    /// threshold (or they provably held no answer).
    pub shards_pruned: usize,
    /// The subset of `shards_pruned` that were lazy and not resident
    /// when pruned: shards whose payload was **never read from disk** —
    /// the whole point of attach-on-visit.
    pub shards_pruned_before_attach: usize,
    /// Shards skipped because the deadline expired before they were
    /// claimed.
    pub shards_skipped_budget: usize,
    /// Lazy-shard attaches performed during this run.
    pub shards_attached: u64,
    /// Lazy-shard evictions performed during this run.
    pub shard_evictions: u64,
    /// Times an idle collection worker entered another shard's
    /// in-progress engine run as an extra stealing worker.
    pub assists: u64,
}

/// The outcome of one collection query.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    /// Top-k answers across all shards, best first.
    pub answers: Vec<CollectionAnswer>,
    /// Exact, or an anytime prefix (deadline expiry inside or between
    /// shards). Shard pruning alone never truncates a result.
    pub completeness: Completeness,
    /// Shard-level accounting.
    pub collection_metrics: CollectionMetrics,
    /// Engine counters summed over every visited shard.
    pub metrics: MetricsSnapshot,
    /// Wall-clock time of the whole collection run.
    pub elapsed: Duration,
}

/// The cross-shard top-k: best-per-(shard, root) scoreboard plus a
/// lock-free threshold snapshot, mirroring
/// [`SharedTopK`](crate::SharedTopK) but keyed by shard so node ids
/// from different documents cannot collide.
struct GlobalTopK {
    k: usize,
    /// (score, shard, root), ascending.
    ordered: Mutex<BTreeSet<(Score, usize, NodeId)>>,
    /// `f64::to_bits` of the last published threshold (monotone).
    threshold_bits: AtomicU64,
}

impl GlobalTopK {
    fn new(k: usize) -> Self {
        GlobalTopK {
            k,
            ordered: Mutex::new(BTreeSet::new()),
            threshold_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// The last published global k-th score (zero until k answers
    /// exist). Monotone non-decreasing, so stale reads are
    /// conservative — exactly like the engine-level snapshot.
    fn threshold(&self) -> Score {
        Score::new(f64::from_bits(self.threshold_bits.load(Ordering::Relaxed)))
    }

    /// Merges one shard's ranked answers, then publishes the new
    /// threshold.
    fn merge(&self, shard: usize, answers: &[crate::topk::RankedAnswer]) {
        let mut set = self.ordered.lock();
        for a in answers {
            set.insert((a.score, shard, a.root));
            if set.len() > self.k {
                let weakest = *set.iter().next().expect("non-empty");
                set.remove(&weakest);
            }
        }
        if set.len() == self.k {
            if let Some(&(s, _, _)) = set.iter().next() {
                self.threshold_bits
                    .store(s.value().to_bits(), Ordering::Release);
            }
        }
    }

    fn into_ranked(self) -> Vec<CollectionAnswer> {
        self.ordered
            .into_inner()
            .into_iter()
            .rev()
            .map(|(score, shard, root)| CollectionAnswer { shard, root, score })
            .collect()
    }
}

/// Evaluates `pattern` over every shard of `collection` and returns the
/// corpus-wide top-k.
///
/// Scores come from the corpus-level model
/// ([`Collection::corpus_stats`]) built with `normalization`. Shards
/// are visited ceiling-descending; `options` configures the per-shard
/// engine runs (its `k`, `relax`, deadline, etc. — `threads` is
/// overridden per [`CollectionOptions::threads`], and
/// `threshold_floor` is owned by the driver). A deadline in `options`
/// bounds the *whole* collection run: each shard gets the remaining
/// time, and shards the deadline overruns are accounted into the
/// truncation certificate by their ceilings.
pub fn evaluate_collection(
    collection: &Collection,
    pattern: &TreePattern,
    algorithm: &Algorithm,
    options: &EvalOptions,
    normalization: Normalization,
    copts: &CollectionOptions,
) -> CollectionResult {
    let start = Instant::now();
    let model = collection.corpus_stats(pattern).model(normalization);

    // Ceiling-descending visit order: rich shards first, so the global
    // threshold rises as fast as possible. `None` ceilings (provably
    // answer-free shards) sort last.
    let mut order: Vec<(usize, Option<Score>)> = (0..collection.len())
        .map(|i| {
            (
                i,
                collection.shard_ceiling(i, pattern, &model, options.relax),
            )
        })
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let global = GlobalTopK::new(options.k);
    let cursor = AtomicUsize::new(0);
    let pruned = AtomicUsize::new(0);
    let pruned_cold = AtomicUsize::new(0);
    let visited = AtomicUsize::new(0);
    let budget_skipped = AtomicUsize::new(0);
    let truncated = Mutex::new(TruncationFold::default());
    let metrics = Mutex::new(MetricsSnapshot::default());
    let attached_before = collection.attach_count();
    let evictions_before = collection.eviction_count();

    let workers = copts.threads.max(1).min(collection.len().max(1));
    // Cross-shard work stealing: with multiple collection workers and
    // a Whirlpool-M engine, each per-shard run (forced single-threaded
    // below) publishes an assist door, and workers that run out of
    // shards walk through open doors instead of idling at the tail.
    let registry = (workers > 1 && matches!(algorithm, Algorithm::WhirlpoolM { .. }))
        .then(AssistRegistry::new);
    let active_evals = AtomicUsize::new(0);
    let assists = AtomicU64::new(0);

    let worker = |_w: usize| {
        loop {
            let at = cursor.fetch_add(1, Ordering::Relaxed);
            if at >= order.len() {
                break;
            }
            let (shard_idx, ceiling) = order[at];

            // Deadline first: an expired collection budget skips the
            // shard and certifies the skip with the shard's ceiling.
            let remaining = options.deadline.map(|d| d.saturating_sub(start.elapsed()));
            if remaining == Some(Duration::ZERO) {
                budget_skipped.fetch_add(1, Ordering::Relaxed);
                let bound = ceiling.map_or(0.0, |c| c.value());
                truncated.lock().expired(1, bound);
                continue;
            }

            if copts.shard_pruning {
                // Strict `<`, matching the engines: a shard that can
                // only tie the k-th answer may still contribute a
                // valid tie.
                let skip = match ceiling {
                    None => true,
                    Some(c) => c < global.threshold(),
                };
                if skip {
                    pruned.fetch_add(1, Ordering::Relaxed);
                    let shard = &collection.shards()[shard_idx];
                    if shard.is_lazy() && !shard.is_resident() {
                        pruned_cold.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            }

            let access = match collection.acquire(shard_idx) {
                Ok(a) => a,
                // An attach failure (file vanished, corrupted on disk)
                // is accounted like a budget skip: the certificate's
                // bound covers whatever the shard could have held.
                Err(_) => {
                    budget_skipped.fetch_add(1, Ordering::Relaxed);
                    let bound = ceiling.map_or(0.0, |c| c.value());
                    truncated.lock().expired(1, bound);
                    continue;
                }
            };
            let mut shard_opts = options.clone();
            shard_opts.deadline = remaining;
            shard_opts.trace = false;
            if workers > 1 {
                shard_opts.threads = 1;
            }
            shard_opts.assist = registry.clone();
            if copts.share_threshold {
                shard_opts.threshold_floor = global.threshold().value();
            }
            let ctx = QueryContext::new_view(
                access.doc(),
                access.index(),
                pattern,
                &model,
                ContextOptions {
                    relax: options.relax,
                    selectivity_sample: options.selectivity_sample,
                    op_cost: options.op_cost,
                    pooling: options.pooling,
                    op_batching: options.op_batching,
                },
            );
            active_evals.fetch_add(1, Ordering::SeqCst);
            let result = evaluate_with_context(&ctx, algorithm, &shard_opts);
            active_evals.fetch_sub(1, Ordering::SeqCst);
            visited.fetch_add(1, Ordering::Relaxed);
            global.merge(shard_idx, &result.answers);
            metrics.lock().absorb(&result.metrics);
            if let Completeness::Truncated {
                pending_matches,
                score_bound,
            } = result.completeness
            {
                truncated.lock().expired(pending_matches, score_bound);
            }
        }
        // Idle tail: no shards left to claim, but runs may still be in
        // flight — steal work from them through their assist doors
        // until the last one finishes.
        if let Some(registry) = &registry {
            loop {
                if registry.assist_any() {
                    assists.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if active_evals.load(Ordering::SeqCst) == 0 {
                    break;
                }
                registry.wait_for_work(Duration::from_micros(500));
            }
        }
    };

    if workers <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
        });
    }

    let answers = global.into_ranked();
    let completeness = truncated.into_inner().finish(&answers);
    CollectionResult {
        answers,
        completeness,
        collection_metrics: CollectionMetrics {
            shards_total: collection.len(),
            shards_visited: visited.into_inner(),
            shards_pruned: pruned.into_inner(),
            shards_pruned_before_attach: pruned_cold.into_inner(),
            shards_skipped_budget: budget_skipped.into_inner(),
            shards_attached: collection.attach_count() - attached_before,
            shard_evictions: collection.eviction_count() - evictions_before,
            assists: assists.into_inner(),
        },
        metrics: metrics.into_inner(),
        elapsed: start.elapsed(),
    }
}

/// Folds per-shard truncation certificates (and budget-skipped shard
/// ceilings) into one collection-level [`Completeness`].
#[derive(Default)]
struct TruncationFold {
    truncated: bool,
    pending: u64,
    bound: f64,
}

impl TruncationFold {
    fn expired(&mut self, pending: u64, bound: f64) {
        self.truncated = true;
        self.pending += pending;
        self.bound = self.bound.max(bound);
    }

    fn finish(self, answers: &[CollectionAnswer]) -> Completeness {
        if !self.truncated {
            return Completeness::Exact;
        }
        let mut bound = self.bound;
        if let Some(best) = answers.first() {
            bound = bound.max(best.score.value());
        }
        Completeness::Truncated {
            pending_matches: self.pending,
            score_bound: bound,
        }
    }
}

/// Are two collection answer lists equivalent as top-k results? The
/// cross-shard analog of
/// [`answers_equivalent`](crate::answers_equivalent): score vectors
/// must agree pairwise within `epsilon`, interior tie groups must hold
/// the same `(shard, root)` sets, and a tie group cut off by the k
/// boundary may resolve to different members.
pub fn collection_answers_equivalent(
    a: &[CollectionAnswer],
    b: &[CollectionAnswer],
    epsilon: f64,
) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (x, y) in a.iter().zip(b) {
        if (x.score.value() - y.score.value()).abs() > epsilon {
            return false;
        }
    }
    let mut i = 0;
    while i < a.len() {
        let mut j = i + 1;
        while j < a.len() && (a[j].score.value() - a[i].score.value()).abs() <= epsilon {
            j += 1;
        }
        if j < a.len() {
            let mut ra: Vec<(usize, NodeId)> = a[i..j].iter().map(|r| (r.shard, r.root)).collect();
            let mut rb: Vec<(usize, NodeId)> = b[i..j].iter().map(|r| (r.shard, r.root)).collect();
            ra.sort_unstable();
            rb.sort_unstable();
            if ra != rb {
                return false;
            }
        }
        i = j;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const RICH: &str = "<shelf>\
        <book><title>dune</title><isbn>1</isbn><price>9</price></book>\
        <book><title>atlas</title><isbn>2</isbn><price>7</price></book>\
        <book><title>hyperion</title><isbn>3</isbn></book>\
        </shelf>";
    const MID: &str = "<shelf>\
        <book><title>solaris</title><isbn>4</isbn></book>\
        <book><title>ubik</title></book>\
        </shelf>";
    /// Books without isbn or price: ceiling below any full match.
    const POOR: &str = "<shelf>\
        <book><title>void</title></book>\
        <book><title>blank</title></book>\
        <book><title>empty</title></book>\
        </shelf>";
    /// No books at all: provably answer-free.
    const EMPTY: &str = "<shelf><cd><title>x</title></cd></shelf>";

    const QUERY: &str = "//book[./title and ./isbn and ./price]";

    fn sample() -> Collection {
        let mut c = Collection::new();
        c.add_source("rich", RICH).unwrap();
        c.add_source("mid", MID).unwrap();
        c.add_source("poor", POOR).unwrap();
        c.add_source("empty", EMPTY).unwrap();
        c
    }

    fn q() -> TreePattern {
        whirlpool_pattern::parse_pattern(QUERY).unwrap()
    }

    #[test]
    fn ceiling_drops_absent_servers_and_never_underestimates() {
        let c = sample();
        let pattern = q();
        let model = c.corpus_stats(&pattern).model(Normalization::None);
        let full = c
            .shard_ceiling(0, &pattern, &model, RelaxMode::Relaxed)
            .unwrap();
        let poor = c
            .shard_ceiling(2, &pattern, &model, RelaxMode::Relaxed)
            .unwrap();
        assert!(poor < full, "missing isbn+price must lower the ceiling");
        // No book node anywhere: provably answer-free.
        assert_eq!(
            c.shard_ceiling(3, &pattern, &model, RelaxMode::Relaxed),
            None
        );
        // Exact mode: a missing server tag empties the shard outright.
        assert_eq!(c.shard_ceiling(2, &pattern, &model, RelaxMode::Exact), None);
        // The ceiling dominates every actually-achieved score.
        let result = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(10),
            Normalization::None,
            &CollectionOptions::scan_all(),
        );
        for a in &result.answers {
            let ceil = c
                .shard_ceiling(a.shard, &pattern, &model, RelaxMode::Relaxed)
                .expect("answer-bearing shard has a ceiling");
            assert!(a.score <= ceil, "{:?} above ceiling {ceil:?}", a);
        }
    }

    #[test]
    fn pruned_run_matches_scan_all() {
        let c = sample();
        let pattern = q();
        for algorithm in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let naive = evaluate_collection(
                &c,
                &pattern,
                &algorithm,
                &EvalOptions::top_k(3),
                Normalization::Sparse,
                &CollectionOptions::scan_all(),
            );
            let pruned = evaluate_collection(
                &c,
                &pattern,
                &algorithm,
                &EvalOptions::top_k(3),
                Normalization::Sparse,
                &CollectionOptions::default(),
            );
            assert!(
                collection_answers_equivalent(&naive.answers, &pruned.answers, 1e-9),
                "{algorithm:?}: {:?} vs {:?}",
                naive.answers,
                pruned.answers,
            );
            assert_eq!(naive.collection_metrics.shards_visited, 4);
            assert_eq!(naive.collection_metrics.shards_pruned, 0);
            // The answer-free shard is always pruned; with k=3 filled
            // by rich answers the poor shard should fall too.
            assert!(pruned.collection_metrics.shards_pruned >= 1);
            assert!(matches!(naive.completeness, Completeness::Exact));
            assert!(matches!(pruned.completeness, Completeness::Exact));
        }
    }

    #[test]
    fn multi_worker_matches_single_worker() {
        let c = sample();
        let pattern = q();
        let single = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(4),
            Normalization::Sparse,
            &CollectionOptions::default(),
        );
        for threads in [2, 4, 8] {
            let multi = evaluate_collection(
                &c,
                &pattern,
                &Algorithm::WhirlpoolS,
                &EvalOptions::top_k(4),
                Normalization::Sparse,
                &CollectionOptions::default().with_threads(threads),
            );
            assert!(
                collection_answers_equivalent(&single.answers, &multi.answers, 1e-9),
                "threads={threads}: {:?} vs {:?}",
                single.answers,
                multi.answers,
            );
        }
    }

    #[test]
    fn split_document_covers_the_original() {
        let doc = parse_document(RICH).unwrap();
        let c = Collection::split_document(&doc, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.shards()
                .iter()
                .map(|s| s.synopsis().tag_count("book"))
                .sum::<u64>(),
            3
        );
        let pattern = q();
        let split_run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::None,
            &CollectionOptions::default(),
        );
        // The unsplit document under its own (per-document == corpus,
        // single doc) model gives the same score vector.
        let mut whole = Collection::new();
        whole.add_document("whole", doc);
        let whole_run = evaluate_collection(
            &whole,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::None,
            &CollectionOptions::scan_all(),
        );
        let a: Vec<f64> = split_run.answers.iter().map(|r| r.score.value()).collect();
        let b: Vec<f64> = whole_run.answers.iter().map(|r| r.score.value()).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn oversplit_clamps_to_child_count() {
        let doc = parse_document(MID).unwrap();
        let c = Collection::split_document(&doc, 64);
        assert_eq!(c.len(), 2, "one shard per child, no empties");
    }

    #[test]
    fn split_descends_through_single_child_wrappers() {
        // XMark shape: the document element has exactly one child, and
        // the real fanout sits a level below. The split must happen at
        // the fanout point, with every shard re-wrapped in the full
        // <site><regions> chain so tag paths are unchanged.
        let doc = parse_document(
            "<site><regions>\
             <namerica><item><name>a</name></item></namerica>\
             <europe><item><name>b</name></item></europe>\
             <asia><item><name>c</name></item></asia>\
             </regions></site>",
        )
        .unwrap();
        let c = Collection::split_document(&doc, 3);
        assert_eq!(c.len(), 3, "split at the fanout level, not at <site>");
        for shard in c.shards() {
            assert_eq!(shard.synopsis().tag_count("site"), 1);
            assert_eq!(shard.synopsis().tag_count("regions"), 1);
            assert_eq!(shard.synopsis().tag_count("item"), 1);
        }
        let pattern = whirlpool_pattern::parse_pattern("//item[./name]").unwrap();
        let run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(10),
            Normalization::None,
            &CollectionOptions::default(),
        );
        assert_eq!(run.answers.len(), 3, "all items survive the split");
    }

    #[test]
    fn zero_deadline_truncates_and_certifies() {
        let c = sample();
        let pattern = q();
        let mut options = EvalOptions::top_k(3);
        options.deadline = Some(Duration::ZERO);
        let result = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &options,
            Normalization::Sparse,
            &CollectionOptions::scan_all(),
        );
        assert!(result.answers.is_empty());
        assert_eq!(result.collection_metrics.shards_visited, 0);
        assert_eq!(result.collection_metrics.shards_skipped_budget, 4);
        match result.completeness {
            Completeness::Truncated {
                pending_matches,
                score_bound,
            } => {
                assert_eq!(pending_matches, 4);
                assert!(score_bound > 0.0, "skipped ceilings certify the bound");
            }
            c => panic!("expected truncation, got {c:?}"),
        }
    }

    /// All of RICH's tags, none of its arrangement: isbn and price
    /// live under <archive>, never under a <book>. Tag-count ceilings
    /// cannot tell this shard from RICH; path ceilings can.
    const MISMATCH: &str = "<shelf>\
        <book><title>husk</title></book>\
        <archive><isbn>8</isbn><price>5</price></archive>\
        </shelf>";

    /// Writes each source as a v3 snapshot `<name>.wps` under a fresh
    /// temp dir.
    fn snapshot_dir(tag: &str, sources: &[(&str, &str)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wp-lazy-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (name, src) in sources {
            let doc = parse_document(src).unwrap();
            let index = TagIndex::build(&doc);
            whirlpool_store::save_snapshot(&doc, &index, dir.join(format!("{name}.wps"))).unwrap();
        }
        dir
    }

    #[test]
    fn path_ceiling_prunes_arrangement_mismatch() {
        let mut c = Collection::new();
        c.add_source("rich", RICH).unwrap();
        c.add_source("mismatch", MISMATCH).unwrap();
        let pattern = q();
        let model = c.corpus_stats(&pattern).model(Normalization::None);
        // Tag counts alone see every query tag in both shards: without
        // paths the two ceilings are upper-bounded the same way.
        let tag_only = shard_ceiling(
            c.shards()[1].synopsis(),
            &pattern,
            &model,
            RelaxMode::Relaxed,
        )
        .unwrap();
        let with_paths = c
            .shard_ceiling(1, &pattern, &model, RelaxMode::Relaxed)
            .unwrap();
        assert!(
            with_paths < tag_only,
            "isbn/price outside <book> must drop out of the path-aware bound"
        );
        // Exact mode: no book ever has an isbn child — provably empty.
        assert_eq!(c.shard_ceiling(1, &pattern, &model, RelaxMode::Exact), None);
        // The rich shard's bound is unchanged by the refinement.
        assert_eq!(
            c.shard_ceiling(0, &pattern, &model, RelaxMode::Relaxed)
                .unwrap(),
            shard_ceiling(
                c.shards()[0].synopsis(),
                &pattern,
                &model,
                RelaxMode::Relaxed
            )
            .unwrap()
        );
        // And it still dominates every achieved score.
        let run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(10),
            Normalization::None,
            &CollectionOptions::scan_all(),
        );
        for a in &run.answers {
            let ceil = c
                .shard_ceiling(a.shard, &pattern, &model, RelaxMode::Relaxed)
                .expect("answer-bearing shard has a ceiling");
            assert!(a.score <= ceil, "{a:?} above ceiling {ceil:?}");
        }
    }

    #[test]
    fn lazy_open_dir_prunes_before_attach_and_matches_eager() {
        let dir = snapshot_dir(
            "prune",
            &[
                ("a-rich", RICH),
                ("b-mid", MID),
                ("c-mismatch0", MISMATCH),
                ("d-mismatch1", MISMATCH),
                ("e-mismatch2", MISMATCH),
            ],
        );
        let c = Collection::open_dir(&dir).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.resident_count(), 0, "open_dir attaches nothing");
        assert!(c.shards().iter().all(Shard::is_lazy));
        assert!(c.shards()[0].path_synopsis().is_some(), "v3 carries paths");

        let pattern = q();
        let pruned = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(2),
            Normalization::Sparse,
            &CollectionOptions::default(),
        );
        let m = &pruned.collection_metrics;
        assert!(
            m.shards_pruned_before_attach >= 3,
            "mismatch shards must fall to path ceilings without touching disk: {m:?}"
        );
        assert_eq!(m.shards_attached as usize, m.shards_visited);

        // The same collection scanned exhaustively (same model — the
        // corpus stats are synopsis-based either way) agrees.
        let eager = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(2),
            Normalization::Sparse,
            &CollectionOptions::scan_all(),
        );
        assert_eq!(eager.collection_metrics.shards_visited, 5);
        assert!(
            collection_answers_equivalent(&pruned.answers, &eager.answers, 1e-9),
            "{:?} vs {:?}",
            pruned.answers,
            eager.answers
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_resident_caps_attachments_and_evicts_lru() {
        let dir = snapshot_dir(
            "evict",
            &[("s0", RICH), ("s1", MID), ("s2", RICH), ("s3", MID)],
        );
        let c = Collection::open_dir(&dir).unwrap();
        c.set_max_resident(1);
        let pattern = q();
        let run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::Sparse,
            &CollectionOptions::scan_all(),
        );
        assert_eq!(run.collection_metrics.shards_visited, 4);
        assert_eq!(run.collection_metrics.shards_attached, 4);
        assert!(
            run.collection_metrics.shard_evictions >= 3,
            "visiting 4 shards under max_resident=1 must evict: {:?}",
            run.collection_metrics
        );
        assert!(c.resident_count() <= 1);

        // Re-running re-attaches evicted shards and still answers.
        let again = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::Sparse,
            &CollectionOptions::scan_all(),
        );
        assert!(collection_answers_equivalent(
            &run.answers,
            &again.answers,
            1e-9
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lazy_multi_worker_with_assists_matches_single() {
        let dir = snapshot_dir(
            "assist",
            &[
                ("s0", RICH),
                ("s1", MID),
                ("s2", RICH),
                ("s3", MID),
                ("s4", POOR),
                ("s5", MISMATCH),
            ],
        );
        let c = Collection::open_dir(&dir).unwrap();
        let pattern = q();
        let single = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolM { processors: None },
            &EvalOptions::top_k(4),
            Normalization::Sparse,
            &CollectionOptions::default(),
        );
        for threads in [2, 4] {
            for max_resident in [1, 4, 0] {
                c.set_max_resident(max_resident);
                let multi = evaluate_collection(
                    &c,
                    &pattern,
                    &Algorithm::WhirlpoolM { processors: None },
                    &EvalOptions::top_k(4),
                    Normalization::Sparse,
                    &CollectionOptions::default().with_threads(threads),
                );
                assert!(
                    collection_answers_equivalent(&single.answers, &multi.answers, 1e-9),
                    "threads={threads} max_resident={max_resident}: {:?} vs {:?}",
                    single.answers,
                    multi.answers,
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn add_snapshot_with_source_path_is_evictable() {
        let dir = snapshot_dir("addsnap", &[("only", RICH)]);
        let snap = Snapshot::attach(dir.join("only.wps")).unwrap();
        let mut c = Collection::new();
        c.add_snapshot("only", snap);
        assert!(c.shards()[0].is_lazy(), "file-backed snapshot goes lazy");
        assert!(c.shards()[0].is_resident(), "and starts resident");
        assert_eq!(c.resident_count(), 1);
        // Evictable: attach another shard under a cap of 1.
        std::fs::copy(dir.join("only.wps"), dir.join("other.wps")).unwrap();
        c.attach_snapshot_file(dir.join("other.wps")).unwrap();
        c.set_max_resident(1);
        let access = c.acquire(1).unwrap();
        drop(access);
        assert!(!c.shards()[0].is_resident(), "LRU shard 0 was evicted");
        assert_eq!(c.eviction_count(), 1);
        // And comes back on demand.
        let access = c.acquire(0).unwrap();
        assert_eq!(
            access.doc().len(),
            c.shards()[0].synopsis().elements() as usize + 1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn equivalence_is_shard_aware() {
        let a = vec![
            CollectionAnswer {
                shard: 0,
                root: NodeId::from_index(1),
                score: Score::new(2.0),
            },
            CollectionAnswer {
                shard: 1,
                root: NodeId::from_index(1),
                score: Score::new(1.0),
            },
        ];
        // Same node ids, different shard assignment in the interior:
        // not equivalent.
        let mut b = a.clone();
        b[0].shard = 1;
        b[1].shard = 0;
        assert!(!collection_answers_equivalent(&a, &b, 1e-9));
        assert!(collection_answers_equivalent(&a, &a.clone(), 1e-9));
        // Tail tie may swap members.
        let mut c = a.clone();
        c[1] = CollectionAnswer {
            shard: 3,
            root: NodeId::from_index(9),
            score: Score::new(1.0),
        };
        assert!(collection_answers_equivalent(&a, &c, 1e-9));
    }
}
