//! Collection-level (sharded) top-k evaluation.
//!
//! A [`Collection`] holds many documents — separate files, or subtree
//! shards split off one large document — and answers one top-k query
//! over all of them as if they were a single corpus:
//!
//! * **Corpus-level idf.** Scores come from one
//!   [`CorpusStats`]-derived weight table pooled over every shard, so
//!   an answer's score (and therefore its rank) does not depend on
//!   which shard holds it.
//! * **Global threshold sharing.** Shards are evaluated
//!   most-promising-first; each per-shard engine run is seeded with
//!   the current global k-th score as its pruning-threshold *floor*
//!   ([`EvalOptions::threshold_floor`]), so a late shard prunes
//!   against the best answers of every shard already done.
//! * **Shard pruning.** Before a shard is evaluated at all, its score
//!   *ceiling* — an upper bound derived from the per-shard
//!   [`ShardSynopsis`] — is compared against the global threshold. A
//!   shard whose ceiling cannot beat the current k-th answer is
//!   skipped without touching its postings. The ceiling never
//!   under-estimates (see [`Collection::shard_ceiling`]), so pruning
//!   never drops a true top-k answer.
//!
//! Both optimizations are individually switchable
//! ([`CollectionOptions`]); with both off the driver degrades to a
//! naive scan of every shard, which the benchmarks use as the
//! comparison baseline.

use crate::context::{ContextOptions, QueryContext, RelaxMode};
use crate::engine::{evaluate_with_context, Algorithm, EvalOptions};
use crate::error::Completeness;
use crate::metrics::MetricsSnapshot;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use whirlpool_index::{DocView, ShardSynopsis, TagIndex, TagIndexView};
use whirlpool_pattern::{TreePattern, WILDCARD};
use whirlpool_score::{CorpusStats, Normalization, Score, TfIdfModel};
use whirlpool_store::Snapshot;
use whirlpool_xml::{parse_document, write_node, Document, NodeId, ParseError, WriteOptions};

/// How a [`Shard`] holds its document: an owned arena built by the
/// parser, or a version-2 snapshot attached (usually mmap'd) from disk.
/// Every consumer goes through the [`DocView`]/[`TagIndexView`]
/// accessors, so the two backings are interchangeable at query time.
#[allow(clippy::large_enum_variant)] // one per document, never in bulk arrays
enum ShardBacking {
    Parsed { doc: Document, index: TagIndex },
    Snapshot(Box<Snapshot>),
}

/// One member of a [`Collection`]: a document with its index and
/// synopsis, built at load time (parsed backing) or attached in O(1)
/// from a prebuilt snapshot file.
pub struct Shard {
    name: String,
    backing: ShardBacking,
    synopsis: ShardSynopsis,
}

impl Shard {
    /// The shard's display name (file name, or `split-NNN` for subtree
    /// shards).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard's document, as a view over either backing.
    pub fn doc(&self) -> DocView<'_> {
        match &self.backing {
            ShardBacking::Parsed { doc, .. } => doc.into(),
            ShardBacking::Snapshot(s) => s.doc_view(),
        }
    }

    /// The shard's tag/value postings, as a view over either backing.
    pub fn index(&self) -> TagIndexView<'_> {
        match &self.backing {
            ShardBacking::Parsed { index, .. } => index.view(),
            ShardBacking::Snapshot(s) => s.index_view(),
        }
    }

    /// The owned document and index, when this shard was parsed rather
    /// than snapshot-attached. Reference/oracle paths that need Dewey
    /// paths go through this.
    pub fn as_parsed(&self) -> Option<(&Document, &TagIndex)> {
        match &self.backing {
            ShardBacking::Parsed { doc, index } => Some((doc, index)),
            ShardBacking::Snapshot(_) => None,
        }
    }

    /// Is this shard backed by an attached snapshot?
    pub fn is_snapshot(&self) -> bool {
        matches!(self.backing, ShardBacking::Snapshot(_))
    }

    /// The shard's pruning synopsis.
    pub fn synopsis(&self) -> &ShardSynopsis {
        &self.synopsis
    }
}

/// A multi-document corpus queried as one unit.
#[derive(Default)]
pub struct Collection {
    shards: Vec<Shard>,
}

impl Collection {
    /// An empty collection.
    pub fn new() -> Self {
        Collection::default()
    }

    /// Adds a parsed document as one shard, building its index and
    /// synopsis.
    pub fn add_document(&mut self, name: impl Into<String>, doc: Document) {
        let index = TagIndex::build(&doc);
        let synopsis = ShardSynopsis::build(&doc);
        self.shards.push(Shard {
            name: name.into(),
            backing: ShardBacking::Parsed { doc, index },
            synopsis,
        });
    }

    /// Adds an attached snapshot as one shard. No parse or index build
    /// happens: the snapshot's flat arrays serve queries directly and
    /// its synopsis (derived at attach) drives shard pruning.
    pub fn add_snapshot(&mut self, name: impl Into<String>, snapshot: Snapshot) {
        let synopsis = snapshot.synopsis().clone();
        self.shards.push(Shard {
            name: name.into(),
            backing: ShardBacking::Snapshot(Box::new(snapshot)),
            synopsis,
        });
    }

    /// Attaches the snapshot file at `path` and adds it as one shard,
    /// named by its file stem.
    pub fn attach_snapshot_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), whirlpool_store::StoreError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        self.add_snapshot(name, Snapshot::attach(path)?);
        Ok(())
    }

    /// Parses `src` and adds it as one shard.
    pub fn add_source(&mut self, name: impl Into<String>, src: &str) -> Result<(), ParseError> {
        let doc = parse_document(src)?;
        self.add_document(name, doc);
        Ok(())
    }

    /// Splits one large document into (up to) `shards` subtree shards.
    ///
    /// The split point is the first element, walking down from the
    /// document element through single-child links, that has more than
    /// one child: its children are chunked contiguously, and each
    /// chunk is re-wrapped in the full chain of ancestor tags, so tag
    /// paths in the shards match the unsplit document. An XMark
    /// `<site><regions>…</regions></site>` document therefore splits
    /// at the region containers inside `<regions>`, not at `<site>`
    /// (which always has exactly one child and would yield one shard).
    /// Fewer shards come back when the split point has fewer children
    /// than requested. Attributes on the wrapper-chain elements are
    /// not carried over — patterns returning those elements themselves
    /// should query the unsplit document instead.
    pub fn split_document(doc: &Document, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut collection = Collection::new();
        let root = doc.document_root();
        let Some(top) = doc.children(root).next() else {
            return collection;
        };
        // Descend through single-child links to the real fanout point,
        // recording the wrapper tags passed on the way.
        let mut chain = vec![doc.tag_str(top).to_string()];
        let mut split_at = top;
        loop {
            let mut kids = doc.children(split_at);
            match (kids.next(), kids.next()) {
                (Some(only), None) => {
                    chain.push(doc.tag_str(only).to_string());
                    split_at = only;
                }
                _ => break,
            }
        }
        let children: Vec<NodeId> = doc.children(split_at).collect();
        if children.is_empty() {
            // A childless chain end cannot be split; round-trip the
            // whole document into a single shard.
            let src = whirlpool_xml::write_document(doc, &WriteOptions::default());
            let shard_doc = parse_document(&src).expect("round-tripped document must re-parse");
            collection.add_document("split-000", shard_doc);
            return collection;
        }
        let opts = WriteOptions::default();
        let per = children.len().div_ceil(shards);
        for (i, chunk) in children.chunks(per).enumerate() {
            let mut src = String::new();
            for tag in &chain {
                src.push_str(&format!("<{tag}>"));
            }
            for &child in chunk {
                src.push_str(&write_node(doc, child, &opts));
            }
            for tag in chain.iter().rev() {
                src.push_str(&format!("</{tag}>"));
            }
            let shard_doc = parse_document(&src).expect("serialized subtree chunk must re-parse");
            collection.add_document(format!("split-{i:03}"), shard_doc);
        }
        collection
    }

    /// The shards, in insertion order. [`CollectionAnswer::shard`]
    /// indexes into this slice.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Is the collection empty?
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Pools document-frequency counts over every shard (see
    /// [`CorpusStats`]). Callers derive the corpus score model from the
    /// result; [`evaluate_collection`] does this internally.
    pub fn corpus_stats(&self, pattern: &TreePattern) -> CorpusStats {
        let answer_tag = &pattern.node(pattern.root()).tag;
        let mut stats = CorpusStats::new(pattern);
        for shard in &self.shards {
            stats.add_shard_view(shard.doc(), shard.index(), answer_tag);
        }
        stats
    }

    /// The score ceiling of shard `shard_idx` for `pattern` under
    /// `model` — see [`shard_ceiling`], which this delegates to with
    /// the shard's own synopsis.
    pub fn shard_ceiling(
        &self,
        shard_idx: usize,
        pattern: &TreePattern,
        model: &TfIdfModel,
        relax: RelaxMode,
    ) -> Option<Score> {
        shard_ceiling(&self.shards[shard_idx].synopsis, pattern, model, relax)
    }
}

/// The score *ceiling* of a shard summarized by `synopsis`, for
/// `pattern` under `model`: an upper bound on what any answer rooted in
/// the shard can score. `None` means the shard provably holds no answer
/// at all (its ceiling is −∞, so it can always be skipped).
///
/// The bound mirrors the engines' initial `max_final`
/// (root maximum plus the sum of per-server maxima) with one
/// synopsis-driven improvement: a server whose tag has **zero**
/// elements in the shard can only ever bind the outer-join null,
/// contributing zero, so its maximum drops out of the sum.
/// Wildcard servers always count. This never under-estimates —
/// every term kept is a true per-server upper bound and every term
/// dropped is exactly zero in this shard — which is the invariant
/// shard pruning relies on.
///
/// In exact mode a server with an absent tag cannot bind anything
/// (inner-join semantics), so *any* absent server tag — not just
/// the answer tag — empties the shard.
///
/// This is a free function (rather than only a [`Collection`] method)
/// so callers that hold their shards in their own structures — the
/// serve daemon's document registry, for instance — can run the same
/// pruning rule without rebuilding a `Collection`.
pub fn shard_ceiling(
    synopsis: &ShardSynopsis,
    pattern: &TreePattern,
    model: &TfIdfModel,
    relax: RelaxMode,
) -> Option<Score> {
    use whirlpool_score::ScoreModel;
    let answer_tag = pattern.node(pattern.root()).tag.as_str();
    if answer_tag != WILDCARD && !synopsis.has_tag(answer_tag) {
        return None;
    }
    let mut total = model.max_root_contribution();
    for s in pattern.server_ids() {
        let tag = pattern.node(s).tag.as_str();
        if tag == WILDCARD || synopsis.has_tag(tag) {
            total += model.max_contribution(s);
        } else if relax == RelaxMode::Exact {
            return None;
        }
    }
    Some(Score::new(total))
}

/// Collection-driver knobs, on top of the per-shard [`EvalOptions`].
#[derive(Debug, Clone)]
pub struct CollectionOptions {
    /// Skip shards whose ceiling cannot beat the global threshold.
    pub shard_pruning: bool,
    /// Seed each shard run's pruning threshold with the current global
    /// k-th score.
    pub share_threshold: bool,
    /// Shard-level worker threads. Workers claim shards from a shared
    /// cursor (most-promising-first); per-shard engine runs are forced
    /// to a single thread when this exceeds one, so the two levels of
    /// parallelism do not oversubscribe.
    pub threads: usize,
}

impl Default for CollectionOptions {
    /// Both optimizations on, single-threaded.
    fn default() -> Self {
        CollectionOptions {
            shard_pruning: true,
            share_threshold: true,
            threads: 1,
        }
    }
}

impl CollectionOptions {
    /// The naive baseline: every shard visited, no threshold sharing.
    pub fn scan_all() -> Self {
        CollectionOptions {
            shard_pruning: false,
            share_threshold: false,
            threads: 1,
        }
    }

    /// Sets the shard-level worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// One answer of a collection query: which shard, which node, what
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionAnswer {
    /// Index into [`Collection::shards`].
    pub shard: usize,
    /// The answer node, in its shard's id space.
    pub root: NodeId,
    /// The corpus-model score.
    pub score: Score,
}

/// Shard-level accounting of one collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionMetrics {
    /// Shards in the collection.
    pub shards_total: usize,
    /// Shards actually evaluated.
    pub shards_visited: usize,
    /// Shards skipped because their ceiling could not beat the global
    /// threshold (or they provably held no answer).
    pub shards_pruned: usize,
    /// Shards skipped because the deadline expired before they were
    /// claimed.
    pub shards_skipped_budget: usize,
}

/// The outcome of one collection query.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    /// Top-k answers across all shards, best first.
    pub answers: Vec<CollectionAnswer>,
    /// Exact, or an anytime prefix (deadline expiry inside or between
    /// shards). Shard pruning alone never truncates a result.
    pub completeness: Completeness,
    /// Shard-level accounting.
    pub collection_metrics: CollectionMetrics,
    /// Engine counters summed over every visited shard.
    pub metrics: MetricsSnapshot,
    /// Wall-clock time of the whole collection run.
    pub elapsed: Duration,
}

/// The cross-shard top-k: best-per-(shard, root) scoreboard plus a
/// lock-free threshold snapshot, mirroring
/// [`SharedTopK`](crate::SharedTopK) but keyed by shard so node ids
/// from different documents cannot collide.
struct GlobalTopK {
    k: usize,
    /// (score, shard, root), ascending.
    ordered: Mutex<BTreeSet<(Score, usize, NodeId)>>,
    /// `f64::to_bits` of the last published threshold (monotone).
    threshold_bits: AtomicU64,
}

impl GlobalTopK {
    fn new(k: usize) -> Self {
        GlobalTopK {
            k,
            ordered: Mutex::new(BTreeSet::new()),
            threshold_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// The last published global k-th score (zero until k answers
    /// exist). Monotone non-decreasing, so stale reads are
    /// conservative — exactly like the engine-level snapshot.
    fn threshold(&self) -> Score {
        Score::new(f64::from_bits(self.threshold_bits.load(Ordering::Relaxed)))
    }

    /// Merges one shard's ranked answers, then publishes the new
    /// threshold.
    fn merge(&self, shard: usize, answers: &[crate::topk::RankedAnswer]) {
        let mut set = self.ordered.lock();
        for a in answers {
            set.insert((a.score, shard, a.root));
            if set.len() > self.k {
                let weakest = *set.iter().next().expect("non-empty");
                set.remove(&weakest);
            }
        }
        if set.len() == self.k {
            if let Some(&(s, _, _)) = set.iter().next() {
                self.threshold_bits
                    .store(s.value().to_bits(), Ordering::Release);
            }
        }
    }

    fn into_ranked(self) -> Vec<CollectionAnswer> {
        self.ordered
            .into_inner()
            .into_iter()
            .rev()
            .map(|(score, shard, root)| CollectionAnswer { shard, root, score })
            .collect()
    }
}

/// Evaluates `pattern` over every shard of `collection` and returns the
/// corpus-wide top-k.
///
/// Scores come from the corpus-level model
/// ([`Collection::corpus_stats`]) built with `normalization`. Shards
/// are visited ceiling-descending; `options` configures the per-shard
/// engine runs (its `k`, `relax`, deadline, etc. — `threads` is
/// overridden per [`CollectionOptions::threads`], and
/// `threshold_floor` is owned by the driver). A deadline in `options`
/// bounds the *whole* collection run: each shard gets the remaining
/// time, and shards the deadline overruns are accounted into the
/// truncation certificate by their ceilings.
pub fn evaluate_collection(
    collection: &Collection,
    pattern: &TreePattern,
    algorithm: &Algorithm,
    options: &EvalOptions,
    normalization: Normalization,
    copts: &CollectionOptions,
) -> CollectionResult {
    let start = Instant::now();
    let model = collection.corpus_stats(pattern).model(normalization);

    // Ceiling-descending visit order: rich shards first, so the global
    // threshold rises as fast as possible. `None` ceilings (provably
    // answer-free shards) sort last.
    let mut order: Vec<(usize, Option<Score>)> = (0..collection.len())
        .map(|i| {
            (
                i,
                collection.shard_ceiling(i, pattern, &model, options.relax),
            )
        })
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let global = GlobalTopK::new(options.k);
    let cursor = AtomicUsize::new(0);
    let pruned = AtomicUsize::new(0);
    let visited = AtomicUsize::new(0);
    let budget_skipped = AtomicUsize::new(0);
    let truncated = Mutex::new(TruncationFold::default());
    let metrics = Mutex::new(MetricsSnapshot::default());

    let workers = copts.threads.max(1).min(collection.len().max(1));
    let worker = |_w: usize| loop {
        let at = cursor.fetch_add(1, Ordering::Relaxed);
        if at >= order.len() {
            break;
        }
        let (shard_idx, ceiling) = order[at];

        // Deadline first: an expired collection budget skips the shard
        // and certifies the skip with the shard's ceiling.
        let remaining = options.deadline.map(|d| d.saturating_sub(start.elapsed()));
        if remaining == Some(Duration::ZERO) {
            budget_skipped.fetch_add(1, Ordering::Relaxed);
            let bound = ceiling.map_or(0.0, |c| c.value());
            truncated.lock().expired(1, bound);
            continue;
        }

        if copts.shard_pruning {
            // Strict `<`, matching the engines: a shard that can only
            // tie the k-th answer may still contribute a valid tie.
            let skip = match ceiling {
                None => true,
                Some(c) => c < global.threshold(),
            };
            if skip {
                pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }

        let shard = &collection.shards()[shard_idx];
        let mut shard_opts = options.clone();
        shard_opts.deadline = remaining;
        shard_opts.trace = false;
        if workers > 1 {
            shard_opts.threads = 1;
        }
        if copts.share_threshold {
            shard_opts.threshold_floor = global.threshold().value();
        }
        let ctx = QueryContext::new_view(
            shard.doc(),
            shard.index(),
            pattern,
            &model,
            ContextOptions {
                relax: options.relax,
                selectivity_sample: options.selectivity_sample,
                op_cost: options.op_cost,
                pooling: options.pooling,
                op_batching: options.op_batching,
            },
        );
        let result = evaluate_with_context(&ctx, algorithm, &shard_opts);
        visited.fetch_add(1, Ordering::Relaxed);
        global.merge(shard_idx, &result.answers);
        metrics.lock().absorb(&result.metrics);
        if let Completeness::Truncated {
            pending_matches,
            score_bound,
        } = result.completeness
        {
            truncated.lock().expired(pending_matches, score_bound);
        }
    };

    if workers <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || worker(w));
            }
        });
    }

    let answers = global.into_ranked();
    let completeness = truncated.into_inner().finish(&answers);
    CollectionResult {
        answers,
        completeness,
        collection_metrics: CollectionMetrics {
            shards_total: collection.len(),
            shards_visited: visited.into_inner(),
            shards_pruned: pruned.into_inner(),
            shards_skipped_budget: budget_skipped.into_inner(),
        },
        metrics: metrics.into_inner(),
        elapsed: start.elapsed(),
    }
}

/// Folds per-shard truncation certificates (and budget-skipped shard
/// ceilings) into one collection-level [`Completeness`].
#[derive(Default)]
struct TruncationFold {
    truncated: bool,
    pending: u64,
    bound: f64,
}

impl TruncationFold {
    fn expired(&mut self, pending: u64, bound: f64) {
        self.truncated = true;
        self.pending += pending;
        self.bound = self.bound.max(bound);
    }

    fn finish(self, answers: &[CollectionAnswer]) -> Completeness {
        if !self.truncated {
            return Completeness::Exact;
        }
        let mut bound = self.bound;
        if let Some(best) = answers.first() {
            bound = bound.max(best.score.value());
        }
        Completeness::Truncated {
            pending_matches: self.pending,
            score_bound: bound,
        }
    }
}

/// Are two collection answer lists equivalent as top-k results? The
/// cross-shard analog of
/// [`answers_equivalent`](crate::answers_equivalent): score vectors
/// must agree pairwise within `epsilon`, interior tie groups must hold
/// the same `(shard, root)` sets, and a tie group cut off by the k
/// boundary may resolve to different members.
pub fn collection_answers_equivalent(
    a: &[CollectionAnswer],
    b: &[CollectionAnswer],
    epsilon: f64,
) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (x, y) in a.iter().zip(b) {
        if (x.score.value() - y.score.value()).abs() > epsilon {
            return false;
        }
    }
    let mut i = 0;
    while i < a.len() {
        let mut j = i + 1;
        while j < a.len() && (a[j].score.value() - a[i].score.value()).abs() <= epsilon {
            j += 1;
        }
        if j < a.len() {
            let mut ra: Vec<(usize, NodeId)> = a[i..j].iter().map(|r| (r.shard, r.root)).collect();
            let mut rb: Vec<(usize, NodeId)> = b[i..j].iter().map(|r| (r.shard, r.root)).collect();
            ra.sort_unstable();
            rb.sort_unstable();
            if ra != rb {
                return false;
            }
        }
        i = j;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const RICH: &str = "<shelf>\
        <book><title>dune</title><isbn>1</isbn><price>9</price></book>\
        <book><title>atlas</title><isbn>2</isbn><price>7</price></book>\
        <book><title>hyperion</title><isbn>3</isbn></book>\
        </shelf>";
    const MID: &str = "<shelf>\
        <book><title>solaris</title><isbn>4</isbn></book>\
        <book><title>ubik</title></book>\
        </shelf>";
    /// Books without isbn or price: ceiling below any full match.
    const POOR: &str = "<shelf>\
        <book><title>void</title></book>\
        <book><title>blank</title></book>\
        <book><title>empty</title></book>\
        </shelf>";
    /// No books at all: provably answer-free.
    const EMPTY: &str = "<shelf><cd><title>x</title></cd></shelf>";

    const QUERY: &str = "//book[./title and ./isbn and ./price]";

    fn sample() -> Collection {
        let mut c = Collection::new();
        c.add_source("rich", RICH).unwrap();
        c.add_source("mid", MID).unwrap();
        c.add_source("poor", POOR).unwrap();
        c.add_source("empty", EMPTY).unwrap();
        c
    }

    fn q() -> TreePattern {
        whirlpool_pattern::parse_pattern(QUERY).unwrap()
    }

    #[test]
    fn ceiling_drops_absent_servers_and_never_underestimates() {
        let c = sample();
        let pattern = q();
        let model = c.corpus_stats(&pattern).model(Normalization::None);
        let full = c
            .shard_ceiling(0, &pattern, &model, RelaxMode::Relaxed)
            .unwrap();
        let poor = c
            .shard_ceiling(2, &pattern, &model, RelaxMode::Relaxed)
            .unwrap();
        assert!(poor < full, "missing isbn+price must lower the ceiling");
        // No book node anywhere: provably answer-free.
        assert_eq!(
            c.shard_ceiling(3, &pattern, &model, RelaxMode::Relaxed),
            None
        );
        // Exact mode: a missing server tag empties the shard outright.
        assert_eq!(c.shard_ceiling(2, &pattern, &model, RelaxMode::Exact), None);
        // The ceiling dominates every actually-achieved score.
        let result = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(10),
            Normalization::None,
            &CollectionOptions::scan_all(),
        );
        for a in &result.answers {
            let ceil = c
                .shard_ceiling(a.shard, &pattern, &model, RelaxMode::Relaxed)
                .expect("answer-bearing shard has a ceiling");
            assert!(a.score <= ceil, "{:?} above ceiling {ceil:?}", a);
        }
    }

    #[test]
    fn pruned_run_matches_scan_all() {
        let c = sample();
        let pattern = q();
        for algorithm in [
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let naive = evaluate_collection(
                &c,
                &pattern,
                &algorithm,
                &EvalOptions::top_k(3),
                Normalization::Sparse,
                &CollectionOptions::scan_all(),
            );
            let pruned = evaluate_collection(
                &c,
                &pattern,
                &algorithm,
                &EvalOptions::top_k(3),
                Normalization::Sparse,
                &CollectionOptions::default(),
            );
            assert!(
                collection_answers_equivalent(&naive.answers, &pruned.answers, 1e-9),
                "{algorithm:?}: {:?} vs {:?}",
                naive.answers,
                pruned.answers,
            );
            assert_eq!(naive.collection_metrics.shards_visited, 4);
            assert_eq!(naive.collection_metrics.shards_pruned, 0);
            // The answer-free shard is always pruned; with k=3 filled
            // by rich answers the poor shard should fall too.
            assert!(pruned.collection_metrics.shards_pruned >= 1);
            assert!(matches!(naive.completeness, Completeness::Exact));
            assert!(matches!(pruned.completeness, Completeness::Exact));
        }
    }

    #[test]
    fn multi_worker_matches_single_worker() {
        let c = sample();
        let pattern = q();
        let single = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(4),
            Normalization::Sparse,
            &CollectionOptions::default(),
        );
        for threads in [2, 4, 8] {
            let multi = evaluate_collection(
                &c,
                &pattern,
                &Algorithm::WhirlpoolS,
                &EvalOptions::top_k(4),
                Normalization::Sparse,
                &CollectionOptions::default().with_threads(threads),
            );
            assert!(
                collection_answers_equivalent(&single.answers, &multi.answers, 1e-9),
                "threads={threads}: {:?} vs {:?}",
                single.answers,
                multi.answers,
            );
        }
    }

    #[test]
    fn split_document_covers_the_original() {
        let doc = parse_document(RICH).unwrap();
        let c = Collection::split_document(&doc, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.shards()
                .iter()
                .map(|s| s.synopsis().tag_count("book"))
                .sum::<u64>(),
            3
        );
        let pattern = q();
        let split_run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::None,
            &CollectionOptions::default(),
        );
        // The unsplit document under its own (per-document == corpus,
        // single doc) model gives the same score vector.
        let mut whole = Collection::new();
        whole.add_document("whole", doc);
        let whole_run = evaluate_collection(
            &whole,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(3),
            Normalization::None,
            &CollectionOptions::scan_all(),
        );
        let a: Vec<f64> = split_run.answers.iter().map(|r| r.score.value()).collect();
        let b: Vec<f64> = whole_run.answers.iter().map(|r| r.score.value()).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn oversplit_clamps_to_child_count() {
        let doc = parse_document(MID).unwrap();
        let c = Collection::split_document(&doc, 64);
        assert_eq!(c.len(), 2, "one shard per child, no empties");
    }

    #[test]
    fn split_descends_through_single_child_wrappers() {
        // XMark shape: the document element has exactly one child, and
        // the real fanout sits a level below. The split must happen at
        // the fanout point, with every shard re-wrapped in the full
        // <site><regions> chain so tag paths are unchanged.
        let doc = parse_document(
            "<site><regions>\
             <namerica><item><name>a</name></item></namerica>\
             <europe><item><name>b</name></item></europe>\
             <asia><item><name>c</name></item></asia>\
             </regions></site>",
        )
        .unwrap();
        let c = Collection::split_document(&doc, 3);
        assert_eq!(c.len(), 3, "split at the fanout level, not at <site>");
        for shard in c.shards() {
            assert_eq!(shard.synopsis().tag_count("site"), 1);
            assert_eq!(shard.synopsis().tag_count("regions"), 1);
            assert_eq!(shard.synopsis().tag_count("item"), 1);
        }
        let pattern = whirlpool_pattern::parse_pattern("//item[./name]").unwrap();
        let run = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &EvalOptions::top_k(10),
            Normalization::None,
            &CollectionOptions::default(),
        );
        assert_eq!(run.answers.len(), 3, "all items survive the split");
    }

    #[test]
    fn zero_deadline_truncates_and_certifies() {
        let c = sample();
        let pattern = q();
        let mut options = EvalOptions::top_k(3);
        options.deadline = Some(Duration::ZERO);
        let result = evaluate_collection(
            &c,
            &pattern,
            &Algorithm::WhirlpoolS,
            &options,
            Normalization::Sparse,
            &CollectionOptions::scan_all(),
        );
        assert!(result.answers.is_empty());
        assert_eq!(result.collection_metrics.shards_visited, 0);
        assert_eq!(result.collection_metrics.shards_skipped_budget, 4);
        match result.completeness {
            Completeness::Truncated {
                pending_matches,
                score_bound,
            } => {
                assert_eq!(pending_matches, 4);
                assert!(score_bound > 0.0, "skipped ceilings certify the bound");
            }
            c => panic!("expected truncation, got {c:?}"),
        }
    }

    #[test]
    fn equivalence_is_shard_aware() {
        let a = vec![
            CollectionAnswer {
                shard: 0,
                root: NodeId::from_index(1),
                score: Score::new(2.0),
            },
            CollectionAnswer {
                shard: 1,
                root: NodeId::from_index(1),
                score: Score::new(1.0),
            },
        ];
        // Same node ids, different shard assignment in the interior:
        // not equivalent.
        let mut b = a.clone();
        b[0].shard = 1;
        b[1].shard = 0;
        assert!(!collection_answers_equivalent(&a, &b, 1e-9));
        assert!(collection_answers_equivalent(&a, &a.clone(), 1e-9));
        // Tail tie may swap members.
        let mut c = a.clone();
        c[1] = CollectionAnswer {
            shard: 3,
            root: NodeId::from_index(9),
            score: Score::new(1.0),
        };
        assert!(collection_answers_equivalent(&a, &c, 1e-9));
    }
}
