//! Recycling of partial-match binding buffers.
//!
//! Every [`PartialMatch::extend`] clones its parent's `Box<[Binding]>`,
//! so the engines' hot loop is one heap allocation per extension —
//! millions on the Table-1 workloads. A [`MatchPool`] is a free list of
//! retired buffers: engines release the buffers of pruned, completed,
//! and consumed matches back to their pool, and
//! [`PartialMatch::extend_in`] copies the parent's bindings into a
//! recycled buffer instead of allocating a fresh one. All buffers
//! within one evaluation have the same width (the query length), so any
//! retired buffer fits any extension.
//!
//! Pools are deliberately **not** shared between threads: Whirlpool-M
//! gives each server thread its own pool, trading a little reuse for
//! zero synchronization on the hot path. A disabled pool (see
//! [`ContextOptions::pooling`](crate::ContextOptions)) degrades to
//! plain allocation so the engines stay byte-identical in behavior
//! either way — only the allocator traffic changes.
//!
//! [`PartialMatch::extend`]: crate::PartialMatch::extend
//! [`PartialMatch::extend_in`]: crate::PartialMatch::extend_in

use crate::metrics::Metrics;
use crate::partial::{Binding, PartialMatch};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffers moved per rebalancing exchange between a worker shard and
/// its [`PoolHub`].
const HUB_BLOCK: usize = 64;

/// A worker shard donates a block once its local free list exceeds
/// this (it keeps `HUB_SHARD_MAX - HUB_BLOCK` buffers for itself).
const HUB_SHARD_MAX: usize = 256;

/// A shared reservoir of retired binding buffers backing per-worker
/// [`MatchPool`] shards.
///
/// Whirlpool-M gives every worker thread its own pool so the per-match
/// acquire/release path stays synchronization-free, but worker-local
/// free lists strand buffers: a worker that mostly *consumes* matches
/// (its server sits late in routing orders) hoards buffers that the
/// workers spawning matches keep allocating fresh. The hub rebalances
/// in **blocks** of `HUB_BLOCK` buffers — a shard that runs dry takes
/// a whole block under one lock acquisition, a shard that overflows
/// `HUB_SHARD_MAX` donates one — so the hub lock is touched once per
/// block, not once per match.
#[derive(Default)]
pub struct PoolHub {
    blocks: Mutex<Vec<Vec<Box<[Binding]>>>>,
    rebalances: AtomicU64,
}

impl PoolHub {
    /// An empty hub.
    pub fn new() -> Self {
        PoolHub::default()
    }

    /// Block-exchange operations performed (takes + gives), for
    /// observability and tests.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the hub.
    pub fn buffered(&self) -> usize {
        self.blocks.lock().iter().map(Vec::len).sum()
    }

    fn take_block(&self) -> Option<Vec<Box<[Binding]>>> {
        let block = self.blocks.lock().pop();
        if block.is_some() {
            self.rebalances.fetch_add(1, Ordering::Relaxed);
        }
        block
    }

    fn give_block(&self, block: Vec<Box<[Binding]>>) {
        if block.is_empty() {
            return;
        }
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        self.blocks.lock().push(block);
    }
}

/// A free list of retired binding buffers (see the module docs).
///
/// Obtain one from [`QueryContext::new_pool`](crate::QueryContext::new_pool)
/// so that the pool inherits the context's pooling flag and reports its
/// allocation counters into the context metrics when dropped.
pub struct MatchPool<'m> {
    free: Vec<Box<[Binding]>>,
    enabled: bool,
    allocated: u64,
    reused: u64,
    metrics: Option<&'m Metrics>,
    hub: Option<&'m PoolHub>,
}

impl<'m> MatchPool<'m> {
    /// A stand-alone pool; `enabled: false` makes every acquisition a
    /// plain allocation and every release a drop.
    pub fn new(enabled: bool) -> MatchPool<'static> {
        MatchPool {
            free: Vec::new(),
            enabled,
            allocated: 0,
            reused: 0,
            metrics: None,
            hub: None,
        }
    }

    /// A pool that adds its counters to `metrics` when dropped.
    pub fn reporting(enabled: bool, metrics: &'m Metrics) -> Self {
        MatchPool {
            free: Vec::new(),
            enabled,
            allocated: 0,
            reused: 0,
            metrics: Some(metrics),
            hub: None,
        }
    }

    /// A reporting pool that is a *shard* of `hub`: local misses pull a
    /// block of buffers from the hub before allocating, local overflow
    /// donates a block back, and the remaining free list is returned to
    /// the hub on drop.
    pub fn reporting_shared(enabled: bool, metrics: &'m Metrics, hub: &'m PoolHub) -> Self {
        MatchPool {
            free: Vec::new(),
            enabled,
            allocated: 0,
            reused: 0,
            metrics: Some(metrics),
            hub: enabled.then_some(hub),
        }
    }

    /// Is recycling active (as opposed to plain allocation)?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A buffer holding a copy of `src`: recycled when one is free,
    /// freshly allocated otherwise.
    #[inline]
    pub fn acquire_copy(&mut self, src: &[Binding]) -> Box<[Binding]> {
        if self.free.is_empty() {
            if let Some(block) = self.hub.and_then(PoolHub::take_block) {
                self.free = block;
            }
        }
        if let Some(mut buf) = self.free.pop() {
            debug_assert_eq!(buf.len(), src.len(), "pooled buffer width mismatch");
            if buf.len() == src.len() {
                self.reused += 1;
                buf.copy_from_slice(src);
                return buf;
            }
        }
        self.allocated += 1;
        src.to_vec().into_boxed_slice()
    }

    /// Retires a match, keeping its buffer for reuse.
    #[inline]
    pub fn release(&mut self, m: PartialMatch) {
        if self.enabled {
            self.free.push(m.bindings);
            if self.free.len() >= HUB_SHARD_MAX {
                if let Some(hub) = self.hub {
                    hub.give_block(self.free.split_off(self.free.len() - HUB_BLOCK));
                }
            }
        }
    }

    /// Buffers acquired by fresh allocation so far.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Buffers acquired by recycling so far.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Retired buffers currently waiting for reuse.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

impl Drop for MatchPool<'_> {
    fn drop(&mut self) {
        if let Some(hub) = self.hub {
            // A retiring shard (worker exit, dead server) returns its
            // buffers so surviving workers reuse them instead of
            // allocating fresh ones.
            hub.give_block(std::mem::take(&mut self.free));
        }
        if let Some(metrics) = self.metrics {
            if self.allocated > 0 {
                metrics.add_buffers_allocated(self.allocated);
            }
            if self.reused > 0 {
                metrics.add_buffers_reused(self.reused);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::QNodeId;
    use whirlpool_score::MatchLevel;
    use whirlpool_xml::NodeId;

    fn root_match(seq: u64) -> PartialMatch {
        PartialMatch::new_root(seq, 3, NodeId::from_index(1), 0.0, 2.0)
    }

    fn bind(i: usize) -> Binding {
        Binding::Matched {
            node: NodeId::from_index(i),
            level: MatchLevel::Exact,
        }
    }

    #[test]
    fn recycles_released_buffers() {
        let mut pool = MatchPool::new(true);
        let parent = root_match(0);
        let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.reused(), 0);

        pool.release(child);
        assert_eq!(pool.free_len(), 1);
        let again = parent.extend_in(&mut pool, 2, QNodeId(2), bind(7), 0.25, 1.0);
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.free_len(), 0);
        // The recycled buffer carries no trace of its previous life.
        assert_eq!(again.bindings[1], Binding::Unbound);
        assert_eq!(again.bindings[2], bind(7));
    }

    #[test]
    fn pooled_extension_equals_plain_extension() {
        let mut pool = MatchPool::new(true);
        let parent = root_match(0);
        // Churn the pool so the pooled path goes through a recycled
        // buffer with stale contents.
        let stale = parent.extend_in(&mut pool, 9, QNodeId(2), bind(9), 0.1, 1.0);
        pool.release(stale);

        let plain = parent.extend(1, QNodeId(1), bind(4), 0.5, 1.0);
        let pooled = parent.extend_in(&mut pool, 1, QNodeId(1), bind(4), 0.5, 1.0);
        assert_eq!(plain.bindings, pooled.bindings);
        assert_eq!(plain.visited, pooled.visited);
        assert_eq!(plain.score, pooled.score);
        assert_eq!(plain.max_final, pooled.max_final);
        assert!(pool.reused() >= 1);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut pool = MatchPool::new(false);
        let parent = root_match(0);
        let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
        pool.release(child);
        assert_eq!(pool.free_len(), 0);
        let _ = parent.extend_in(&mut pool, 2, QNodeId(2), bind(6), 0.5, 1.0);
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.reused(), 0);
    }

    #[test]
    fn shard_overflow_donates_blocks_and_misses_take_them() {
        let metrics = Metrics::new();
        let hub = PoolHub::new();
        let parent = root_match(0);
        {
            // Producer shard: releases far more than it acquires (the
            // extensions are allocated outside the pool).
            let mut producer = MatchPool::reporting_shared(true, &metrics, &hub);
            for i in 0..HUB_SHARD_MAX + HUB_BLOCK {
                let child = parent.extend(i as u64, QNodeId(1), bind(1), 0.1, 1.0);
                producer.release(child);
            }
            // Crossing HUB_SHARD_MAX twice → at least two donations.
            assert!(hub.buffered() >= HUB_BLOCK);
            assert!(producer.free_len() < HUB_SHARD_MAX);
        }
        // Drop donated the remainder too.
        assert_eq!(hub.buffered(), HUB_SHARD_MAX + HUB_BLOCK);
        let gives = hub.rebalances();
        assert!(gives >= 3, "expected >= 3 rebalances, got {gives}");

        // Consumer shard: starts empty, must reuse hub buffers instead
        // of allocating.
        let mut consumer = MatchPool::reporting_shared(true, &metrics, &hub);
        let c = parent.extend_in(&mut consumer, 0, QNodeId(2), bind(2), 0.1, 1.0);
        assert_eq!(consumer.allocated(), 0);
        assert_eq!(consumer.reused(), 1);
        assert!(hub.rebalances() > gives);
        consumer.release(c);
    }

    #[test]
    fn disabled_shared_pool_bypasses_the_hub() {
        let metrics = Metrics::new();
        let hub = PoolHub::new();
        let parent = root_match(0);
        let mut pool = MatchPool::reporting_shared(false, &metrics, &hub);
        let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(1), 0.1, 1.0);
        pool.release(child);
        drop(pool);
        assert_eq!(hub.buffered(), 0);
        assert_eq!(hub.rebalances(), 0);
    }

    #[test]
    fn drop_reports_into_metrics() {
        let metrics = Metrics::new();
        {
            let mut pool = MatchPool::reporting(true, &metrics);
            let parent = root_match(0);
            let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
            pool.release(child);
            let _ = parent.extend_in(&mut pool, 2, QNodeId(2), bind(6), 0.5, 1.0);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.buffers_allocated, 1);
        assert_eq!(snap.buffers_reused, 1);
        assert!((snap.pool_hit_rate() - 0.5).abs() < 1e-12);
    }
}
