//! Recycling of partial-match binding buffers.
//!
//! Every [`PartialMatch::extend`] clones its parent's `Box<[Binding]>`,
//! so the engines' hot loop is one heap allocation per extension —
//! millions on the Table-1 workloads. A [`MatchPool`] is a free list of
//! retired buffers: engines release the buffers of pruned, completed,
//! and consumed matches back to their pool, and
//! [`PartialMatch::extend_in`] copies the parent's bindings into a
//! recycled buffer instead of allocating a fresh one. All buffers
//! within one evaluation have the same width (the query length), so any
//! retired buffer fits any extension.
//!
//! Pools are deliberately **not** shared between threads: Whirlpool-M
//! gives each server thread its own pool, trading a little reuse for
//! zero synchronization on the hot path. A disabled pool (see
//! [`ContextOptions::pooling`](crate::ContextOptions)) degrades to
//! plain allocation so the engines stay byte-identical in behavior
//! either way — only the allocator traffic changes.
//!
//! [`PartialMatch::extend`]: crate::PartialMatch::extend
//! [`PartialMatch::extend_in`]: crate::PartialMatch::extend_in

use crate::metrics::Metrics;
use crate::partial::{Binding, PartialMatch};

/// A free list of retired binding buffers (see the module docs).
///
/// Obtain one from [`QueryContext::new_pool`](crate::QueryContext::new_pool)
/// so that the pool inherits the context's pooling flag and reports its
/// allocation counters into the context metrics when dropped.
pub struct MatchPool<'m> {
    free: Vec<Box<[Binding]>>,
    enabled: bool,
    allocated: u64,
    reused: u64,
    metrics: Option<&'m Metrics>,
}

impl<'m> MatchPool<'m> {
    /// A stand-alone pool; `enabled: false` makes every acquisition a
    /// plain allocation and every release a drop.
    pub fn new(enabled: bool) -> MatchPool<'static> {
        MatchPool {
            free: Vec::new(),
            enabled,
            allocated: 0,
            reused: 0,
            metrics: None,
        }
    }

    /// A pool that adds its counters to `metrics` when dropped.
    pub fn reporting(enabled: bool, metrics: &'m Metrics) -> Self {
        MatchPool {
            free: Vec::new(),
            enabled,
            allocated: 0,
            reused: 0,
            metrics: Some(metrics),
        }
    }

    /// Is recycling active (as opposed to plain allocation)?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A buffer holding a copy of `src`: recycled when one is free,
    /// freshly allocated otherwise.
    #[inline]
    pub fn acquire_copy(&mut self, src: &[Binding]) -> Box<[Binding]> {
        if let Some(mut buf) = self.free.pop() {
            debug_assert_eq!(buf.len(), src.len(), "pooled buffer width mismatch");
            if buf.len() == src.len() {
                self.reused += 1;
                buf.copy_from_slice(src);
                return buf;
            }
        }
        self.allocated += 1;
        src.to_vec().into_boxed_slice()
    }

    /// Retires a match, keeping its buffer for reuse.
    #[inline]
    pub fn release(&mut self, m: PartialMatch) {
        if self.enabled {
            self.free.push(m.bindings);
        }
    }

    /// Buffers acquired by fresh allocation so far.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Buffers acquired by recycling so far.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Retired buffers currently waiting for reuse.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

impl Drop for MatchPool<'_> {
    fn drop(&mut self) {
        if let Some(metrics) = self.metrics {
            if self.allocated > 0 {
                metrics.add_buffers_allocated(self.allocated);
            }
            if self.reused > 0 {
                metrics.add_buffers_reused(self.reused);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_pattern::QNodeId;
    use whirlpool_score::MatchLevel;
    use whirlpool_xml::NodeId;

    fn root_match(seq: u64) -> PartialMatch {
        PartialMatch::new_root(seq, 3, NodeId::from_index(1), 0.0, 2.0)
    }

    fn bind(i: usize) -> Binding {
        Binding::Matched {
            node: NodeId::from_index(i),
            level: MatchLevel::Exact,
        }
    }

    #[test]
    fn recycles_released_buffers() {
        let mut pool = MatchPool::new(true);
        let parent = root_match(0);
        let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.reused(), 0);

        pool.release(child);
        assert_eq!(pool.free_len(), 1);
        let again = parent.extend_in(&mut pool, 2, QNodeId(2), bind(7), 0.25, 1.0);
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.free_len(), 0);
        // The recycled buffer carries no trace of its previous life.
        assert_eq!(again.bindings[1], Binding::Unbound);
        assert_eq!(again.bindings[2], bind(7));
    }

    #[test]
    fn pooled_extension_equals_plain_extension() {
        let mut pool = MatchPool::new(true);
        let parent = root_match(0);
        // Churn the pool so the pooled path goes through a recycled
        // buffer with stale contents.
        let stale = parent.extend_in(&mut pool, 9, QNodeId(2), bind(9), 0.1, 1.0);
        pool.release(stale);

        let plain = parent.extend(1, QNodeId(1), bind(4), 0.5, 1.0);
        let pooled = parent.extend_in(&mut pool, 1, QNodeId(1), bind(4), 0.5, 1.0);
        assert_eq!(plain.bindings, pooled.bindings);
        assert_eq!(plain.visited, pooled.visited);
        assert_eq!(plain.score, pooled.score);
        assert_eq!(plain.max_final, pooled.max_final);
        assert!(pool.reused() >= 1);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut pool = MatchPool::new(false);
        let parent = root_match(0);
        let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
        pool.release(child);
        assert_eq!(pool.free_len(), 0);
        let _ = parent.extend_in(&mut pool, 2, QNodeId(2), bind(6), 0.5, 1.0);
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.reused(), 0);
    }

    #[test]
    fn drop_reports_into_metrics() {
        let metrics = Metrics::new();
        {
            let mut pool = MatchPool::reporting(true, &metrics);
            let parent = root_match(0);
            let child = parent.extend_in(&mut pool, 1, QNodeId(1), bind(5), 0.5, 1.0);
            pool.release(child);
            let _ = parent.extend_in(&mut pool, 2, QNodeId(2), bind(6), 0.5, 1.0);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.buffers_allocated, 1);
        assert_eq!(snap.buffers_reused, 1);
        assert!((snap.pool_hit_rate() - 0.5).abs() < 1e-12);
    }
}
