#![deny(missing_docs)]

//! # Whirlpool — adaptive top-k query processing for XML
//!
//! A Rust implementation of *"Adaptive Processing of Top-k Queries in
//! XML"* (Marian, Amer-Yahia, Koudas, Srivastava — ICDE 2005).
//!
//! Whirlpool evaluates XPath tree-pattern queries over XML documents and
//! returns the `k` best-scoring answers, where answers may be *exact*
//! matches or *approximate* matches obtained through query relaxation
//! (edge generalization, leaf deletion, subtree promotion). Its defining
//! trait is **per-answer adaptivity**: every partial match is routed
//! through the per-query-node *servers* in its own order, chosen at
//! runtime from the current top-k threshold and per-server selectivity
//! estimates — in contrast to lock-step plans that push all matches
//! through the same server sequence.
//!
//! ## Quick start
//!
//! ```
//! use whirlpool_core::{evaluate, Algorithm, EvalOptions};
//! use whirlpool_index::TagIndex;
//! use whirlpool_pattern::parse_pattern;
//! use whirlpool_score::{Normalization, TfIdfModel};
//! use whirlpool_xml::parse_document;
//!
//! let doc = parse_document(
//!     "<library>\
//!        <book><title>dune</title><isbn>1</isbn></book>\
//!        <book><review><title>dune</title></review></book>\
//!      </library>",
//! ).unwrap();
//! let index = TagIndex::build(&doc);
//! let query = parse_pattern("//book[./title and ./isbn]").unwrap();
//! let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
//!
//! let result = evaluate(
//!     &doc, &index, &query, &model,
//!     &Algorithm::WhirlpoolS,
//!     &EvalOptions::top_k(2),
//! );
//! // The exact match outranks the approximate (relaxed) one.
//! assert_eq!(result.answers.len(), 2);
//! assert!(result.answers[0].score > result.answers[1].score);
//! ```
//!
//! ## Engines
//!
//! | Engine | Paper name | Character |
//! |---|---|---|
//! | [`Algorithm::LockStepNoPrune`] | LockStep-NoPrun | exhaustive baseline, exact reference |
//! | [`Algorithm::LockStep`] | LockStep | static plan + score pruning (≈ OptThres) |
//! | [`Algorithm::WhirlpoolS`] | Whirlpool-S | single-threaded, adaptive per-match routing |
//! | [`Algorithm::WhirlpoolM`] | Whirlpool-M | one thread per server + router thread |
//!
//! Routing strategies ([`RoutingStrategy`]) and queue policies
//! ([`QueuePolicy`]) correspond to §6.1.3/§6.1.4 of the paper; the
//! defaults (`min_alive_partial_matches`, maximum-possible-final-score
//! queues) are the configurations the paper found best.
//!
//! ## Collections
//!
//! [`Collection`] scales any of the engines past one document: many
//! documents (or subtree shards split off one large document) are
//! queried as a single corpus under a shared corpus-level idf model,
//! with the global top-k threshold seeding every per-shard run and a
//! synopsis-derived score ceiling pruning whole shards that cannot
//! beat the current k-th answer. See [`evaluate_collection`].

mod assist;
mod collection;
mod context;
mod engine;
mod error;
mod fault;
mod lockstep;
mod metrics;
pub mod naive;
mod partial;
mod pool;
mod queue;
mod router;
pub mod threshold;
mod topk;
pub mod trace;
mod util;
pub mod vtime;
mod whirlpool_m;
mod whirlpool_s;

pub use assist::{AssistRegistry, DoorGuard};
pub use collection::{
    collection_answers_equivalent, evaluate_collection, shard_ceiling, shard_ceiling_with_paths,
    Collection, CollectionAnswer, CollectionMetrics, CollectionOptions, CollectionResult, Shard,
    ShardAccess,
};
pub use context::{ContextOptions, Located, OpOutcome, QueryContext, RelaxMode};
pub use engine::{
    evaluate, evaluate_view, evaluate_with_context, Algorithm, EvalOptions, EvalResult,
};
pub use error::{Completeness, EngineError, FaultSpecError};
pub use fault::{
    Budget, CancelToken, EngineRun, FaultKind, FaultPlan, OpInterrupt, RunControl, INTERRUPT_LANES,
    INTERRUPT_SPAN,
};
pub use lockstep::{
    run_lockstep, run_lockstep_anytime, run_lockstep_noprune, run_lockstep_noprune_anytime,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use partial::{Binding, PartialMatch};
pub use pool::{MatchPool, PoolHub};
pub use queue::{MatchQueue, QueuePolicy};
pub use router::RoutingStrategy;
pub use threshold::run_threshold;
pub use topk::{answers_equivalent, RankedAnswer, SharedTopK, TopKSet};
pub use trace::{TraceData, TraceSummary, Tracer, WorkerTrace};
pub use whirlpool_m::{run_whirlpool_m, run_whirlpool_m_anytime, WhirlpoolMConfig};
pub use whirlpool_s::{run_whirlpool_s, run_whirlpool_s_anytime, run_whirlpool_s_batched};
