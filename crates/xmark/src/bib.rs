//! A heterogeneous bibliographic catalog generator.
//!
//! The paper's introduction motivates approximate top-k matching with
//! "structurally heterogeneous data (e.g., querying books from
//! different online sellers)" and cites the Library of Congress' XML
//! repositories. This generator produces exactly that workload: one
//! catalog holding the same kind of book records expressed in several
//! *seller schemas*, so a query written against one schema matches the
//! others only through relaxation — a scaled-up version of the paper's
//! Figure 1.
//!
//! Schemas (per record, chosen per seller):
//!
//! * **canonical** — `book/title`, `book/author`,
//!   `book/info/{publisher/name, isbn, price}` (Figure 1(a) shape);
//! * **flat** — everything a direct child of `book` (publisher
//!   promoted out of `info`, as in Figure 1(b));
//! * **nested** — `title` under `metadata`, price under
//!   `offer/price`, no publisher (Figure 1(c) shape);
//! * **minimal** — only a `title` and an `author`.

use crate::text;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use whirlpool_xml::{Document, DocumentBuilder};

/// Configuration for [`generate_catalog`].
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of book records.
    pub books: usize,
    /// RNG seed; equal configs generate identical catalogs.
    pub seed: u64,
    /// Number of distinct title phrases to draw from — smaller pools
    /// make value-predicate queries (`./title = '…'`) more productive.
    pub title_pool: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            books: 200,
            seed: 42,
            title_pool: 40,
        }
    }
}

/// The seller schemas, in generation proportion order.
const SCHEMAS: [(&str, f64); 4] = [
    ("canonical", 0.4),
    ("flat", 0.25),
    ("nested", 0.2),
    ("minimal", 0.15),
];

/// Generates a heterogeneous catalog per `config`. Every `book` element
/// carries a `schema` attribute naming the layout it was generated
/// with, so tests and examples can verify ranking against the known
/// structure.
pub fn generate_catalog(config: &CatalogConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Pre-draw the title pool.
    let titles: Vec<String> = (0..config.title_pool.max(1))
        .map(|_| text::phrase(&mut rng, 2, 4))
        .collect();

    let mut b = DocumentBuilder::new();
    b.open("catalog");
    for i in 0..config.books {
        let title = &titles[rng.gen_range(0..titles.len())];
        let author = text::phrase(&mut rng, 2, 3);
        let publisher = text::phrase(&mut rng, 1, 2);
        let isbn = format!("{:09}", rng.gen_range(0..1_000_000_000u64));
        let price = format!("{}.{:02}", rng.gen_range(5..120), rng.gen_range(0..100));

        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut schema = SCHEMAS[0].0;
        for (name, share) in SCHEMAS {
            acc += share;
            if u < acc {
                schema = name;
                break;
            }
        }

        b.open("book");
        b.attribute("id", &format!("bk{i}"));
        b.attribute("schema", schema);
        match schema {
            "canonical" => {
                b.leaf("title", title);
                b.leaf("author", &author);
                b.open("info");
                b.open("publisher");
                b.leaf("name", &publisher);
                b.close();
                b.leaf("isbn", &isbn);
                b.leaf("price", &price);
                b.close();
            }
            "flat" => {
                b.leaf("title", title);
                b.leaf("author", &author);
                b.open("publisher");
                b.leaf("name", &publisher);
                b.close();
                b.leaf("isbn", &isbn);
                b.leaf("price", &price);
            }
            "nested" => {
                b.open("metadata");
                b.leaf("title", title);
                b.leaf("author", &author);
                b.close();
                b.open("offer");
                b.leaf("price", &price);
                b.close();
            }
            _ => {
                b.leaf("title", title);
                b.leaf("author", &author);
            }
        }
        b.close(); // book
    }
    b.close(); // catalog
    b.finish()
}

/// The canonical-schema catalog query: a book with title, author,
/// publisher name under info, an isbn and a price — written against the
/// *canonical* layout; the other schemas only match through relaxation.
pub const CATALOG_QUERY: &str =
    "//book[./title and ./author and ./info[./publisher/name and ./isbn and ./price]]";

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::DocumentStats;

    #[test]
    fn deterministic_and_sized() {
        let a = generate_catalog(&CatalogConfig::default());
        let b = generate_catalog(&CatalogConfig::default());
        let opts = whirlpool_xml::WriteOptions::default();
        assert_eq!(
            whirlpool_xml::write_document(&a, &opts),
            whirlpool_xml::write_document(&b, &opts)
        );
        let stats = DocumentStats::compute(&a);
        assert_eq!(stats.count_for(&a, "book"), 200);
    }

    #[test]
    fn all_schemas_appear() {
        let doc = generate_catalog(&CatalogConfig {
            books: 400,
            ..Default::default()
        });
        let book = doc.tag_id("book").unwrap();
        let mut seen = std::collections::HashSet::new();
        for n in doc.elements().filter(|&n| doc.tag(n) == book) {
            seen.insert(doc.attribute(n, "schema").unwrap().to_string());
        }
        for (schema, _) in SCHEMAS {
            assert!(seen.contains(schema), "missing schema {schema}");
        }
    }

    #[test]
    fn schemas_have_their_advertised_shapes() {
        let doc = generate_catalog(&CatalogConfig {
            books: 300,
            ..Default::default()
        });
        let book = doc.tag_id("book").unwrap();
        for n in doc.elements().filter(|&n| doc.tag(n) == book) {
            let schema = doc.attribute(n, "schema").unwrap();
            let child_tags: Vec<&str> = doc.children(n).map(|c| doc.tag_str(c)).collect();
            match schema {
                "canonical" => {
                    assert!(child_tags.contains(&"info"));
                    assert!(!child_tags.contains(&"publisher"));
                    assert!(child_tags.contains(&"title"));
                }
                "flat" => {
                    assert!(child_tags.contains(&"publisher"));
                    assert!(!child_tags.contains(&"info"));
                }
                "nested" => {
                    assert!(child_tags.contains(&"metadata"));
                    assert!(!child_tags.contains(&"title"));
                }
                "minimal" => {
                    assert_eq!(child_tags, vec!["title", "author"]);
                }
                other => panic!("unknown schema {other}"),
            }
        }
    }

    #[test]
    fn catalog_query_parses_against_canonical() {
        let q = crate::queries::parse(CATALOG_QUERY);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn titles_repeat_across_sellers() {
        // The smaller title pool guarantees value-predicate queries have
        // multiple matches across schemas.
        let doc = generate_catalog(&CatalogConfig {
            books: 300,
            title_pool: 10,
            seed: 1,
        });
        let title = doc.tag_id("title").unwrap();
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for n in doc.elements().filter(|&n| doc.tag(n) == title) {
            *counts.entry(doc.text(n).unwrap()).or_default() += 1;
        }
        assert!(
            counts.values().any(|&c| c > 5),
            "titles should repeat: {counts:?}"
        );
    }
}
