//! The paper's benchmark queries (§6.2.1) and example queries (§2).

use whirlpool_pattern::{parse_pattern, TreePattern};

/// Q1 (3 nodes): `//item[./description/parlist]`.
pub const Q1: &str = "//item[./description/parlist]";

/// Q2 (6 nodes): `//item[./description/parlist and ./mailbox/mail/text]`.
pub const Q2: &str = "//item[./description/parlist and ./mailbox/mail/text]";

/// Q3 (8 nodes):
/// `//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]`.
pub const Q3: &str =
    "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]";

/// Q4 (not in the paper): exercises the query-language extensions —
/// attribute tests and wildcards — on the benchmark data:
/// `//item[@id and ./incategory[@category] and ./*/parlist]`.
pub const Q4: &str = "//item[@id and ./incategory[@category] and ./*/parlist]";

/// Figure 2(a): `/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']`.
pub const FIG2A: &str = "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']";

/// The Figure 3 / §2 adaptivity example: "the top-1 book with a title, a
/// location and a price, all as children elements".
pub const FIG3: &str = "/book[./title and ./location and ./price]";

/// Parses one of the benchmark queries (or any query string); panics on
/// parse failure, which for the embedded constants is unreachable.
pub fn parse(query: &str) -> TreePattern {
    parse_pattern(query).unwrap_or_else(|e| panic!("invalid benchmark query {query:?}: {e}"))
}

/// The three benchmark queries, smallest first, with their paper names.
pub fn benchmark_queries() -> Vec<(&'static str, TreePattern)> {
    vec![("Q1", parse(Q1)), ("Q2", parse(Q2)), ("Q3", parse(Q3))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sizes_match_table_1() {
        // Table 1: query sizes 3, 6, 8 nodes.
        assert_eq!(parse(Q1).len(), 3);
        assert_eq!(parse(Q2).len(), 6);
        assert_eq!(parse(Q3).len(), 8);
    }

    #[test]
    fn q4_uses_attributes_and_wildcards() {
        let q = parse(Q4);
        assert_eq!(q.len(), 4); // item, incategory, *, parlist
        assert_eq!(q.node(q.root()).attrs.len(), 1);
        let star = q.node_ids().find(|&id| q.node(id).tag == "*");
        assert!(star.is_some());
    }

    #[test]
    fn q4_matches_generated_items() {
        let doc = crate::generate(&crate::GeneratorConfig::items(200));
        let _q = parse(Q4); // must stay parseable alongside the manual count
                            // The generator stamps @id on every item and @category on every
                            // incategory, so Q4's exact matches are the items with both an
                            // incategory and a direct-child parlist path of length 2.
        let index = whirlpool_index::TagIndex::build(&doc);
        let _ = index; // index built to mirror engine setup costs
        let mut matches = 0;
        let item = doc.tag_id("item").unwrap();
        for n in doc.elements().filter(|&n| doc.tag(n) == item) {
            let has_cat = doc
                .children(n)
                .any(|c| doc.tag_str(c) == "incategory" && doc.attribute(c, "category").is_some());
            let has_two_step_parlist = doc
                .children(n)
                .any(|c| doc.children(c).any(|g| doc.tag_str(g) == "parlist"));
            if has_cat && has_two_step_parlist && doc.attribute(n, "id").is_some() {
                matches += 1;
            }
        }
        assert!(
            matches > 10,
            "expected plenty of exact Q4 matches, got {matches}"
        );
    }

    #[test]
    fn fig2a_parses() {
        assert_eq!(parse(FIG2A).len(), 5);
    }

    #[test]
    fn fig3_has_three_servers() {
        let q = parse(FIG3);
        assert_eq!(q.server_ids().count(), 3);
    }

    #[test]
    fn benchmark_query_names() {
        let qs = benchmark_queries();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].0, "Q1");
        assert_eq!(qs[2].1.len(), 8);
    }
}
