//! Deterministic filler-text generation.
//!
//! XMark fills element content with words drawn from Shakespeare; the
//! tf*idf experiments only need text with a plausible word-frequency
//! skew, so we sample from a fixed vocabulary with a Zipf-ish bias
//! (low-index words are proportionally more likely).

use rand::Rng;

/// Fixed vocabulary. Order matters: earlier words are sampled more
/// often, giving the skewed term distribution tf*idf expects.
pub(crate) const WORDS: &[&str] = &[
    "the",
    "and",
    "of",
    "to",
    "a",
    "in",
    "that",
    "is",
    "was",
    "he",
    "for",
    "it",
    "with",
    "as",
    "his",
    "on",
    "be",
    "at",
    "by",
    "had",
    "not",
    "are",
    "but",
    "from",
    "or",
    "have",
    "an",
    "they",
    "which",
    "one",
    "you",
    "were",
    "her",
    "all",
    "she",
    "there",
    "would",
    "their",
    "we",
    "him",
    "been",
    "has",
    "when",
    "who",
    "will",
    "more",
    "no",
    "if",
    "out",
    "so",
    "said",
    "what",
    "up",
    "its",
    "about",
    "into",
    "than",
    "them",
    "can",
    "only",
    "other",
    "new",
    "some",
    "could",
    "time",
    "these",
    "two",
    "may",
    "then",
    "do",
    "first",
    "any",
    "my",
    "now",
    "such",
    "like",
    "our",
    "over",
    "man",
    "me",
    "even",
    "most",
    "made",
    "after",
    "also",
    "did",
    "many",
    "before",
    "must",
    "through",
    "years",
    "where",
    "much",
    "your",
    "way",
    "well",
    "down",
    "should",
    "because",
    "each",
    "just",
    "those",
    "people",
    "how",
    "too",
    "little",
    "state",
    "good",
    "very",
    "make",
    "world",
    "still",
    "own",
    "see",
    "men",
    "work",
    "long",
    "get",
    "here",
    "between",
    "both",
    "life",
    "being",
    "under",
    "never",
    "day",
    "same",
    "another",
    "know",
    "while",
    "last",
    "might",
    "us",
    "great",
    "old",
    "year",
    "off",
    "come",
    "since",
    "against",
    "go",
    "came",
    "right",
    "used",
    "take",
    "three",
    "merchant",
    "auction",
    "bidder",
    "gold",
    "silver",
    "crown",
    "duke",
    "fair",
    "noble",
    "honest",
    "wicked",
    "gentle",
    "sweet",
    "bitter",
    "purse",
    "fortune",
    "bargain",
    "trade",
    "wares",
    "goods",
    "ship",
    "voyage",
    "harbor",
    "ledger",
    "seal",
    "parchment",
    "quill",
    "candle",
    "lantern",
    "velvet",
    "silk",
    "wool",
    "amber",
    "ivory",
    "jade",
    "pearl",
    "copper",
    "bronze",
    "iron",
    "steel",
    "oak",
    "elm",
];

/// Emits `n` words into `out`, separated by single spaces (no trailing
/// separator), using a Zipf-biased draw over [`WORDS`].
pub(crate) fn push_words<R: Rng>(rng: &mut R, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(sample_word(rng));
    }
}

/// One Zipf-biased word.
pub(crate) fn sample_word<R: Rng>(rng: &mut R) -> &'static str {
    // Square a uniform draw to bias toward the head of the list.
    let u: f64 = rng.gen::<f64>();
    let idx = ((u * u) * WORDS.len() as f64) as usize;
    WORDS[idx.min(WORDS.len() - 1)]
}

/// A short phrase of `lo..=hi` words.
pub(crate) fn phrase<R: Rng>(rng: &mut R, lo: usize, hi: usize) -> String {
    let n = rng.gen_range(lo..=hi);
    let mut s = String::with_capacity(n * 6);
    push_words(rng, n, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(phrase(&mut a, 3, 8), phrase(&mut b, 3, 8));
    }

    #[test]
    fn word_counts_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = phrase(&mut rng, 5, 5);
        assert_eq!(p.split(' ').count(), 5);
        assert!(!p.starts_with(' ') && !p.ends_with(' '));
    }

    #[test]
    fn distribution_is_head_biased() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            let w = sample_word(&mut rng);
            if WORDS[..20].contains(&w) {
                head += 1;
            }
        }
        // 20/200 = 10% of the vocabulary should attract far more than 10%
        // of draws under the squared-uniform bias (expected ≈ 31%).
        assert!(head > trials / 5, "head draws: {head}");
    }
}
